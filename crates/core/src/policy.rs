//! The table-driven protocol engine: policies as data, not code.
//!
//! The paper's central claim (§3.4) is that a protocol is nothing more than a
//! *selection function* over the permitted-action sets of Tables 1 and 2.
//! This module makes that literal: a [`PolicyTable`] holds **one chosen
//! entry per `(state, event)` cell** — the protocol's own Table 3–7 — and a
//! [`TablePolicy`] interprets it behind the ordinary [`Protocol`] trait.
//!
//! * `—` cells are *data* too: an unpopulated cell surfaces as a structured
//!   [`IllegalCell`] error from [`Protocol::try_on_local`] /
//!   [`Protocol::try_on_bus`] instead of a panic mid-transaction.
//! * Class membership becomes a structural ⊆-check:
//!   [`PolicyTable::class_violations`] compares every populated cell against
//!   `table::permitted_local` / `table::permitted_bus` without running the
//!   protocol at all.
//! * Stateful selection (the §3.4 random picker, the §5.2 Puzak recency
//!   refinement, scripted replays, the hybrid update/invalidate switcher)
//!   plugs in through the [`DynamicPolicy`] hook; the static table remains
//!   the documented base policy and the fallback.
//!
//! # Examples
//!
//! ```
//! use moesi::policy::{PolicyTable, TablePolicy};
//! use moesi::{CacheKind, LineState, LocalCtx, LocalEvent, Protocol};
//!
//! // The preferred MOESI policy is just the preferred-entry table.
//! let table = PolicyTable::preferred("MOESI", CacheKind::CopyBack);
//! assert!(table.is_class_member());
//!
//! let mut p = TablePolicy::new(table);
//! let action = p.on_local(LineState::Invalid, LocalEvent::Read, &LocalCtx::default());
//! assert_eq!(action.to_string(), "CH:S/E,CA,R");
//!
//! // A `—` cell is an error value, not a panic.
//! assert!(p
//!     .try_on_local(LineState::Invalid, LocalEvent::Pass, &LocalCtx::default())
//!     .is_err());
//! ```

use crate::action::{BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::state::LineState;
use crate::table;
use std::fmt;

fn state_idx(state: LineState) -> usize {
    LineState::ALL
        .iter()
        .position(|&s| s == state)
        .expect("state in ALL")
}

fn local_idx(event: LocalEvent) -> usize {
    LocalEvent::ALL
        .iter()
        .position(|&e| e == event)
        .expect("event in ALL")
}

fn bus_idx(event: BusEvent) -> usize {
    BusEvent::ALL
        .iter()
        .position(|&e| e == event)
        .expect("event in ALL")
}

/// The event half of an [`IllegalCell`]: which table the missing cell is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellEvent {
    /// A Table 1 (local event) cell.
    Local(LocalEvent),
    /// A Table 2 (snooped bus event) cell.
    Bus(BusEvent),
}

/// A structured `—`-cell error: the protocol defines no action for the
/// queried `(state, event)` combination.
///
/// Returned by [`Protocol::try_on_local`] and [`Protocol::try_on_bus`] so
/// the bus can surface a recoverable `ProtocolError` instead of a panic
/// mid-transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IllegalCell {
    /// Name of the protocol that was consulted.
    pub protocol: String,
    /// The line state the query was made in.
    pub state: LineState,
    /// The event (and which table) that hit the `—` cell.
    pub event: CellEvent,
}

impl IllegalCell {
    /// A missing Table 1 (local) cell.
    #[must_use]
    pub fn local(protocol: &str, state: LineState, event: LocalEvent) -> Self {
        IllegalCell {
            protocol: protocol.to_string(),
            state,
            event: CellEvent::Local(event),
        }
    }

    /// A missing Table 2 (bus) cell.
    #[must_use]
    pub fn bus(protocol: &str, state: LineState, event: BusEvent) -> Self {
        IllegalCell {
            protocol: protocol.to_string(),
            state,
            event: CellEvent::Bus(event),
        }
    }
}

impl fmt::Display for IllegalCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.event {
            CellEvent::Local(event) => write!(
                f,
                "{}: no action for ({}, {event})",
                self.protocol, self.state
            ),
            CellEvent::Bus(event) => write!(
                f,
                "{}: error-condition cell ({}, {event})",
                self.protocol, self.state
            ),
        }
    }
}

impl std::error::Error for IllegalCell {}

/// One protocol as pure data: a single chosen [`LocalAction`] /
/// [`BusReaction`] per `(state, event)` cell, `None` for `—` cells.
///
/// This is the machine-readable form of the paper's Tables 3–7. The
/// [`TablePolicy`] interpreter executes it; [`PolicyTable::class_violations`]
/// checks it structurally against Tables 1–2; [`PolicyTable::render`] prints
/// it in the paper's layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyTable {
    name: &'static str,
    kind: CacheKind,
    requires_bs: bool,
    local: [[Option<LocalAction>; 4]; 5],
    bus: [[Option<BusReaction>; 6]; 5],
}

impl PolicyTable {
    /// An all-`—` table (every cell unpopulated).
    #[must_use]
    pub fn empty(name: &'static str, kind: CacheKind) -> Self {
        PolicyTable {
            name,
            kind,
            requires_bs: false,
            local: [[None; 4]; 5],
            bus: [[None; 6]; 5],
        }
    }

    /// The preferred-entry table: every cell filled with the first permitted
    /// Table 1/2 entry for `kind` (the paper: "Where a choice is shown, the
    /// first entry is preferred"). Bus rows are populated only for the states
    /// the kind can hold; `—` cells stay unpopulated.
    ///
    /// This is both the complete MOESI-preferred policy and the base other
    /// protocols override cell by cell.
    #[must_use]
    pub fn preferred(name: &'static str, kind: CacheKind) -> Self {
        let mut t = PolicyTable::empty(name, kind);
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                t.local[state_idx(state)][local_idx(event)] =
                    table::preferred_local(state, event, kind);
            }
        }
        for &state in kind.reachable_states() {
            for event in BusEvent::ALL {
                t.bus[state_idx(state)][bus_idx(event)] = table::preferred_bus(state, event);
            }
        }
        t
    }

    /// The protocol name this table defines.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bus-client kind the table is written for.
    #[must_use]
    pub fn kind(&self) -> CacheKind {
        self.kind
    }

    /// Whether the policy uses the BS abort-and-push mechanism (any
    /// [`BusReaction::busy_push`] cell, §3.2.2).
    #[must_use]
    pub fn requires_bs(&self) -> bool {
        self.requires_bs
    }

    /// Marks the table as one of the adapted BS-using protocols.
    #[must_use]
    pub fn with_bs(mut self) -> Self {
        self.requires_bs = true;
        self
    }

    /// Returns this table under a different protocol name (the cells are
    /// unchanged). Synthesized tables are renamed per workload this way.
    #[must_use]
    pub fn renamed(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The chosen local action for `(state, event)`, or `None` for `—`.
    #[must_use]
    pub fn local(&self, state: LineState, event: LocalEvent) -> Option<LocalAction> {
        self.local[state_idx(state)][local_idx(event)]
    }

    /// The chosen bus reaction for `(state, event)`, or `None` for `—`.
    #[must_use]
    pub fn bus(&self, state: LineState, event: BusEvent) -> Option<BusReaction> {
        self.bus[state_idx(state)][bus_idx(event)]
    }

    /// Sets a local cell, validating the entry against Table 1.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not in `table::permitted_local` for this cell —
    /// use [`PolicyTable::set_local_unchecked`] for deliberately out-of-class
    /// entries (the adapted protocols, corruption tests).
    pub fn set_local(
        &mut self,
        state: LineState,
        event: LocalEvent,
        action: LocalAction,
    ) -> &mut Self {
        assert!(
            table::permitted_local(state, event, self.kind).contains(&action),
            "{}: `{action}` is not a permitted Table 1 entry for ({state}, {event})",
            self.name
        );
        self.set_local_unchecked(state, event, action)
    }

    /// Sets a local cell without validating against Table 1.
    pub fn set_local_unchecked(
        &mut self,
        state: LineState,
        event: LocalEvent,
        action: LocalAction,
    ) -> &mut Self {
        self.local[state_idx(state)][local_idx(event)] = Some(action);
        self
    }

    /// Sets a bus cell, validating the entry against Table 2.
    ///
    /// # Panics
    ///
    /// Panics if `reaction` is not in `table::permitted_bus` for this cell
    /// (BS pushes never are) — use [`PolicyTable::set_bus_unchecked`] for
    /// deliberately out-of-class entries.
    pub fn set_bus(
        &mut self,
        state: LineState,
        event: BusEvent,
        reaction: BusReaction,
    ) -> &mut Self {
        assert!(
            reaction.busy.is_none() && table::permitted_bus(state, event).contains(&reaction),
            "{}: `{reaction}` is not a permitted Table 2 entry for ({state}, {event})",
            self.name
        );
        self.set_bus_unchecked(state, event, reaction)
    }

    /// Sets a bus cell without validating against Table 2.
    pub fn set_bus_unchecked(
        &mut self,
        state: LineState,
        event: BusEvent,
        reaction: BusReaction,
    ) -> &mut Self {
        self.bus[state_idx(state)][bus_idx(event)] = Some(reaction);
        self
    }

    /// Clears a local cell back to `—`.
    pub fn clear_local(&mut self, state: LineState, event: LocalEvent) -> &mut Self {
        self.local[state_idx(state)][local_idx(event)] = None;
        self
    }

    /// Clears a bus cell back to `—`.
    pub fn clear_bus(&mut self, state: LineState, event: BusEvent) -> &mut Self {
        self.bus[state_idx(state)][bus_idx(event)] = None;
        self
    }

    /// Clears every cell of one state row (for protocols whose state set is a
    /// strict subset of MOESI, e.g. Write-Once without O).
    pub fn clear_state(&mut self, state: LineState) -> &mut Self {
        self.local[state_idx(state)] = [None; 4];
        self.bus[state_idx(state)] = [None; 6];
        self
    }

    /// How many cells are populated (local + bus).
    #[must_use]
    pub fn populated_cells(&self) -> usize {
        self.local.iter().flatten().filter(|c| c.is_some()).count()
            + self.bus.iter().flatten().filter(|c| c.is_some()).count()
    }

    /// The structural ⊆-check against Tables 1–2: every populated cell must
    /// be a permitted entry for its `(state, event)` cell, no cell may be
    /// populated on a `—` cell, and no cell may use BS. Returns one message
    /// per offending cell, in table order.
    ///
    /// This is the declarative counterpart of
    /// [`compat::check_protocol`](crate::compat::check_protocol): a table is
    /// a class member iff its interpreter is.
    #[must_use]
    pub fn class_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                let Some(action) = self.local(state, event) else {
                    continue;
                };
                let permitted = table::permitted_local(state, event, self.kind);
                if permitted.is_empty() {
                    out.push(format!(
                        "local ({state}, {event}): entry `{action}` on a — cell"
                    ));
                } else if !permitted.contains(&action) {
                    out.push(format!(
                        "local ({state}, {event}): `{action}` is not a permitted Table 1 entry"
                    ));
                }
            }
            for event in BusEvent::ALL {
                let Some(reaction) = self.bus(state, event) else {
                    continue;
                };
                if reaction.busy.is_some() {
                    out.push(format!(
                        "bus ({state}, {event}): `{reaction}` uses BS, which is outside the class"
                    ));
                    continue;
                }
                let permitted = table::permitted_bus(state, event);
                if permitted.is_empty() {
                    out.push(format!(
                        "bus ({state}, {event}): entry `{reaction}` on an error-condition cell"
                    ));
                } else if !permitted.contains(&reaction) {
                    out.push(format!(
                        "bus ({state}, {event}): `{reaction}` is not a permitted Table 2 entry"
                    ));
                }
            }
        }
        out
    }

    /// True when [`PolicyTable::class_violations`] is empty.
    #[must_use]
    pub fn is_class_member(&self) -> bool {
        self.class_violations().is_empty()
    }

    /// Every table one in-class cell change away from this one: for each
    /// *populated* cell, each permitted Table 1/2 alternative to the current
    /// entry yields one neighbor (the search space of the synth subsystem).
    ///
    /// Neighbors come back in table order (states in MOESI order, local
    /// events before bus events, alternatives in permitted-set order), so the
    /// enumeration is deterministic. Unpopulated (`—`) cells are never
    /// filled and populated cells never cleared: the class defines no
    /// permitted entry for `—` cells, and clearing a cell only removes
    /// behaviour. Because alternatives are drawn from the permitted sets,
    /// every neighbor of a class member is itself a class member.
    #[must_use]
    pub fn neighbors(&self) -> Vec<PolicyTable> {
        let mut out = Vec::new();
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                let Some(current) = self.local(state, event) else {
                    continue;
                };
                for alt in table::permitted_local(state, event, self.kind) {
                    if alt != current {
                        let mut t = *self;
                        t.set_local_unchecked(state, event, alt);
                        out.push(t);
                    }
                }
            }
            for event in BusEvent::ALL {
                let Some(current) = self.bus(state, event) else {
                    continue;
                };
                for alt in table::permitted_bus(state, event) {
                    if alt != current {
                        let mut t = *self;
                        t.set_bus_unchecked(state, event, alt);
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Renders the table in the paper's Tables 3–7 layout: one chosen entry
    /// per cell, `-` for `—` cells.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} protocol, {} client: chosen action per cell ('-' = illegal)\n",
            self.name, self.kind
        );
        out.push_str("Local events: result state and bus signals\n");
        out.push_str(&format!(
            "{:<6} {:<28} {:<28} {:<20} {:<12}\n",
            "State", "Read(1)", "Write(2)", "Pass(3)", "Flush(4)"
        ));
        for state in LineState::ALL {
            let mut row = format!("{:<6} ", state.letter());
            for (event, width) in [
                (LocalEvent::Read, 28),
                (LocalEvent::Write, 28),
                (LocalEvent::Pass, 20),
                (LocalEvent::Flush, 12),
            ] {
                let cell = self
                    .local(state, event)
                    .map_or_else(|| "-".to_string(), |a| a.to_string());
                row.push_str(&format!("{cell:<width$} ", width = width));
            }
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out.push_str("Snooped bus events: result state and response signals\n");
        out.push_str(&format!("{:<6}", "State"));
        for ev in BusEvent::ALL {
            out.push_str(&format!(
                " {:<22}",
                format!("{}({})", ev.signals(), ev.column())
            ));
        }
        out.push('\n');
        for state in LineState::ALL {
            let mut row = format!("{:<6}", state.letter());
            for ev in BusEvent::ALL {
                let cell = self
                    .bus(state, ev)
                    .map_or_else(|| "-".to_string(), |r| r.to_string());
                row.push_str(&format!(" {cell:<22}"));
            }
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out
    }
}

/// A stateful selection hook for a [`TablePolicy`].
///
/// §3.4: a board "can change the protocol it is using, either statically,
/// dynamically, or can use protocols selectively". The hook sees the full
/// permitted set for the queried cell and may pick any member of it (or
/// return `None` to fall back to the static table cell). The random policy,
/// the Puzak recency refinement, scripted replays and the hybrid
/// update/invalidate switcher are all such hooks over an ordinary base table.
pub trait DynamicPolicy: fmt::Debug + Send {
    /// Picks a local action, or `None` to use the static table cell.
    fn pick_local(
        &mut self,
        state: LineState,
        event: LocalEvent,
        ctx: &LocalCtx,
        permitted: &[LocalAction],
    ) -> Option<LocalAction> {
        let _ = (state, event, ctx, permitted);
        None
    }

    /// Picks a bus reaction, or `None` to use the static table cell.
    fn pick_bus(
        &mut self,
        state: LineState,
        event: BusEvent,
        ctx: &SnoopCtx,
        permitted: &[BusReaction],
    ) -> Option<BusReaction> {
        let _ = (state, event, ctx, permitted);
        None
    }
}

/// The generic interpreter: a [`PolicyTable`] (plus an optional
/// [`DynamicPolicy`] hook) behind the [`Protocol`] trait.
///
/// Every shipped protocol is a table constructor over this engine; the
/// simulator, the model checker and the benchmarks only ever see the
/// [`Protocol`] API.
#[derive(Debug)]
pub struct TablePolicy {
    table: PolicyTable,
    dynamic: Option<Box<dyn DynamicPolicy>>,
}

impl TablePolicy {
    /// A purely static policy: every decision is the table cell.
    #[must_use]
    pub fn new(table: PolicyTable) -> Self {
        TablePolicy {
            table,
            dynamic: None,
        }
    }

    /// A policy with a stateful selection hook over `table`.
    #[must_use]
    pub fn with_dynamic(table: PolicyTable, dynamic: Box<dyn DynamicPolicy>) -> Self {
        TablePolicy {
            table,
            dynamic: Some(dynamic),
        }
    }

    /// The base table (the protocol's own Table 3–7).
    #[must_use]
    pub fn table(&self) -> &PolicyTable {
        &self.table
    }
}

impl Protocol for TablePolicy {
    fn name(&self) -> &str {
        self.table.name
    }

    fn kind(&self) -> CacheKind {
        self.table.kind
    }

    fn requires_bs(&self) -> bool {
        self.table.requires_bs
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, ctx: &LocalCtx) -> LocalAction {
        self.try_on_local(state, event, ctx)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, ctx: &SnoopCtx) -> BusReaction {
        self.try_on_bus(state, event, ctx)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_on_local(
        &mut self,
        state: LineState,
        event: LocalEvent,
        ctx: &LocalCtx,
    ) -> Result<LocalAction, IllegalCell> {
        if let Some(dynamic) = &mut self.dynamic {
            let permitted = table::permitted_local(state, event, self.table.kind);
            if let Some(action) = dynamic.pick_local(state, event, ctx, &permitted) {
                return Ok(action);
            }
        }
        self.table
            .local(state, event)
            .ok_or_else(|| IllegalCell::local(self.table.name, state, event))
    }

    fn try_on_bus(
        &mut self,
        state: LineState,
        event: BusEvent,
        ctx: &SnoopCtx,
    ) -> Result<BusReaction, IllegalCell> {
        if let Some(dynamic) = &mut self.dynamic {
            let permitted = table::permitted_bus(state, event);
            if let Some(reaction) = dynamic.pick_bus(state, event, ctx, &permitted) {
                return Ok(reaction);
            }
        }
        self.table
            .bus(state, event)
            .ok_or_else(|| IllegalCell::bus(self.table.name, state, event))
    }

    fn policy_table(&self) -> Option<&PolicyTable> {
        Some(&self.table)
    }

    fn table_is_exact(&self) -> bool {
        self.dynamic.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ResultState;
    use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};

    #[test]
    fn preferred_table_matches_the_preferred_entries() {
        let t = PolicyTable::preferred("MOESI", CacheKind::CopyBack);
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                assert_eq!(
                    t.local(state, event),
                    table::preferred_local(state, event, CacheKind::CopyBack),
                    "({state}, {event})"
                );
            }
            for event in BusEvent::ALL {
                assert_eq!(
                    t.bus(state, event),
                    table::preferred_bus(state, event),
                    "({state}, {event})"
                );
            }
        }
        assert!(t.is_class_member());
        assert!(!t.requires_bs());
    }

    #[test]
    fn write_through_preferred_table_has_no_owner_rows() {
        let t = PolicyTable::preferred("wt", CacheKind::WriteThrough);
        for state in [Modified, Owned, Exclusive] {
            for event in LocalEvent::ALL {
                assert_eq!(t.local(state, event), None);
            }
            for event in BusEvent::ALL {
                assert_eq!(t.bus(state, event), None, "({state}, {event})");
            }
        }
        assert!(t.local(Shareable, LocalEvent::Read).is_some());
        assert!(t.bus(Shareable, BusEvent::CacheRead).is_some());
        assert!(t.is_class_member());
    }

    #[test]
    fn checked_setters_reject_out_of_class_entries() {
        let mut t = PolicyTable::preferred("t", CacheKind::CopyBack);
        // A permitted alternative is accepted...
        t.set_local(
            Invalid,
            LocalEvent::Read,
            LocalAction::new(Shareable, crate::MasterSignals::CA, crate::BusOp::Read),
        );
        assert!(t.is_class_member());
        // ...an out-of-class entry panics.
        let r = std::panic::catch_unwind(move || {
            t.set_local(Invalid, LocalEvent::Read, LocalAction::silent(Modified));
        });
        assert!(r.is_err());
    }

    #[test]
    fn checked_bus_setter_rejects_bs_pushes() {
        let mut t = PolicyTable::preferred("t", CacheKind::CopyBack);
        let push = BusReaction::busy_push(Shareable, crate::MasterSignals::CA);
        let r = std::panic::catch_unwind(move || {
            t.set_bus(Modified, BusEvent::CacheRead, push);
        });
        assert!(r.is_err());
    }

    #[test]
    fn class_violations_flag_mutated_cells() {
        let mut t = PolicyTable::preferred("t", CacheKind::CopyBack);
        t.set_local_unchecked(Shareable, LocalEvent::Write, LocalAction::silent(Modified));
        let v = t.class_violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("(S, Write)"), "{v:?}");
        assert!(!t.is_class_member());
    }

    #[test]
    fn class_violations_flag_entries_on_error_cells_and_bs() {
        let mut t = PolicyTable::preferred("t", CacheKind::CopyBack);
        t.set_bus_unchecked(Modified, BusEvent::CacheBroadcastWrite, BusReaction::IGNORE);
        t.set_bus_unchecked(
            Modified,
            BusEvent::CacheRead,
            BusReaction::busy_push(Shareable, crate::MasterSignals::CA),
        );
        let v = t.class_violations();
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|m| m.contains("error-condition")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("BS")), "{v:?}");
    }

    #[test]
    fn illegal_cells_are_errors_not_panics() {
        let mut p = TablePolicy::new(PolicyTable::preferred("MOESI", CacheKind::CopyBack));
        let err = p
            .try_on_local(Invalid, LocalEvent::Pass, &LocalCtx::default())
            .unwrap_err();
        assert_eq!(err.state, Invalid);
        assert_eq!(err.event, CellEvent::Local(LocalEvent::Pass));
        assert_eq!(err.to_string(), "MOESI: no action for (I, Pass)");

        let err = p
            .try_on_bus(
                Modified,
                BusEvent::CacheBroadcastWrite,
                &SnoopCtx::default(),
            )
            .unwrap_err();
        assert_eq!(err.event, CellEvent::Bus(BusEvent::CacheBroadcastWrite));
        assert_eq!(
            err.to_string(),
            "MOESI: error-condition cell (M, CA,IM,BC (col 8))"
        );
    }

    #[test]
    fn the_panicking_api_reports_the_same_message() {
        let r = std::panic::catch_unwind(|| {
            TablePolicy::new(PolicyTable::preferred("MOESI", CacheKind::CopyBack)).on_local(
                Invalid,
                LocalEvent::Pass,
                &LocalCtx::default(),
            )
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("no action for"), "{msg}");
    }

    #[test]
    fn dynamic_hook_overrides_and_falls_back() {
        #[derive(Debug)]
        struct SecondChoice;
        impl DynamicPolicy for SecondChoice {
            fn pick_local(
                &mut self,
                _state: LineState,
                _event: LocalEvent,
                _ctx: &LocalCtx,
                permitted: &[LocalAction],
            ) -> Option<LocalAction> {
                permitted.get(1).copied()
            }
        }
        let table = PolicyTable::preferred("t", CacheKind::CopyBack);
        let mut p = TablePolicy::with_dynamic(table, Box::new(SecondChoice));
        // (I, Read) has an alternative: the hook picks it.
        let a = p.on_local(Invalid, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a.result, ResultState::Fixed(Shareable));
        // (M, Read) has only the preferred entry: the hook falls back.
        let a = p.on_local(Modified, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a, LocalAction::silent(Modified));
        assert!(!p.table_is_exact());
        assert!(p.policy_table().is_some());
    }

    #[test]
    fn render_shows_cells_and_dashes() {
        let t = PolicyTable::preferred("MOESI", CacheKind::CopyBack);
        let text = t.render();
        assert!(text.starts_with("MOESI protocol, copy-back client"));
        assert!(text.contains("CH:S/E,CA,R"));
        assert!(text.contains("O,CH,DI"));
        // (E, Pass) and (M, CA,IM,BC) are `—`.
        assert!(text.contains('-'));
        assert_eq!(text.lines().count(), 1 + 1 + 1 + 5 + 1 + 1 + 5);
    }

    #[test]
    fn renamed_changes_only_the_name() {
        let t = PolicyTable::preferred("MOESI", CacheKind::CopyBack);
        let r = t.renamed("synth-general");
        assert_eq!(r.name(), "synth-general");
        assert_eq!(r.kind(), t.kind());
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                assert_eq!(r.local(state, event), t.local(state, event));
            }
            for event in BusEvent::ALL {
                assert_eq!(r.bus(state, event), t.bus(state, event));
            }
        }
    }

    #[test]
    fn neighbors_differ_in_exactly_one_cell_and_stay_in_class() {
        let base = PolicyTable::preferred("MOESI", CacheKind::CopyBack);
        let neighbors = base.neighbors();
        assert!(!neighbors.is_empty());
        for n in &neighbors {
            assert!(n.is_class_member(), "neighbor fell out of the class");
            assert_eq!(n.populated_cells(), base.populated_cells());
            let mut diffs = 0;
            for state in LineState::ALL {
                for event in LocalEvent::ALL {
                    if n.local(state, event) != base.local(state, event) {
                        diffs += 1;
                    }
                }
                for event in BusEvent::ALL {
                    if n.bus(state, event) != base.bus(state, event) {
                        diffs += 1;
                    }
                }
            }
            assert_eq!(diffs, 1, "a neighbor must differ in exactly one cell");
        }
        // The enumeration is exactly "one alternative per populated cell":
        // its size is the sum over populated cells of |permitted| - 1.
        let mut expected = 0;
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                if base.local(state, event).is_some() {
                    expected += table::permitted_local(state, event, base.kind()).len() - 1;
                }
            }
            for event in BusEvent::ALL {
                if base.bus(state, event).is_some() {
                    expected += table::permitted_bus(state, event).len() - 1;
                }
            }
        }
        assert_eq!(neighbors.len(), expected);
        // Deterministic order.
        let again = base.neighbors();
        assert_eq!(neighbors, again);
    }

    #[test]
    fn populated_cell_counts() {
        assert_eq!(
            PolicyTable::empty("e", CacheKind::CopyBack).populated_cells(),
            0
        );
        let t = PolicyTable::preferred("p", CacheKind::CopyBack);
        // 16 legal local cells + 28 legal bus cells.
        assert_eq!(t.populated_cells(), 16 + 28);
    }
}
