//! Graphviz (DOT) rendering of protocol state machines.
//!
//! The paper presents its protocols as tables; most later treatments draw
//! them as state diagrams. [`render`] produces the diagram for any
//! [`Protocol`]: solid edges for local events, dashed edges for snooped bus
//! events, `BS;` edges for abort-and-push reactions.

use crate::action::BusOp;
use crate::compat::reachable_states;
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
use crate::state::LineState;
use crate::table;
use std::fmt::Write as _;

/// Renders a protocol's transition diagram in Graphviz DOT syntax.
///
/// Only reachable states are drawn. Conditional results (`CH:O/M`, `CH:S/E`)
/// become two edges, labelled with the CH observation that selects them.
///
/// # Examples
///
/// ```
/// use moesi::dot::render;
/// use moesi::protocols::Berkeley;
///
/// let dot = render(&mut Berkeley::new());
/// assert!(dot.starts_with("digraph Berkeley"));
/// assert!(dot.contains("M -> O"));
/// assert!(!dot.contains('E'), "Berkeley has no E state");
/// ```
#[must_use]
pub fn render<P: Protocol + ?Sized>(protocol: &mut P) -> String {
    let reachable = reachable_states(protocol);
    let name = protocol.name().replace(['-', ' '], "_");
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for state in LineState::ALL {
        if reachable.contains(&state) {
            let _ = writeln!(out, "  {};", state.letter());
        }
    }

    // Local events: solid edges.
    for &state in &reachable {
        for event in [
            LocalEvent::Read,
            LocalEvent::Write,
            LocalEvent::Pass,
            LocalEvent::Flush,
        ] {
            // Skip cells that are errors for every client kind.
            let defined = crate::protocol::CacheKind::ALL
                .iter()
                .any(|&k| !table::permitted_local(state, event, k).is_empty());
            if !defined {
                continue;
            }
            let Ok(action) = protocol.try_on_local(state, event, &LocalCtx::default()) else {
                continue;
            };
            if action.bus_op == BusOp::ReadThenWrite {
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}: Read>Write\"];",
                    state.letter(),
                    state.letter(),
                    event
                );
                continue;
            }
            for ch in [false, true] {
                let to = action.result.resolve(ch);
                if !reachable.contains(&to) {
                    continue;
                }
                let cond = match action.result {
                    crate::action::ResultState::Fixed(_) if ch => continue,
                    crate::action::ResultState::Fixed(_) => String::new(),
                    crate::action::ResultState::OnCh { .. } => {
                        format!(" [{}CH]", if ch { "" } else { "~" })
                    }
                };
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}{}{}\"];",
                    state.letter(),
                    to.letter(),
                    event,
                    cond,
                    if action.bus_op.uses_bus() {
                        format!(" ({})", action.signals)
                    } else {
                        String::new()
                    },
                );
            }
        }
    }

    // Bus events: dashed edges.
    for &state in &reachable {
        if state == LineState::Invalid {
            continue; // I -> I on everything; omit for readability
        }
        for event in BusEvent::ALL {
            let Ok(reaction) = protocol.try_on_bus(state, event, &SnoopCtx::default()) else {
                continue;
            };
            if let Some(push) = reaction.busy {
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed color=red label=\"col{}: BS push\"];",
                    state.letter(),
                    push.result.letter(),
                    event.column(),
                );
                continue;
            }
            for ch in [false, true] {
                let to = reaction.result.resolve(ch);
                let cond = match reaction.result {
                    crate::action::ResultState::Fixed(_) if ch => continue,
                    crate::action::ResultState::Fixed(_) => String::new(),
                    crate::action::ResultState::OnCh { .. } => {
                        format!(" [{}CH]", if ch { "" } else { "~" })
                    }
                };
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed label=\"col{}{}\"];",
                    state.letter(),
                    to.letter(),
                    event.column(),
                    cond,
                );
            }
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{Dragon, Firefly, MoesiPreferred, WriteOnce};

    #[test]
    fn moesi_diagram_has_all_five_states_and_key_edges() {
        let dot = render(&mut MoesiPreferred::new());
        assert!(dot.starts_with("digraph MOESI {"));
        for s in ["M;", "O;", "E;", "S;", "I;"] {
            assert!(dot.contains(s), "missing node {s}\n{dot}");
        }
        // Silent upgrade E -> M on a write.
        assert!(dot.contains("E -> M [label=\"Write\"]"), "{dot}");
        // Snooped read demotes M -> O (column 5).
        assert!(
            dot.contains("M -> O [style=dashed label=\"col5\"]"),
            "{dot}"
        );
        // Read miss resolves by CH.
        assert!(dot.contains("I -> E [label=\"Read [~CH] (CA)\"]"), "{dot}");
        assert!(dot.contains("I -> S [label=\"Read [CH] (CA)\"]"), "{dot}");
    }

    #[test]
    fn write_once_diagram_shows_bs_pushes() {
        let dot = render(&mut WriteOnce::new());
        assert!(dot.contains("BS push"));
        assert!(dot.contains("color=red"));
        assert!(!dot.contains(" O;"), "Write-Once has no O state");
    }

    #[test]
    fn dragon_diagram_shows_read_then_write() {
        let dot = render(&mut Dragon::new());
        assert!(dot.contains("Read>Write"));
    }

    #[test]
    fn every_protocol_renders_valid_dot_structure() {
        for name in [
            "moesi",
            "berkeley",
            "dragon",
            "write-once",
            "illinois",
            "firefly",
        ] {
            let mut p = crate::protocols::by_name(name, 1).unwrap();
            let dot = render(p.as_mut());
            assert!(dot.starts_with("digraph "), "{name}");
            assert!(dot.trim_end().ends_with('}'), "{name}");
            assert_eq!(dot.matches('{').count(), 1, "{name}");
            assert!(dot.lines().count() > 10, "{name} diagram is too sparse");
        }
        let _ = Firefly::new();
    }
}
