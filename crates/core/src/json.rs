//! Minimal hand-rolled JSON building blocks.
//!
//! The workspace deliberately carries no serialisation dependency, so every
//! JSON emitter — the bench sweep, the fault campaign's Chrome trace writer
//! and the synth reports — was hand-assembling `{...}` strings. This module
//! is the one shared helper they all use: a [`JsonObject`] builder with the
//! house style (`", "` separators, `"key": value` spacing, fixed-precision
//! floats so output bytes are stable across runs and worker counts) plus
//! string escaping and a numeric-array renderer.
//!
//! # Examples
//!
//! ```
//! use moesi::json::{array_u64, JsonObject};
//!
//! let obj = JsonObject::new()
//!     .string("protocol", "moesi")
//!     .number("accesses", 1200)
//!     .fixed("miss_ratio", 0.25, 6)
//!     .raw("phase_p50_ns", &array_u64(&[50, 100]))
//!     .finish();
//! assert_eq!(
//!     obj,
//!     r#"{"protocol": "moesi", "accesses": 1200, "miss_ratio": 0.250000, "phase_p50_ns": [50, 100]}"#
//! );
//! ```

use std::fmt::{Display, Write};

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes and control characters).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a numeric slice as a JSON array in the house style: `[1, 2, 3]`.
#[must_use]
pub fn array_u64(values: &[u64]) -> String {
    let body: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", body.join(", "))
}

/// An incremental JSON object builder. Fields appear in insertion order,
/// separated by `", "`, with a space after each key's colon.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push_str(", ");
        }
        let _ = write!(self.body, "\"{key}\": ");
    }

    /// Adds a string field, escaped and quoted.
    #[must_use]
    pub fn string(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.body, "\"{}\"", escape(value));
        self
    }

    /// Adds a numeric (or other `Display`-rendered, JSON-safe) field.
    #[must_use]
    pub fn number(mut self, key: &str, value: impl Display) -> Self {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a float with exactly `decimals` digits after the point, so the
    /// rendered bytes are identical wherever the value is recomputed.
    #[must_use]
    pub fn fixed(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.key(key);
        let _ = write!(self.body, "{value:.decimals$}");
        self
    }

    /// Adds a preformatted value verbatim (a nested array or object).
    #[must_use]
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.body.push_str(value);
        self
    }

    /// Closes the object and returns its text.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builder_matches_the_house_style() {
        assert_eq!(JsonObject::new().finish(), "{}");
        let obj = JsonObject::new()
            .string("name", "snoop-resolve")
            .number("tid", 3)
            .fixed("ratio", 0.5, 3)
            .raw("tags", "[1, 2]")
            .finish();
        assert_eq!(
            obj,
            r#"{"name": "snoop-resolve", "tid": 3, "ratio": 0.500, "tags": [1, 2]}"#
        );
    }

    #[test]
    fn arrays_render_with_comma_space() {
        assert_eq!(array_u64(&[]), "[]");
        assert_eq!(array_u64(&[7]), "[7]");
        assert_eq!(array_u64(&[1, 2, 3]), "[1, 2, 3]");
    }
}
