//! The [`Protocol`] trait: a policy that picks one permitted action per event.
//!
//! §3.4 of the paper: "different boards on the bus can implement different
//! protocols, provided that each comes from this class", and "each bus user
//! can change the protocol it is using, either statically, dynamically, or can
//! use protocols selectively". A [`Protocol`] implementation is exactly such a
//! policy; the system simulator consults it on every local event and every
//! snooped bus event.

use crate::action::{BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{IllegalCell, PolicyTable};
use crate::state::LineState;
use std::fmt;

/// What kind of bus client a protocol drives (§3.3).
///
/// The paper's Table 1 covers all three with one table: unstarred entries are
/// for copy-back caches, `*` entries for write-through caches, and `**`
/// entries for processors without caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// A copy-back (write-back) cache: may own lines and intervene.
    CopyBack,
    /// A write-through cache: two states (V ≡ S, I); incapable of ownership
    /// or intervention.
    WriteThrough,
    /// A processor without a cache: never retains data, never responds to bus
    /// events.
    NonCaching,
}

impl CacheKind {
    /// All three kinds.
    pub const ALL: [CacheKind; 3] = [
        CacheKind::CopyBack,
        CacheKind::WriteThrough,
        CacheKind::NonCaching,
    ];

    /// The line states this kind of client can hold.
    #[must_use]
    pub fn reachable_states(self) -> &'static [LineState] {
        match self {
            CacheKind::CopyBack => &LineState::ALL,
            CacheKind::WriteThrough => &[LineState::Shareable, LineState::Invalid],
            CacheKind::NonCaching => &[LineState::Invalid],
        }
    }
}

impl fmt::Display for CacheKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheKind::CopyBack => "copy-back",
            CacheKind::WriteThrough => "write-through",
            CacheKind::NonCaching => "non-caching",
        };
        f.write_str(s)
    }
}

/// Context available to a protocol when deciding a local action.
///
/// The §5.2 refinement (after Puzak et al.) lets a policy consult the
/// replacement status of the line; the controller provides it here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalCtx {
    /// Recency rank of the line in its set: 0 = most recently used. `None`
    /// when the line is not resident (e.g. on a miss).
    pub recency_rank: Option<u32>,
    /// Number of ways in the set (for interpreting `recency_rank`).
    pub ways: u32,
    /// Identity of the line (its aligned address), for policies that keep
    /// per-line state such as the hybrid switcher's sharing counters. `None`
    /// when unknown (e.g. abstract table queries).
    pub line_addr: Option<u64>,
}

/// Context available to a protocol when reacting to a snooped bus event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnoopCtx {
    /// Recency rank of the snooped line in its set: 0 = most recently used.
    pub recency_rank: Option<u32>,
    /// Number of ways in the set.
    pub ways: u32,
    /// Identity of the snooped line (its aligned address), for policies that
    /// keep per-line state. `None` when unknown.
    pub line_addr: Option<u64>,
}

impl SnoopCtx {
    /// True when the line is the least-recently-used element of its set —
    /// "nearing time for replacement" in the §5.2 refinement.
    #[must_use]
    pub fn near_replacement(self) -> bool {
        match self.recency_rank {
            Some(rank) => self.ways > 1 && rank + 1 >= self.ways,
            None => false,
        }
    }
}

/// A cache consistency policy: one column-picker over Tables 1 and 2 (or over
/// one of the protocol-specific Tables 3–7).
///
/// Implementations must be deterministic *given their own internal state*;
/// [`RandomPolicy`](crate::protocols::RandomPolicy) carries its RNG
/// internally, which is why the methods take `&mut self`.
///
/// # Examples
///
/// ```
/// use moesi::protocols::MoesiPreferred;
/// use moesi::{LineState, LocalEvent, LocalCtx, Protocol};
///
/// let mut p = MoesiPreferred::new();
/// let action = p.on_local(LineState::Invalid, LocalEvent::Read, &LocalCtx::default());
/// assert_eq!(action.to_string(), "CH:S/E,CA,R"); // Table 1, I/Read, preferred
/// ```
pub trait Protocol {
    /// A short human-readable protocol name ("MOESI", "Berkeley", ...).
    fn name(&self) -> &str;

    /// What kind of bus client this protocol drives.
    fn kind(&self) -> CacheKind;

    /// Whether the protocol needs the BS (busy) line — true for the adapted
    /// Write-Once, Illinois and Firefly protocols, whose intervenient actions
    /// abort and push (§3.2.2, §4.3–4.5).
    fn requires_bs(&self) -> bool {
        false
    }

    /// Chooses the action for a local event on a line in `state`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `(state, event)` is not a legal
    /// combination for this protocol (a `—` cell in the tables), e.g. a
    /// `Pass` from Invalid. Fallible callers (the bus, the renderers) use
    /// [`Protocol::try_on_local`] instead.
    fn on_local(&mut self, state: LineState, event: LocalEvent, ctx: &LocalCtx) -> LocalAction;

    /// Chooses the reaction to a snooped bus event on a line in `state`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on error-condition cells (`—` in Table 2),
    /// such as observing another master's broadcast write while holding the
    /// line Modified. Fallible callers use [`Protocol::try_on_bus`] instead.
    fn on_bus(&mut self, state: LineState, event: BusEvent, ctx: &SnoopCtx) -> BusReaction;

    /// Fallible form of [`Protocol::on_local`]: a `—` cell is a structured
    /// [`IllegalCell`] error instead of a panic, so the bus can surface a
    /// recoverable `ProtocolError` mid-transaction.
    ///
    /// The table-driven protocols override this; the default wraps
    /// [`Protocol::on_local`] and therefore still panics for hand-written
    /// implementations that do.
    fn try_on_local(
        &mut self,
        state: LineState,
        event: LocalEvent,
        ctx: &LocalCtx,
    ) -> Result<LocalAction, IllegalCell> {
        Ok(self.on_local(state, event, ctx))
    }

    /// Fallible form of [`Protocol::on_bus`]; see [`Protocol::try_on_local`].
    fn try_on_bus(
        &mut self,
        state: LineState,
        event: BusEvent,
        ctx: &SnoopCtx,
    ) -> Result<BusReaction, IllegalCell> {
        Ok(self.on_bus(state, event, ctx))
    }

    /// The declarative [`PolicyTable`] behind this protocol, if it is
    /// table-driven (all shipped protocols are). For stateful policies this is
    /// the *base* table the [`DynamicPolicy`](crate::policy::DynamicPolicy)
    /// hook deviates from.
    fn policy_table(&self) -> Option<&PolicyTable> {
        None
    }

    /// True when every decision is read straight from
    /// [`Protocol::policy_table`] with no dynamic selection — the
    /// precondition for the structural compatibility fast path
    /// (`compat::check_table`).
    fn table_is_exact(&self) -> bool {
        false
    }
}

impl fmt::Debug for dyn Protocol + Send {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Protocol({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachable_states_shrink_with_capability() {
        assert_eq!(CacheKind::CopyBack.reachable_states().len(), 5);
        assert_eq!(
            CacheKind::WriteThrough.reachable_states(),
            &[LineState::Shareable, LineState::Invalid]
        );
        assert_eq!(
            CacheKind::NonCaching.reachable_states(),
            &[LineState::Invalid]
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(CacheKind::CopyBack.to_string(), "copy-back");
        assert_eq!(CacheKind::WriteThrough.to_string(), "write-through");
        assert_eq!(CacheKind::NonCaching.to_string(), "non-caching");
    }

    #[test]
    fn near_replacement_is_lru_only() {
        let mru = SnoopCtx {
            recency_rank: Some(0),
            ways: 2,
            line_addr: None,
        };
        let lru = SnoopCtx {
            recency_rank: Some(1),
            ways: 2,
            line_addr: None,
        };
        let absent = SnoopCtx {
            recency_rank: None,
            ways: 2,
            line_addr: None,
        };
        let direct_mapped = SnoopCtx {
            recency_rank: Some(0),
            ways: 1,
            line_addr: None,
        };
        assert!(!mru.near_replacement());
        assert!(lru.near_replacement());
        assert!(!absent.near_replacement());
        // In a direct-mapped set recency carries no information; treat the
        // sole way as not "near replacement".
        assert!(!direct_mapped.near_replacement());
    }
}
