//! Class-membership checking: is a protocol a member of the compatible class?
//!
//! §3.4 defines compatibility: every action a board takes must come from the
//! permitted sets of Tables 1 and 2. [`check_protocol`] drives a [`Protocol`]
//! over every reachable `(state, event)` cell — sampling repeatedly, so
//! stochastic policies are covered — and reports every decision that falls
//! outside the permitted set, plus any use of the BS abort mechanism (which
//! the class does not contain; §3.2.2 adds BS only for the *adapted*
//! Write-Once and Illinois protocols).

use crate::action::BusOp;
use crate::event::{BusEvent, LocalEvent};
use crate::policy::PolicyTable;
use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
use crate::state::LineState;
use crate::table;
use std::collections::BTreeSet;
use std::fmt;

/// How many times each cell is sampled, so randomized policies are exercised.
const SAMPLES_PER_CELL: usize = 32;

/// The outcome of a class-membership check.
///
/// # Examples
///
/// ```
/// use moesi::compat::check_protocol;
/// use moesi::protocols::{Berkeley, WriteOnce};
///
/// assert!(check_protocol(&mut Berkeley::new()).is_class_member());
/// assert!(!check_protocol(&mut WriteOnce::new()).is_class_member());
/// ```
#[derive(Clone, Debug)]
pub struct CompatReport {
    name: String,
    violations: Vec<String>,
    reachable: BTreeSet<LineState>,
    cells_checked: usize,
}

impl CompatReport {
    /// True when every sampled decision was a permitted Table 1/2 entry.
    #[must_use]
    pub fn is_class_member(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable descriptions of each out-of-class decision.
    #[must_use]
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The states the protocol was observed to reach, starting from Invalid.
    #[must_use]
    pub fn reachable_states(&self) -> &BTreeSet<LineState> {
        &self.reachable
    }

    /// How many `(state, event)` cells were exercised.
    #[must_use]
    pub fn cells_checked(&self) -> usize {
        self.cells_checked
    }
}

impl fmt::Display for CompatReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_class_member() {
            write!(
                f,
                "{}: class member ({} cells checked, states {:?})",
                self.name, self.cells_checked, self.reachable
            )
        } else {
            writeln!(
                f,
                "{}: NOT a class member ({} violations):",
                self.name,
                self.violations.len()
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Computes the set of line states a protocol can actually reach, starting
/// from Invalid, by driving every local event and bus event to a fixpoint.
///
/// This matters because the adapted protocols hold only a subset of the MOESI
/// states (e.g. Write-Once never reaches O), and querying them outside that
/// subset is itself an error.
#[must_use]
pub fn reachable_states<P: Protocol + ?Sized>(protocol: &mut P) -> BTreeSet<LineState> {
    let mut reachable: BTreeSet<LineState> = BTreeSet::new();
    reachable.insert(LineState::Invalid);
    let lctx = LocalCtx::default();
    let sctx = SnoopCtx::default();
    loop {
        let mut next = reachable.clone();
        for &state in &reachable {
            for event in LocalEvent::ALL {
                if table::permitted_local(state, event, protocol.kind()).is_empty() {
                    continue;
                }
                for _ in 0..SAMPLES_PER_CELL {
                    let action = protocol.on_local(state, event, &lctx);
                    if action.bus_op == BusOp::ReadThenWrite {
                        // Resolved by re-consultation: the read half's results
                        // are those of the Read event, already covered.
                        continue;
                    }
                    for r in action.result.possible() {
                        next.insert(r);
                    }
                }
            }
            for event in BusEvent::ALL {
                if table::permitted_bus(state, event).is_empty() {
                    continue;
                }
                for _ in 0..SAMPLES_PER_CELL {
                    let reaction = protocol.on_bus(state, event, &sctx);
                    if let Some(push) = reaction.busy {
                        next.insert(push.result);
                    } else {
                        for r in reaction.result.possible() {
                            next.insert(r);
                        }
                    }
                }
            }
        }
        if next == reachable {
            return reachable;
        }
        reachable = next;
    }
}

/// Computes the states a [`PolicyTable`] can reach from Invalid, purely
/// structurally: the possible result states of every populated cell, to a
/// fixpoint. For an exact table this agrees with [`reachable_states`] on its
/// interpreter, without any sampling.
fn table_reachable(table: &PolicyTable) -> BTreeSet<LineState> {
    let mut reachable: BTreeSet<LineState> = BTreeSet::new();
    reachable.insert(LineState::Invalid);
    loop {
        let mut next = reachable.clone();
        for &state in &reachable {
            for event in LocalEvent::ALL {
                let Some(action) = table.local(state, event) else {
                    continue;
                };
                if action.bus_op == BusOp::ReadThenWrite {
                    continue;
                }
                for r in action.result.possible() {
                    next.insert(r);
                }
            }
            for event in BusEvent::ALL {
                let Some(reaction) = table.bus(state, event) else {
                    continue;
                };
                if let Some(push) = reaction.busy {
                    next.insert(push.result);
                } else {
                    for r in reaction.result.possible() {
                        next.insert(r);
                    }
                }
            }
        }
        if next == reachable {
            return reachable;
        }
        reachable = next;
    }
}

/// Structurally checks a [`PolicyTable`] against the permitted sets of
/// Tables 1 and 2, without sampling its interpreter.
///
/// This is the declarative counterpart of [`check_protocol`]: for a protocol
/// whose table is exact ([`Protocol::table_is_exact`]), the two give the same
/// class-membership verdict — and `check_protocol` exploits that as a fast
/// path. Unlike `check_protocol`, this also flags out-of-class entries on
/// *unreachable* rows (a table is judged as written, not as driven).
///
/// # Examples
///
/// ```
/// use moesi::compat::check_table;
/// use moesi::protocols::{Berkeley, Illinois};
/// use moesi::Protocol;
///
/// assert!(check_table(Berkeley::new().policy_table().unwrap()).is_class_member());
/// assert!(!check_table(Illinois::new().policy_table().unwrap()).is_class_member());
/// ```
#[must_use]
pub fn check_table(table: &PolicyTable) -> CompatReport {
    let reachable = table_reachable(table);
    let cells_checked = reachable
        .iter()
        .map(|&s| {
            LocalEvent::ALL
                .iter()
                .filter(|&&e| table.local(s, e).is_some())
                .count()
                + BusEvent::ALL
                    .iter()
                    .filter(|&&e| table.bus(s, e).is_some())
                    .count()
        })
        .sum();
    CompatReport {
        name: table.name().to_string(),
        violations: table.class_violations(),
        reachable,
        cells_checked,
    }
}

/// Checks every reachable cell of a protocol against the permitted sets of
/// Tables 1 and 2.
///
/// Protocols that expose an exact [`PolicyTable`] take a structural fast
/// path: if [`check_table`] finds the table clean, sampling is skipped
/// entirely — every decision the interpreter can make *is* a table cell, so
/// the sampled check could not disagree. Stateful or out-of-class protocols
/// fall through to the exhaustive per-cell sampling below, preserving the
/// sampled violation messages.
#[must_use]
pub fn check_protocol<P: Protocol + ?Sized>(protocol: &mut P) -> CompatReport {
    if protocol.table_is_exact() {
        if let Some(table) = protocol.policy_table().copied() {
            let structural = check_table(&table);
            if structural.is_class_member() {
                return structural;
            }
        }
    }
    let reachable = reachable_states(protocol);
    let mut violations = Vec::new();
    let mut cells_checked = 0;
    let lctx = LocalCtx::default();
    let sctx = SnoopCtx::default();

    for &state in &reachable {
        for event in LocalEvent::ALL {
            let permitted = table::permitted_local(state, event, protocol.kind());
            if permitted.is_empty() {
                continue;
            }
            cells_checked += 1;
            let mut seen = BTreeSet::new();
            for _ in 0..SAMPLES_PER_CELL {
                let action = protocol.on_local(state, event, &lctx);
                if !permitted.contains(&action) && seen.insert(action.to_string()) {
                    violations.push(format!(
                        "local ({state}, {event}): chose `{action}`, permitted: {}",
                        permitted
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" | ")
                    ));
                }
            }
        }
        for event in BusEvent::ALL {
            let permitted = table::permitted_bus(state, event);
            if permitted.is_empty() {
                continue;
            }
            cells_checked += 1;
            let mut seen = BTreeSet::new();
            for _ in 0..SAMPLES_PER_CELL {
                let reaction = protocol.on_bus(state, event, &sctx);
                if reaction.busy.is_some() {
                    if seen.insert(reaction.to_string()) {
                        violations.push(format!(
                            "bus ({state}, {event}): `{reaction}` uses BS, which is outside the class"
                        ));
                    }
                    continue;
                }
                if !permitted.contains(&reaction) && seen.insert(reaction.to_string()) {
                    violations.push(format!(
                        "bus ({state}, {event}): chose `{reaction}`, permitted: {}",
                        permitted
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" | ")
                    ));
                }
            }
        }
    }

    CompatReport {
        name: protocol.name().to_string(),
        violations,
        reachable,
        cells_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{
        Berkeley, Dragon, Firefly, Illinois, MoesiInvalidating, MoesiPreferred, NonCaching,
        PuzakRefinement, RandomPolicy, WriteOnce, WriteThrough,
    };
    use crate::CacheKind;

    #[test]
    fn class_members_pass() {
        assert!(check_protocol(&mut MoesiPreferred::new()).is_class_member());
        assert!(check_protocol(&mut MoesiInvalidating::new()).is_class_member());
        assert!(check_protocol(&mut PuzakRefinement::new()).is_class_member());
        assert!(check_protocol(&mut Berkeley::new()).is_class_member());
        assert!(check_protocol(&mut Dragon::new()).is_class_member());
        assert!(check_protocol(&mut WriteThrough::new()).is_class_member());
        assert!(check_protocol(&mut WriteThrough::non_broadcasting()).is_class_member());
        assert!(check_protocol(&mut NonCaching::new()).is_class_member());
        assert!(check_protocol(&mut NonCaching::broadcasting()).is_class_member());
    }

    #[test]
    fn the_random_policy_is_a_class_member_by_construction() {
        for kind in CacheKind::ALL {
            for seed in 0..4 {
                let report = check_protocol(&mut RandomPolicy::new(kind, seed));
                assert!(report.is_class_member(), "{report}");
            }
        }
    }

    #[test]
    fn adapted_protocols_fail() {
        for report in [
            check_protocol(&mut WriteOnce::new()),
            check_protocol(&mut WriteOnce::always_pushing()),
            check_protocol(&mut Illinois::new()),
            check_protocol(&mut Firefly::new()),
        ] {
            assert!(!report.is_class_member(), "{report}");
        }
    }

    #[test]
    fn reachable_states_match_protocol_structure() {
        use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};
        let berkeley = reachable_states(&mut Berkeley::new());
        assert!(!berkeley.contains(&Exclusive), "Berkeley has no E state");
        assert!(berkeley.contains(&Owned));

        let write_once = reachable_states(&mut WriteOnce::new());
        assert!(!write_once.contains(&Owned), "Write-Once has no O state");
        assert!(write_once.contains(&Exclusive));

        let moesi = reachable_states(&mut MoesiPreferred::new());
        assert_eq!(
            moesi,
            BTreeSet::from([Modified, Owned, Exclusive, Shareable, Invalid])
        );

        let wt = reachable_states(&mut WriteThrough::new());
        assert_eq!(wt, BTreeSet::from([Shareable, Invalid]));

        let nc = reachable_states(&mut NonCaching::new());
        assert_eq!(nc, BTreeSet::from([Invalid]));
    }

    #[test]
    fn structural_and_sampled_checks_agree_for_every_protocol() {
        for p in crate::protocols::all_protocols(7) {
            let mut p = p;
            let sampled = check_protocol(p.as_mut()).is_class_member();
            if let Some(table) = p.policy_table() {
                assert_eq!(
                    check_table(table).is_class_member(),
                    sampled,
                    "{}: structural and sampled verdicts disagree",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn a_mutated_cell_is_rejected_by_both_checks() {
        use crate::action::LocalAction;
        use crate::policy::{PolicyTable, TablePolicy};
        use crate::CacheKind;

        // Corrupt one cell of the preferred table: an S-hit read that
        // silently jumps to M is in no column of Table 1.
        let mut table = PolicyTable::preferred("mutant", CacheKind::CopyBack);
        table.set_local_unchecked(
            LineState::Shareable,
            LocalEvent::Read,
            LocalAction::silent(LineState::Modified),
        );

        let structural = check_table(&table);
        assert!(!structural.is_class_member());
        assert!(
            structural
                .violations()
                .iter()
                .any(|v| v.contains("(S, Read)")),
            "{structural}"
        );

        let sampled = check_protocol(&mut TablePolicy::new(table));
        assert!(!sampled.is_class_member());
        assert!(
            sampled.violations().iter().any(|v| v.contains("(S, Read)")),
            "{sampled}"
        );
    }

    #[test]
    fn the_fast_path_preserves_the_report_shape() {
        // MOESI preferred takes the structural fast path; its report must
        // still show full reachability and a sensible cell count.
        let report = check_protocol(&mut MoesiPreferred::new());
        assert!(report.is_class_member());
        assert_eq!(report.reachable_states().len(), 5);
        assert_eq!(report.cells_checked(), 44);
    }

    #[test]
    fn report_display_is_informative() {
        let ok = check_protocol(&mut MoesiPreferred::new());
        assert!(ok.to_string().contains("class member"));
        assert!(ok.cells_checked() > 10);

        let bad = check_protocol(&mut Firefly::new());
        let text = bad.to_string();
        assert!(text.contains("NOT a class member"));
        assert!(text.contains("BS"));
    }
}
