//! Exhaustive structural properties of the Tables 1/2 permitted sets — the
//! well-formedness conditions every entry must satisfy for the Futurebus to
//! be able to carry it.

use moesi::{table, BusEvent, BusOp, CacheKind, LineState, LocalEvent, ResultState};

#[test]
fn every_permitted_action_drives_legal_signals() {
    for kind in CacheKind::ALL {
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                for action in table::permitted_local(state, event, kind) {
                    assert!(
                        action.signals.is_legal(),
                        "({kind}, {state}, {event}): {action} drives illegal signals"
                    );
                }
            }
        }
    }
}

#[test]
fn every_bus_using_action_is_classifiable_by_snoopers() {
    // Whatever a master drives, every snooper must be able to map the
    // signals to a Table 2 column.
    for kind in CacheKind::ALL {
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                for action in table::permitted_local(state, event, kind) {
                    if !action.bus_op.uses_bus() || action.bus_op == BusOp::ReadThenWrite {
                        continue;
                    }
                    assert!(
                        BusEvent::from_signals(action.signals).is_some(),
                        "({kind}, {state}, {event}): {action} is not classifiable"
                    );
                }
            }
        }
    }
}

#[test]
fn preferred_entries_are_the_first_permitted() {
    for kind in CacheKind::ALL {
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                let permitted = table::permitted_local(state, event, kind);
                assert_eq!(
                    table::preferred_local(state, event, kind),
                    permitted.first().copied(),
                );
            }
        }
    }
    for state in LineState::ALL {
        for event in BusEvent::ALL {
            let permitted = table::permitted_bus(state, event);
            assert_eq!(
                table::preferred_bus(state, event),
                permitted.first().copied()
            );
        }
    }
}

#[test]
fn permitted_sets_contain_no_duplicates() {
    for kind in CacheKind::ALL {
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                let permitted = table::permitted_local(state, event, kind);
                for (i, a) in permitted.iter().enumerate() {
                    for b in &permitted[i + 1..] {
                        assert_ne!(a, b, "duplicate in ({kind}, {state}, {event})");
                    }
                }
            }
        }
    }
    for state in LineState::ALL {
        for event in BusEvent::ALL {
            let permitted = table::permitted_bus(state, event);
            for (i, a) in permitted.iter().enumerate() {
                for b in &permitted[i + 1..] {
                    assert_ne!(a, b, "duplicate in ({state}, {event})");
                }
            }
        }
    }
}

#[test]
fn limited_clients_never_reach_owned_or_exclusive_states() {
    // Write-through and non-caching actions can never produce M, O or E.
    for kind in [CacheKind::WriteThrough, CacheKind::NonCaching] {
        for state in LineState::ALL {
            for event in LocalEvent::ALL {
                for action in table::permitted_local(state, event, kind) {
                    if action.bus_op == BusOp::ReadThenWrite {
                        continue;
                    }
                    for r in action.result.possible() {
                        assert!(
                            !r.is_owned() && !r.is_exclusive() || r == LineState::Invalid,
                            "({kind}, {state}, {event}): {action} reaches {r}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn note_9_and_10_weakenings_are_present_where_choices_exist() {
    // Wherever the preferred result is CH:O/M, a fixed-O alternative with the
    // same transaction shape must be permitted (note 9).
    let k = CacheKind::CopyBack;
    for state in [LineState::Owned, LineState::Shareable] {
        let permitted = table::permitted_local(state, LocalEvent::Write, k);
        let preferred = permitted[0];
        assert_eq!(preferred.result, ResultState::CH_O_M);
        assert!(
            permitted.iter().any(|a| {
                a.result == ResultState::Fixed(LineState::Owned)
                    && a.signals == preferred.signals
                    && a.bus_op == preferred.bus_op
            }),
            "({state}, Write): note-9 weakening missing"
        );
    }
    // Note 10: the read-miss CH:S/E cell admits plain S with identical
    // signals.
    let permitted = table::permitted_local(LineState::Invalid, LocalEvent::Read, k);
    let preferred = permitted[0];
    assert_eq!(preferred.result, ResultState::CH_S_E);
    assert!(permitted
        .iter()
        .any(|a| a.result == ResultState::Fixed(LineState::Shareable)
            && a.signals == preferred.signals));
}

#[test]
fn note_11_invalid_alternatives_exist_for_unowned_bus_results() {
    // Every bus cell whose preferred result keeps an E or S copy must also
    // permit dropping to I.
    for state in [LineState::Exclusive, LineState::Shareable] {
        for event in BusEvent::ALL {
            let permitted = table::permitted_bus(state, event);
            if permitted.is_empty() {
                continue;
            }
            let keeps_copy = permitted[0]
                .result
                .possible()
                .iter()
                .any(|r| r.is_unowned_valid());
            if keeps_copy {
                assert!(
                    permitted
                        .iter()
                        .any(|r| r.result == ResultState::Fixed(LineState::Invalid)),
                    "({state}, {event}): note-11 I alternative missing"
                );
            }
        }
    }
}

#[test]
fn bus_reactions_never_combine_bs_with_other_lines() {
    for state in LineState::ALL {
        for event in BusEvent::ALL {
            for r in table::permitted_bus(state, event) {
                if r.busy.is_some() {
                    panic!("class cells must not use BS: ({state}, {event}): {r}");
                }
            }
        }
    }
}

#[test]
fn only_writes_carry_im_and_only_modifies_carry_bc() {
    for kind in CacheKind::ALL {
        for state in LineState::ALL {
            // Reads, passes and flushes never assert IM.
            for event in [LocalEvent::Read, LocalEvent::Pass, LocalEvent::Flush] {
                for action in table::permitted_local(state, event, kind) {
                    assert!(
                        !action.signals.im,
                        "({kind}, {state}, {event}): {action} asserts IM"
                    );
                }
            }
            // Every bus-using write asserts IM (writes announce modification).
            for action in table::permitted_local(state, LocalEvent::Write, kind) {
                if action.bus_op.uses_bus() && action.bus_op != BusOp::ReadThenWrite {
                    assert!(
                        action.signals.im,
                        "({kind}, {state}, Write): {action} lacks IM"
                    );
                }
            }
        }
    }
}

#[test]
fn result_states_are_reachable_for_the_kind() {
    for kind in CacheKind::ALL {
        for state in LineState::ALL {
            for event in BusEvent::ALL {
                // Bus reactions only apply to states the kind can hold.
                if !kind.reachable_states().contains(&state) {
                    continue;
                }
                for reaction in table::permitted_bus(state, event) {
                    for r in reaction.result.possible() {
                        if kind == CacheKind::CopyBack {
                            assert!(kind.reachable_states().contains(&r));
                        }
                    }
                }
            }
        }
    }
}
