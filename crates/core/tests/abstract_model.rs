//! A pure state-level model checker for the compatible class.
//!
//! Independently of the full simulator (which carries real data through a
//! bus model), this test drives N abstract caches over ONE line, picking a
//! cache, an event and a *random permitted entry* from Tables 1/2 on every
//! round — the §3.4 "extreme case" — and checks the structural safety
//! properties the MOESI definitions promise:
//!
//! 1. at most one cache owns the line;
//! 2. an exclusive holder (M/E) is the only valid copy;
//! 3. whenever main memory is stale, exactly one cache owns the line
//!    (no data loss);
//! 4. every read can be served: memory is valid or an owner intervenes;
//! 5. write-through and non-caching clients stay within their state subsets.

use moesi::rng::SmallRng;
use moesi::table;
use moesi::{BusEvent, BusOp, CacheKind, LineState, LocalEvent};

/// One abstract cache: a protocol kind and its state for the single line.
#[derive(Clone, Copy, Debug)]
struct AbstractCache {
    kind: CacheKind,
    state: LineState,
}

/// The abstract machine: caches plus one bit of memory truth.
#[derive(Clone, Debug)]
struct Model {
    caches: Vec<AbstractCache>,
    /// Whether main memory holds the current value of the line.
    memory_valid: bool,
    rng: SmallRng,
    trace: Vec<String>,
}

impl Model {
    fn new(kinds: &[CacheKind], seed: u64) -> Self {
        Model {
            caches: kinds
                .iter()
                .map(|&kind| AbstractCache {
                    kind,
                    state: LineState::Invalid,
                })
                .collect(),
            memory_valid: true,
            rng: SmallRng::seed_from_u64(seed),
            trace: Vec::new(),
        }
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.rng.gen_range(0..options.len())]
    }

    /// Executes one random local event on one random cache, with every other
    /// cache reacting through a random permitted Table 2 entry.
    fn step(&mut self) {
        let master = self.rng.gen_range(0..self.caches.len());
        let kind = self.caches[master].kind;
        let state = self.caches[master].state;

        // Choose among the events legal for this (state, kind).
        let events: Vec<LocalEvent> = LocalEvent::ALL
            .into_iter()
            .filter(|&e| !table::permitted_local(state, e, kind).is_empty())
            .collect();
        if events.is_empty() {
            return;
        }
        let event = self.pick(&events);
        let actions = table::permitted_local(state, event, kind);
        let action = actions[self.rng.gen_range(0..actions.len())];
        self.trace
            .push(format!("cache{master}({kind}) {state} {event}: {action}"));

        match action.bus_op {
            BusOp::None => {
                // Silent transition (M/E writes, clean flushes).
                self.caches[master].state = action.result.resolve(false);
            }
            BusOp::ReadThenWrite => {
                // First transaction: the protocol's I/Read entry.
                let kind = self.caches[master].kind;
                let reads = table::permitted_local(state, LocalEvent::Read, kind);
                let read = reads[self.rng.gen_range(0..reads.len())];
                self.apply_master_txn(master, read);
                let mid = self.caches[master].state;
                // Re-decide the write from the new state.
                let followups = table::permitted_local(mid, LocalEvent::Write, kind);
                assert!(
                    !followups.is_empty(),
                    "Read>Write reached a dead state {mid} for {kind}"
                );
                let follow = followups[self.rng.gen_range(0..followups.len())];
                if follow.bus_op == BusOp::None {
                    self.caches[master].state = follow.result.resolve(false);
                } else if follow.bus_op != BusOp::ReadThenWrite {
                    self.apply_master_txn(master, follow);
                }
            }
            _ => self.apply_master_txn(master, action),
        }
        self.check();
    }

    /// Puts the chosen action's transaction on the abstract bus.
    fn apply_master_txn(&mut self, master: usize, action: moesi::LocalAction) {
        let event = BusEvent::from_signals(action.signals).expect("legal signals");
        // Write-backs (W with ~IM) reach memory; so do broadcast writes.
        let is_write_txn = matches!(action.bus_op, BusOp::Write);
        let reaches_memory = is_write_txn && (action.signals.bc || !action.signals.im);

        let (ch_any, any_di) = self.snoop_all(master, event);

        if reaches_memory {
            self.memory_valid = true;
        } else if is_write_txn && action.signals.im {
            // A non-broadcast write transaction: captured by a DI owner
            // (memory preempted) or absorbed by memory.
            self.memory_valid = !any_di;
        }

        // A read must be servable.
        if action.bus_op == BusOp::Read {
            assert!(
                self.memory_valid || any_di,
                "data loss: read with stale memory and no intervener\n{}",
                self.trace.join("\n")
            );
        }

        let result = action.result.resolve(ch_any);
        self.caches[master].state = result;
        // A master that ends the transaction owning the line makes memory's
        // validity irrelevant; if it ends unowned and nobody owns, memory
        // must have been the source of truth — checked in `check`.
        if result.is_owned() {
            // A local write happened that memory may not have seen.
            if is_write_txn && !action.signals.bc {
                self.memory_valid = false;
            }
            if action.bus_op == BusOp::Read && action.signals.im {
                // RWITM: the upcoming local write dirties the line.
                self.memory_valid = false;
            }
            if action.bus_op == BusOp::AddressOnly {
                self.memory_valid = false;
            }
        }
    }

    /// All non-masters react with a random permitted Table 2 entry.
    /// Returns (any CH asserted, any DI asserted).
    fn snoop_all(&mut self, master: usize, event: BusEvent) -> (bool, bool) {
        // First pass: choose reactions.
        let mut chosen = Vec::new();
        for i in 0..self.caches.len() {
            if i == master || self.caches[i].kind == CacheKind::NonCaching {
                continue;
            }
            let state = self.caches[i].state;
            let permitted = table::permitted_bus(state, event);
            assert!(
                !permitted.is_empty(),
                "error-condition cell reached: cache{i} in {state} sees {event}\n{}",
                self.trace.join("\n")
            );
            let reaction = permitted[self.rng.gen_range(0..permitted.len())];
            chosen.push((i, reaction));
        }
        let ch_any = chosen.iter().any(|(_, r)| r.ch);
        let di_any = chosen.iter().any(|(_, r)| r.di);
        // Second pass: commit, resolving each against the *others'* CH.
        for (i, reaction) in chosen.clone() {
            let ch_others = chosen.iter().any(|(j, r)| *j != i && r.ch);
            self.caches[i].state = reaction.result.resolve(ch_others);
        }
        (ch_any, di_any)
    }

    /// The structural safety properties.
    fn check(&self) {
        let owners: Vec<usize> = self
            .caches
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state.is_owned())
            .map(|(i, _)| i)
            .collect();
        assert!(
            owners.len() <= 1,
            "multiple owners: {owners:?}\n{}",
            self.trace.join("\n")
        );
        if let Some((i, _)) = self
            .caches
            .iter()
            .enumerate()
            .find(|(_, c)| c.state.is_exclusive())
        {
            let other = self
                .caches
                .iter()
                .enumerate()
                .find(|(j, c)| *j != i && c.state.is_valid());
            assert!(
                other.is_none(),
                "exclusivity violated: cache{i} exclusive but {other:?} valid\n{}",
                self.trace.join("\n")
            );
        }
        assert!(
            self.memory_valid || owners.len() == 1,
            "stale memory with no owner (data lost)\n{}",
            self.trace.join("\n")
        );
        for (i, c) in self.caches.iter().enumerate() {
            assert!(
                c.kind.reachable_states().contains(&c.state),
                "cache{i} ({}) reached illegal state {}\n{}",
                c.kind,
                c.state,
                self.trace.join("\n")
            );
        }
    }
}

fn kinds_mix(seed: u64) -> Vec<CacheKind> {
    // 2-6 caches, mixed kinds, always at least one copy-back.
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..7);
    let mut kinds = vec![CacheKind::CopyBack];
    for _ in 1..n {
        kinds.push(match rng.gen_range(0u32..4) {
            0 | 1 => CacheKind::CopyBack,
            2 => CacheKind::WriteThrough,
            _ => CacheKind::NonCaching,
        });
    }
    kinds
}

#[test]
fn random_permitted_choices_preserve_the_state_invariants() {
    for seed in 0..50u64 {
        let kinds = kinds_mix(seed);
        let mut model = Model::new(&kinds, seed.wrapping_mul(97));
        for _ in 0..400 {
            model.step();
        }
    }
}

#[test]
fn all_copy_back_machines_hold_up_under_long_runs() {
    let kinds = vec![CacheKind::CopyBack; 5];
    for seed in 0..10u64 {
        let mut model = Model::new(&kinds, seed);
        for _ in 0..2_000 {
            model.step();
        }
    }
}

#[test]
fn write_through_only_machines_never_own() {
    let kinds = vec![CacheKind::WriteThrough; 4];
    for seed in 0..10u64 {
        let mut model = Model::new(&kinds, seed);
        for _ in 0..500 {
            model.step();
        }
        assert!(
            model.memory_valid,
            "write-through machines keep memory current"
        );
        for c in &model.caches {
            assert!(!c.state.is_owned());
        }
    }
}

#[test]
fn non_caching_only_machines_trivially_hold() {
    let kinds = vec![CacheKind::NonCaching; 3];
    let mut model = Model::new(&kinds, 1);
    for _ in 0..300 {
        model.step();
    }
    assert!(model.memory_valid);
}
