//! Property tests of the Futurebus transaction engine's data-path semantics:
//! the memory-update rules of §2/§4 must hold for arbitrary transaction
//! sequences against arbitrary snooper responses.

use futurebus::{
    BusModule, BusObservation, Futurebus, PushWrite, TimingConfig, TransactionRequest,
};
use moesi::{MasterSignals, ResponseSignals};
use proptest::prelude::*;

const LINE: usize = 16;

/// A snooper scripted by a response list, recording everything it observes.
struct Scripted {
    responses: Vec<ResponseSignals>,
    cursor: usize,
    line: Vec<u8>,
    seen_payloads: Vec<Vec<u8>>,
    pushes: usize,
}

impl Scripted {
    fn new(responses: Vec<ResponseSignals>) -> Self {
        Scripted {
            responses,
            cursor: 0,
            line: vec![0xAB; LINE],
            seen_payloads: Vec::new(),
            pushes: 0,
        }
    }
}

impl BusModule for Scripted {
    fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
        let r = self.responses[self.cursor % self.responses.len()];
        self.cursor += 1;
        r
    }
    fn supply_line(&mut self, _addr: u64) -> Box<[u8]> {
        self.line.clone().into_boxed_slice()
    }
    fn prepare_push(&mut self, _addr: u64) -> PushWrite {
        self.pushes += 1;
        PushWrite {
            data: self.line.clone().into_boxed_slice(),
            signals: MasterSignals::CA,
        }
    }
    fn complete(&mut self, _req: &TransactionRequest, obs: &BusObservation<'_>) {
        if let Some((_, bytes)) = obs.write_data {
            self.seen_payloads.push(bytes.to_vec());
        }
    }
}

fn response_strategy() -> impl Strategy<Value = ResponseSignals> {
    // No BS here (push loops are tested separately); at most one DI asserted
    // per transaction is the caller's responsibility, tested below with a
    // single snooper.
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(ch, di, sl)| ResponseSignals {
        ch,
        di,
        sl,
        bs: false,
    })
}

#[derive(Clone, Debug)]
enum Txn {
    Read {
        ca: bool,
        im: bool,
    },
    Write {
        offset: usize,
        len: usize,
        bc: bool,
        ca: bool,
    },
    Invalidate,
}

fn txn_strategy() -> impl Strategy<Value = Txn> {
    prop_oneof![
        (any::<bool>(), any::<bool>()).prop_map(|(ca, im)| Txn::Read { ca, im }),
        (0..LINE, 1..4usize, any::<bool>(), any::<bool>()).prop_map(|(offset, len, bc, ca)| {
            Txn::Write {
                offset: offset.min(LINE - len),
                len,
                bc,
                ca,
            }
        }),
        Just(Txn::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_update_rules_hold_for_any_sequence(
        txns in proptest::collection::vec((txn_strategy(), response_strategy()), 1..40),
    ) {
        let mut bus = Futurebus::new(LINE, TimingConfig::default());
        // Shadow of what memory must contain.
        let mut shadow = [0u8; LINE];
        let addr = 0x40;

        for (i, (txn, response)) in txns.into_iter().enumerate() {
            let mut snooper = Scripted::new(vec![response]);
            let mut mods: Vec<&mut dyn BusModule> = vec![&mut snooper];
            match txn {
                Txn::Read { ca, im } => {
                    let signals = MasterSignals::new(ca, im, false);
                    let out = bus
                        .execute(&TransactionRequest::read(1, addr, signals), &mut mods)
                        .expect("read");
                    // Reads never modify memory.
                    prop_assert_eq!(&bus.memory().peek_line(addr)[..], &shadow[..], "txn {}", i);
                    // Data came from the DI snooper or from memory.
                    let data = out.data.expect("reads return data");
                    if response.di {
                        prop_assert_eq!(&data[..], &[0xAB; LINE][..]);
                    } else {
                        prop_assert_eq!(&data[..], &shadow[..]);
                    }
                    prop_assert_eq!(out.ch_seen, response.ch);
                }
                Txn::Write { offset, len, bc, ca } => {
                    let bytes = vec![i as u8; len];
                    let signals = MasterSignals::new(ca, true, bc);
                    bus.execute(
                        &TransactionRequest::write(1, addr, signals, offset, bytes.clone()),
                        &mut mods,
                    )
                    .expect("write");
                    if bc {
                        // Broadcast writes always reach memory; SL snoopers
                        // receive the payload.
                        shadow[offset..offset + len].copy_from_slice(&bytes);
                        if response.sl {
                            prop_assert_eq!(
                                snooper.seen_payloads.last(),
                                Some(&bytes)
                            );
                        }
                    } else if response.di {
                        // Captured: memory untouched, owner got the payload.
                        prop_assert_eq!(snooper.seen_payloads.last(), Some(&bytes));
                    } else {
                        shadow[offset..offset + len].copy_from_slice(&bytes);
                    }
                    prop_assert_eq!(&bus.memory().peek_line(addr)[..], &shadow[..], "txn {}", i);
                }
                Txn::Invalidate => {
                    bus.execute(
                        &TransactionRequest::address_only(1, addr, MasterSignals::CA_IM),
                        &mut mods,
                    )
                    .expect("invalidate");
                    prop_assert_eq!(&bus.memory().peek_line(addr)[..], &shadow[..]);
                }
            }
        }
    }

    #[test]
    fn stats_add_up_for_any_sequence(
        txns in proptest::collection::vec(txn_strategy(), 1..40),
    ) {
        let mut bus = Futurebus::new(LINE, TimingConfig::default());
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut invals = 0u64;
        for txn in txns {
            match txn {
                Txn::Read { ca, im } => {
                    bus.execute(
                        &TransactionRequest::read(0, 0, MasterSignals::new(ca, im, false)),
                        &mut [],
                    )
                    .expect("read");
                    reads += 1;
                }
                Txn::Write { offset, len, bc, ca } => {
                    bus.execute(
                        &TransactionRequest::write(
                            0,
                            0,
                            MasterSignals::new(ca, true, bc),
                            offset,
                            vec![0; len],
                        ),
                        &mut [],
                    )
                    .expect("write");
                    writes += 1;
                }
                Txn::Invalidate => {
                    bus.execute(
                        &TransactionRequest::address_only(0, 0, MasterSignals::CA_IM),
                        &mut [],
                    )
                    .expect("invalidate");
                    invals += 1;
                }
            }
        }
        let s = bus.stats();
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.writes, writes);
        prop_assert_eq!(s.address_only, invals);
        prop_assert_eq!(s.transactions, reads + writes + invals);
        prop_assert!(s.busy_ns > 0);
    }

    #[test]
    fn bs_push_rounds_always_converge_or_error(
        pre_aborts in 0usize..6,
    ) {
        // A snooper that aborts `pre_aborts` times before settling.
        let mut responses =
            vec![ResponseSignals { bs: true, ..ResponseSignals::NONE }; pre_aborts];
        responses.push(ResponseSignals::CH);
        let mut snooper = Scripted::new(responses);
        let mut bus = Futurebus::new(LINE, TimingConfig::default());
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut snooper];
        let result = bus.execute(&TransactionRequest::read(1, 0, MasterSignals::CA), &mut mods);
        if pre_aborts <= 4 {
            let out = result.expect("within the retry limit");
            prop_assert_eq!(out.aborts as usize, pre_aborts);
            prop_assert_eq!(snooper.pushes, pre_aborts);
            if pre_aborts > 0 {
                // The push left the snooper's line in memory.
                prop_assert_eq!(&out.data.expect("read data")[..], &[0xAB; LINE][..]);
            }
        } else {
            prop_assert!(result.is_err(), "must hit the retry limit");
        }
    }
}
