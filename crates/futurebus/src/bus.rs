//! The Futurebus transaction engine.
//!
//! [`Futurebus::execute`] runs one transaction end-to-end: the broadcast
//! address cycle (every attached module snoops, §2.1), wired-OR combination
//! of the response lines, BS abort-push-restart for the adapted protocols,
//! the data phase (memory, or an intervening owner preempting it), and the
//! completion phase in which every snooper commits its state transition with
//! the resolved CH observation.
//!
//! Memory-update semantics follow the paper exactly:
//!
//! * a **read** is served by the DI owner if one responds, else by memory;
//!   intervention does *not* update memory (that limitation is why Write-Once,
//!   Illinois and Firefly need BS, §4.3–4.5);
//! * a **non-broadcast write** is captured by the DI owner if one responds
//!   (memory preempted), else absorbed by memory;
//! * a **broadcast write** updates main memory *and* every SL-connected cache
//!   (§4.2: "when a broadcast write is done on the Futurebus, it affects all
//!   caches holding the line and also main memory");
//! * an **address-only** transaction moves no data.

use crate::memory::SparseMemory;
use crate::module::{BusModule, BusObservation};
use crate::stats::BusStats;
use crate::timing::{DataSourceLatency, Nanos, TimingConfig};
use crate::trace::{BusTrace, TraceKind, TraceRecord};
use crate::transaction::{
    BusError, DataSource, TransactionKind, TransactionOutcome, TransactionRequest,
};
use moesi::ResponseSignals;

/// The shared backplane bus, owning main memory (the default owner of every
/// line) and the timing model.
///
/// # Examples
///
/// ```
/// use futurebus::{Futurebus, TransactionRequest};
/// use moesi::MasterSignals;
///
/// let mut bus = Futurebus::new(16, futurebus::TimingConfig::default());
/// // A read with no caches attached is served by memory.
/// let out = bus
///     .execute(&TransactionRequest::read(0, 0x40, MasterSignals::CA), &mut [])
///     .unwrap();
/// assert_eq!(out.data.unwrap().len(), 16);
/// assert!(!out.ch_seen);
/// ```
#[derive(Debug)]
pub struct Futurebus {
    memory: SparseMemory,
    timing: TimingConfig,
    stats: BusStats,
    max_retries: u32,
    trace: BusTrace,
}

impl Futurebus {
    /// Creates a bus with the given line size (bytes) and timing model.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a non-zero power of two.
    #[must_use]
    pub fn new(line_size: usize, timing: TimingConfig) -> Self {
        Futurebus {
            memory: SparseMemory::new(line_size),
            timing,
            stats: BusStats::new(),
            max_retries: 4,
            trace: BusTrace::new(0),
        }
    }

    /// Enables transaction tracing, keeping the most recent `capacity`
    /// records (0 disables).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = BusTrace::new(capacity);
    }

    /// The transaction trace (empty unless [`enable_trace`] was called).
    ///
    /// [`enable_trace`]: Futurebus::enable_trace
    #[must_use]
    pub fn trace(&self) -> &BusTrace {
        &self.trace
    }

    /// The configured line size.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.memory.line_size()
    }

    /// The timing model in force.
    #[must_use]
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// Main memory, for initialisation and checking.
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Mutable access to main memory (e.g. to preload a workload image).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.memory
    }

    /// Cumulative bus statistics.
    #[must_use]
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Resets the statistics (memory contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::new();
    }

    /// Runs one transaction. `modules` are all attached snooping units; the
    /// entry at `req.master` is skipped (a master does not snoop itself), so
    /// callers may pass their full module table. Indices in `req.master` and
    /// [`DataSource::Intervention`] refer to this slice.
    ///
    /// # Errors
    ///
    /// See [`BusError`] — illegal signals, unaligned or oversized payloads,
    /// duplicate interveners, or more BS aborts than the retry limit.
    pub fn execute(
        &mut self,
        req: &TransactionRequest,
        modules: &mut [&mut dyn BusModule],
    ) -> Result<TransactionOutcome, BusError> {
        self.validate(req, modules.len())?;
        let line_size = self.memory.line_size();
        let mut duration: Nanos = 0;
        let mut aborts = 0u32;

        loop {
            // ---- Broadcast address cycle: every other module snoops. ----
            let mut replies: Vec<(usize, ResponseSignals)> = Vec::with_capacity(modules.len());
            let mut combined = ResponseSignals::NONE;
            for (idx, module) in modules.iter_mut().enumerate() {
                if idx == req.master {
                    continue;
                }
                let r = module.snoop(req);
                combined = combined.or(r);
                replies.push((idx, r));
            }

            // ---- BS: abort, push, restart (§3.2.2). ----
            if combined.bs {
                aborts += 1;
                self.stats.aborts += 1;
                // The aborted address cycle still occupied the bus.
                duration += self.timing.transaction(0, DataSourceLatency::Master, false);
                if aborts > self.max_retries {
                    return Err(BusError::TooManyRetries(aborts));
                }
                for (idx, r) in &replies {
                    if !r.bs {
                        continue;
                    }
                    let push = modules[*idx].prepare_push(req.addr);
                    assert_eq!(
                        push.data.len(),
                        line_size,
                        "push from module {idx} is not a full line"
                    );
                    self.memory.write_line(req.addr, &push.data);
                    // The push is itself a write transaction on the bus. No
                    // third party needs to snoop it: the pusher held the only
                    // owned copy, and unowned S copies are unaffected by a
                    // CA,~IM write-back.
                    let push_cost = self.timing.transaction(
                        line_size,
                        DataSourceLatency::Master,
                        push.signals.bc,
                    );
                    duration += push_cost;
                    self.stats.pushes += 1;
                    self.stats.transactions += 1;
                    self.stats.writes += 1;
                    self.stats.memory_writes += 1;
                    self.stats.bytes_moved += line_size as u64;
                    self.trace.push(TraceRecord {
                        seq: 0,
                        master: *idx,
                        addr: req.addr,
                        kind: TraceKind::Push,
                        signals: push.signals,
                        responses: ResponseSignals::NONE,
                        source: DataSource::Memory,
                        duration: push_cost,
                        aborts: 0,
                    });
                }
                continue;
            }

            // ---- Resolve the unique intervener, if any. ----
            let interveners: Vec<usize> = replies
                .iter()
                .filter(|(_, r)| r.di)
                .map(|(idx, _)| *idx)
                .collect();
            if interveners.len() > 1 {
                return Err(BusError::MultipleInterveners(interveners));
            }
            let intervener = interveners.first().copied();

            // ---- Data phase. ----
            let broadcast = req.signals.bc;
            let (data, source) = match &req.kind {
                TransactionKind::Read => {
                    let (line, source, latency) = match intervener {
                        Some(idx) => {
                            self.stats.interventions += 1;
                            (
                                modules[idx].supply_line(req.addr),
                                DataSource::Intervention(idx),
                                DataSourceLatency::Intervention,
                            )
                        }
                        None => {
                            self.stats.memory_reads += 1;
                            (
                                self.memory.read_line(req.addr),
                                DataSource::Memory,
                                DataSourceLatency::Memory,
                            )
                        }
                    };
                    duration += self.timing.transaction(line_size, latency, broadcast);
                    self.stats.reads += 1;
                    self.stats.bytes_moved += line_size as u64;
                    (Some(line), source)
                }
                TransactionKind::Write { offset, bytes } => {
                    if broadcast {
                        // Broadcast writes always reach memory (§4.2); SL
                        // snoopers are updated in the completion phase.
                        self.memory.write_bytes(req.addr, *offset, bytes);
                        self.stats.memory_writes += 1;
                    } else if intervener.is_some() {
                        // The owner captures the write; memory is preempted.
                        self.stats.captures += 1;
                    } else {
                        self.memory.write_bytes(req.addr, *offset, bytes);
                        self.stats.memory_writes += 1;
                    }
                    duration +=
                        self.timing
                            .transaction(bytes.len(), DataSourceLatency::Master, broadcast);
                    self.stats.writes += 1;
                    self.stats.bytes_moved += bytes.len() as u64;
                    (
                        None,
                        match intervener {
                            Some(idx) if !broadcast => DataSource::Intervention(idx),
                            _ => DataSource::Memory,
                        },
                    )
                }
                TransactionKind::AddressOnly => {
                    duration += self.timing.transaction(0, DataSourceLatency::Master, false);
                    self.stats.address_only += 1;
                    (None, DataSource::None)
                }
            };
            if broadcast {
                self.stats.broadcasts += 1;
            }

            // ---- Completion phase: commit every snooper's transition. ----
            let payload: Option<(usize, &[u8])> = match &req.kind {
                TransactionKind::Write { offset, bytes } => Some((*offset, bytes.as_slice())),
                _ => None,
            };
            for (idx, r) in &replies {
                let ch_others = replies
                    .iter()
                    .any(|(other, reply)| other != idx && reply.ch);
                let delivers = payload.is_some() && (r.sl || (r.di && !broadcast));
                if r.sl && payload.is_some() {
                    self.stats.sl_updates += 1;
                }
                modules[*idx].complete(
                    req,
                    &BusObservation {
                        ch_others,
                        write_data: if delivers { payload } else { None },
                    },
                );
            }

            self.stats.transactions += 1;
            self.stats.busy_ns += duration;

            self.trace.push(TraceRecord {
                seq: 0,
                master: req.master,
                addr: req.addr,
                kind: match &req.kind {
                    TransactionKind::Read => TraceKind::Read,
                    TransactionKind::Write { .. } => TraceKind::Write,
                    TransactionKind::AddressOnly => TraceKind::AddressOnly,
                },
                signals: req.signals,
                responses: combined,
                source,
                duration,
                aborts,
            });

            return Ok(TransactionOutcome {
                data,
                responses: combined,
                ch_seen: combined.ch,
                source,
                duration,
                aborts,
            });
        }
    }

    fn validate(&self, req: &TransactionRequest, module_count: usize) -> Result<(), BusError> {
        if !req.signals.is_legal() {
            return Err(BusError::IllegalSignals(req.signals));
        }
        // The master index may equal module_count when the master is not part
        // of the snoop population (e.g. a bare test harness); anything beyond
        // is a programming error.
        if req.master > module_count {
            return Err(BusError::UnknownMaster(req.master));
        }
        if !self.memory.is_aligned(req.addr) {
            return Err(BusError::UnalignedAddress(req.addr));
        }
        if let TransactionKind::Write { offset, bytes } = &req.kind {
            if offset + bytes.len() > self.memory.line_size() {
                return Err(BusError::PayloadOutOfRange {
                    offset: *offset,
                    len: bytes.len(),
                    line_size: self.memory.line_size(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::PushWrite;
    use moesi::MasterSignals;

    /// A scripted snooper for exercising the engine.
    struct Mock {
        response: ResponseSignals,
        line: Vec<u8>,
        completions: Vec<(bool, Option<Vec<u8>>)>,
        pushes: u32,
    }

    impl Mock {
        fn quiet() -> Self {
            Mock::with(ResponseSignals::NONE)
        }
        fn with(response: ResponseSignals) -> Self {
            Mock {
                response,
                line: vec![0xEE; 16],
                completions: Vec::new(),
                pushes: 0,
            }
        }
    }

    impl BusModule for Mock {
        fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
            let r = self.response;
            if r.bs {
                // One abort only: react normally on the retry.
                self.response = ResponseSignals::NONE;
            }
            r
        }
        fn supply_line(&mut self, _addr: u64) -> Box<[u8]> {
            self.line.clone().into_boxed_slice()
        }
        fn prepare_push(&mut self, _addr: u64) -> PushWrite {
            self.pushes += 1;
            PushWrite {
                data: self.line.clone().into_boxed_slice(),
                signals: MasterSignals::CA,
            }
        }
        fn complete(&mut self, _req: &TransactionRequest, obs: &BusObservation<'_>) {
            self.completions
                .push((obs.ch_others, obs.write_data.map(|(_, b)| b.to_vec())));
        }
    }

    fn bus() -> Futurebus {
        Futurebus::new(16, TimingConfig::default())
    }

    #[test]
    fn read_without_owner_comes_from_memory() {
        let mut bus = bus();
        bus.memory_mut().write_bytes(0x40, 0, &[7; 16]);
        let mut a = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(&out.data.unwrap()[..], &[7; 16]);
        assert_eq!(bus.stats().memory_reads, 1);
        assert_eq!(bus.stats().interventions, 0);
    }

    #[test]
    fn di_owner_preempts_memory_on_reads() {
        let mut bus = bus();
        bus.memory_mut().write_bytes(0x40, 0, &[1; 16]); // stale
        let mut owner = Mock::with(ResponseSignals {
            di: true,
            ch: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut owner];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.source, DataSource::Intervention(0));
        assert_eq!(
            &out.data.unwrap()[..],
            &[0xEE; 16],
            "owner's data, not memory's"
        );
        assert!(out.ch_seen);
        // Intervention does NOT update memory — the Futurebus limitation.
        assert_eq!(&bus.memory().peek_line(0x40)[..], &[1; 16]);
    }

    #[test]
    fn non_broadcast_write_with_owner_is_captured_not_memorised() {
        let mut bus = bus();
        let mut owner = Mock::with(ResponseSignals {
            di: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut owner];
        let req = TransactionRequest::write(1, 0, MasterSignals::IM, 4, vec![9, 9]);
        bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.stats().captures, 1);
        assert_eq!(bus.stats().memory_writes, 0);
        assert_eq!(owner.completions.len(), 1);
        assert_eq!(owner.completions[0].1.as_deref(), Some(&[9u8, 9][..]));
    }

    #[test]
    fn non_broadcast_write_without_owner_updates_memory() {
        let mut bus = bus();
        let mut other = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut other];
        let req = TransactionRequest::write(1, 0, MasterSignals::IM, 2, vec![5, 6]);
        bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.memory().peek_line(0)[2..4], [5, 6]);
        // A quiet snooper receives no payload.
        assert_eq!(other.completions[0].1, None);
    }

    #[test]
    fn broadcast_write_updates_memory_and_sl_snoopers() {
        let mut bus = bus();
        let mut sharer = Mock::with(ResponseSignals {
            sl: true,
            ch: true,
            ..ResponseSignals::NONE
        });
        let mut bystander = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut sharer, &mut bystander];
        let req = TransactionRequest::write(2, 0, MasterSignals::CA_IM_BC, 0, vec![3; 4]);
        let out = bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.memory().peek_line(0)[..4], [3; 4]);
        assert_eq!(bus.stats().sl_updates, 1);
        assert!(out.ch_seen);
        assert_eq!(sharer.completions[0].1.as_deref(), Some(&[3u8; 4][..]));
        assert_eq!(bystander.completions[0].1, None);
    }

    #[test]
    fn bs_abort_pushes_then_retries() {
        let mut bus = bus();
        let mut dirty = Mock::with(ResponseSignals {
            bs: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut dirty];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.aborts, 1);
        assert_eq!(dirty.pushes, 1);
        // The push updated memory, so the retried read is served by memory
        // with the pushed contents.
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(&out.data.unwrap()[..], &[0xEE; 16]);
        assert_eq!(bus.stats().aborts, 1);
        assert_eq!(bus.stats().pushes, 1);
        assert_eq!(bus.stats().transactions, 2, "push + retried read");
    }

    #[test]
    fn endless_bs_hits_the_retry_limit() {
        struct AlwaysBusy;
        impl BusModule for AlwaysBusy {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            fn prepare_push(&mut self, _addr: u64) -> PushWrite {
                PushWrite {
                    data: vec![0; 16].into_boxed_slice(),
                    signals: MasterSignals::CA,
                }
            }
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        let mut b = AlwaysBusy;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut b];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert!(matches!(err, BusError::TooManyRetries(_)));
    }

    #[test]
    fn duplicate_interveners_are_rejected() {
        let di = ResponseSignals {
            di: true,
            ..ResponseSignals::NONE
        };
        let mut a = Mock::with(di);
        let mut b = Mock::with(di);
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a, &mut b];
        let err = bus
            .execute(
                &TransactionRequest::read(2, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert_eq!(err, BusError::MultipleInterveners(vec![0, 1]));
    }

    #[test]
    fn validation_errors() {
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        let bad_signals = TransactionRequest::read(0, 0, MasterSignals::new(false, false, true));
        assert!(matches!(
            bus.execute(&bad_signals, &mut mods),
            Err(BusError::IllegalSignals(_))
        ));
        let unaligned = TransactionRequest::read(0, 3, MasterSignals::CA);
        assert!(matches!(
            bus.execute(&unaligned, &mut mods),
            Err(BusError::UnalignedAddress(3))
        ));
        let oversized = TransactionRequest::write(0, 0, MasterSignals::IM, 12, vec![0; 8]);
        assert!(matches!(
            bus.execute(&oversized, &mut mods),
            Err(BusError::PayloadOutOfRange { .. })
        ));
        let ghost = TransactionRequest::read(5, 0, MasterSignals::CA);
        assert!(matches!(
            bus.execute(&ghost, &mut mods),
            Err(BusError::UnknownMaster(5))
        ));
    }

    #[test]
    fn ch_others_excludes_the_asker() {
        // Two sharers both assert CH; each must see the *other's* CH, and a
        // quiet third module sees CH from both.
        let ch = ResponseSignals::CH;
        let mut a = Mock::with(ch);
        let mut b = Mock::with(ch);
        let mut c = Mock::quiet();
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a, &mut b, &mut c];
        bus.execute(
            &TransactionRequest::read(3, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(a.completions[0].0);
        assert!(b.completions[0].0);
        assert!(c.completions[0].0);

        // With a single CH asserter, it must NOT see its own CH echoed back.
        let mut solo = Mock::with(ch);
        let mut quiet = Mock::quiet();
        let mut bus = Futurebus::new(16, TimingConfig::default());
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut solo, &mut quiet];
        bus.execute(
            &TransactionRequest::read(2, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(!solo.completions[0].0, "own CH must not count");
        assert!(quiet.completions[0].0);
    }

    #[test]
    fn address_only_moves_no_data_and_costs_no_transfer() {
        let mut bus = bus();
        let mut s = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut s];
        let out = bus
            .execute(
                &TransactionRequest::address_only(1, 0, MasterSignals::CA_IM),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.data, None);
        assert_eq!(out.source, DataSource::None);
        let t = TimingConfig::default();
        assert_eq!(out.duration, t.arbitration_ns + t.address_cycle_ns);
        assert_eq!(bus.stats().address_only, 1);
        assert_eq!(bus.stats().bytes_moved, 0);
    }

    #[test]
    fn broadcast_writes_cost_the_wired_or_penalty() {
        let mut bus = bus();
        let t = *bus.timing();
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        let plain = bus
            .execute(
                &TransactionRequest::write(0, 0, MasterSignals::IM, 0, vec![0; 4]),
                &mut mods,
            )
            .unwrap();
        let bcast = bus
            .execute(
                &TransactionRequest::write(0, 0, MasterSignals::IM_BC, 0, vec![0; 4]),
                &mut mods,
            )
            .unwrap();
        assert_eq!(bcast.duration - plain.duration, t.broadcast_penalty_ns);
    }

    #[test]
    fn master_does_not_snoop_itself() {
        let mut a = Mock::with(ResponseSignals::CH);
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a];
        // Module 0 is the master: its own CH must not be seen.
        let out = bus
            .execute(
                &TransactionRequest::read(0, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert!(!out.ch_seen);
        assert!(
            a.completions.is_empty(),
            "master gets no completion callback"
        );
    }
}
