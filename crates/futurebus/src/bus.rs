//! The Futurebus transaction engine.
//!
//! [`Futurebus::execute`] runs one transaction end-to-end by driving a
//! [`TxnContext`](crate::phases) through the explicit phase pipeline of
//! [`crate::phases`] — `Arbitrate → AddressBroadcast → SnoopResolve →
//! AbortBackoff → DataTransfer → Commit`, mirroring the paper's staged
//! handshake: the broadcast address cycle (every attached module snoops,
//! §2.1), wired-OR combination of the response lines, BS abort-push-restart
//! for the adapted protocols, the data phase (memory, or an intervening
//! owner preempting it), and the completion phase in which every snooper
//! commits its state transition with the resolved CH observation.
//!
//! Memory-update semantics follow the paper exactly:
//!
//! * a **read** is served by the DI owner if one responds, else by memory;
//!   intervention does *not* update memory (that limitation is why Write-Once,
//!   Illinois and Firefly need BS, §4.3–4.5);
//! * a **non-broadcast write** is captured by the DI owner if one responds
//!   (memory preempted), else absorbed by memory;
//! * a **broadcast write** updates main memory *and* every SL-connected cache
//!   (§4.2: "when a broadcast write is done on the Futurebus, it affects all
//!   caches holding the line and also main memory");
//! * an **address-only** transaction moves no data.
//!
//! The engine also carries the recovery machinery that makes the class
//! degrade gracefully under faulty hardware (see [`fault`](crate::fault)):
//! BS aborts retry under a capped exponential [`RetryPolicy`] instead of a
//! bare cutoff, consistency-line glitches are absorbed by the wired-OR settle
//! window at a 25 ns cost, and a watchdog times out a non-responding snooper
//! and retires it from the snoop set — it is treated thereafter as a
//! non-caching processor, which the class explicitly supports (§3.3).

use crate::arbitration::{Arbiter, Discipline};
use crate::fault::{FaultPlan, TxnFaults};
use crate::memory::SparseMemory;
use crate::module::BusModule;
use crate::observe::{LatencyHistogram, LivenessMonitor, PhaseHistograms, TxnPhases};
use crate::phases::TxnContext;
use crate::stats::BusStats;
use crate::timing::{Nanos, TimingConfig};
use crate::trace::{BusTrace, TraceKind};
use crate::transaction::{BusError, TransactionKind, TransactionOutcome, TransactionRequest};
use moesi::ResponseSignals;
use std::collections::BTreeSet;

/// Capped exponential backoff for BS abort retries.
///
/// The bare `max_retries` cutoff modelled an infinitely patient master; real
/// masters back off so a transient abort storm drains instead of livelocking.
/// Round `n` (1-based) waits `min(base << (n-1), cap)` nanoseconds before the
/// re-arbitrated address cycle; the wait is charged to the transaction and
/// surfaced in [`BusStats::backoff_ns`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Abort rounds tolerated before the bus gives up with
    /// [`BusError::TooManyRetries`].
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base_ns: Nanos,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_ns: Nanos,
    /// Naive discipline: every retry waits exactly `backoff_base_ns` and the
    /// retries stay phase-locked with any periodic interference, so a
    /// phantom abort storm never drains — the adversarial configuration the
    /// liveness watchdog exists to catch. Off by default.
    pub flat_retry: bool,
    /// Arbitration priority aging (§2.1 fairness): after this many
    /// consecutive aborts the master's aged priority outranks any phantom
    /// interferer and the transaction proceeds. Genuine BS aborts are never
    /// bypassed — a real owner's push is required for correctness. Zero
    /// disables aging.
    pub aging_rounds: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            backoff_base_ns: 50,
            backoff_cap_ns: 1600,
            flat_retry: false,
            aging_rounds: 0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry round `round` (1-based); zero for round 0.
    /// Flat retry waits the constant base; the default discipline doubles
    /// up to the cap.
    #[must_use]
    pub fn backoff(&self, round: u32) -> Nanos {
        if round == 0 {
            return 0;
        }
        if self.flat_retry {
            return self.backoff_base_ns;
        }
        let shift = (round - 1).min(20);
        self.backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ns)
    }

    /// The bounded-retry certificate: no transaction ever suffers more than
    /// this many aborts — it either commits within the bound or fails with
    /// [`BusError::TooManyRetries`] at `max_retries + 1`. The regression
    /// suite pins [`BusStats::max_txn_aborts`] against this bound for every
    /// protocol in the class.
    #[must_use]
    pub fn abort_bound(&self) -> u32 {
        self.max_retries + 1
    }
}

/// The shared backplane bus, owning main memory (the default owner of every
/// line) and the timing model.
///
/// # Examples
///
/// ```
/// use futurebus::{Futurebus, TransactionRequest};
/// use moesi::MasterSignals;
///
/// let mut bus = Futurebus::new(16, futurebus::TimingConfig::default());
/// // A read with no caches attached is served by memory.
/// let out = bus
///     .execute(&TransactionRequest::read(0, 0x40, MasterSignals::CA), &mut [])
///     .unwrap();
/// assert_eq!(out.data.unwrap().len(), 16);
/// assert!(!out.ch_seen);
/// ```
#[derive(Debug)]
pub struct Futurebus {
    pub(crate) memory: SparseMemory,
    pub(crate) timing: TimingConfig,
    pub(crate) stats: BusStats,
    pub(crate) retry: RetryPolicy,
    pub(crate) trace: BusTrace,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) retired: BTreeSet<usize>,
    discipline: Discipline,
    arbiter: Box<dyn Arbiter + Send>,
    pending_stall: Option<(usize, bool)>,
    histograms: PhaseHistograms,
    retry_hist: LatencyHistogram,
    liveness: Option<LivenessMonitor>,
    phase_events: Option<Vec<TxnPhases>>,
    /// The reply buffer lent to each transaction's [`TxnContext`] and
    /// reclaimed afterwards, so the address-broadcast phase never allocates
    /// on the steady state.
    reply_scratch: Vec<(usize, ResponseSignals)>,
}

impl Futurebus {
    /// Creates a bus with the given line size (bytes) and timing model.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a non-zero power of two.
    #[must_use]
    pub fn new(line_size: usize, timing: TimingConfig) -> Self {
        Futurebus {
            memory: SparseMemory::new(line_size),
            timing,
            stats: BusStats::new(),
            retry: RetryPolicy::default(),
            trace: BusTrace::new(0),
            faults: None,
            retired: BTreeSet::new(),
            discipline: Discipline::default(),
            arbiter: Discipline::default().arbiter(),
            pending_stall: None,
            histograms: PhaseHistograms::new(),
            retry_hist: LatencyHistogram::new(),
            liveness: None,
            phase_events: None,
            reply_scratch: Vec::new(),
        }
    }

    /// Enables transaction tracing, keeping the most recent `capacity`
    /// records (0 disables).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = BusTrace::new(capacity);
    }

    /// The transaction trace (empty unless [`enable_trace`] was called).
    ///
    /// [`enable_trace`]: Futurebus::enable_trace
    #[must_use]
    pub fn trace(&self) -> &BusTrace {
        &self.trace
    }

    /// The configured line size.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.memory.line_size()
    }

    /// The timing model in force.
    #[must_use]
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// The arbitration service discipline in force on this segment.
    #[must_use]
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Swaps the arbitration service discipline, resetting the arbiter's
    /// queue/rotation state. The default [`Discipline::Priority`] is
    /// combinational (one slot) and byte-identical to the historical
    /// fixed-cost arbitration model.
    pub fn set_discipline(&mut self, discipline: Discipline) {
        self.discipline = discipline;
        self.arbiter = discipline.arbiter();
    }

    /// Queueing delay (in arbitration slots) `master` pays for the bus under
    /// the current discipline, with every live module contending. The first
    /// slot is part of the base transaction cost; disciplines beyond the
    /// combinational default pay the rest in [`Phase::Arbitrate`].
    ///
    /// [`Phase::Arbitrate`]: crate::Phase::Arbitrate
    pub(crate) fn queue_slots(&mut self, master: usize, modules: usize) -> u32 {
        if self.discipline == Discipline::Priority {
            return 1;
        }
        let mut live: Vec<usize> = (0..modules).filter(|i| !self.retired.contains(i)).collect();
        if !live.contains(&master) {
            live.push(master);
        }
        self.arbiter.slots_to_grant(master, &live)
    }

    /// Main memory, for initialisation and checking.
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Mutable access to main memory (e.g. to preload a workload image).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.memory
    }

    /// Cumulative bus statistics.
    #[must_use]
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Resets the statistics, phase histograms and retry histogram (memory
    /// contents, the liveness ledgers and any collected phase events are
    /// kept).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::new();
        self.histograms = PhaseHistograms::new();
        self.retry_hist = LatencyHistogram::new();
    }

    /// Per-phase latency histograms: one sample per phase per transaction
    /// (errored transactions included — their burned time is observed too).
    #[must_use]
    pub fn phase_histograms(&self) -> &PhaseHistograms {
        &self.histograms
    }

    /// The retries-per-transaction histogram: one sample per transaction
    /// (errored included), whose value is the transaction's *abort count* —
    /// the buckets hold counts, not nanoseconds. The long tail of this
    /// distribution is where starvation shows before the liveness deadline
    /// fires.
    #[must_use]
    pub fn retry_histogram(&self) -> &LatencyHistogram {
        &self.retry_hist
    }

    /// Arms the liveness watchdog: `deadline` consecutive retry-cutoff
    /// failures by one master with no intervening commit fire a violation
    /// into [`BusStats::liveness_violations`]. Replaces any previous
    /// monitor (and its ledgers).
    ///
    /// # Panics
    ///
    /// Panics when `deadline` is zero.
    pub fn enable_liveness(&mut self, deadline: u32) {
        self.liveness = Some(LivenessMonitor::new(deadline));
    }

    /// The liveness watchdog's ledgers, if armed.
    #[must_use]
    pub fn liveness(&self) -> Option<&LivenessMonitor> {
        self.liveness.as_ref()
    }

    /// Starts collecting one [`TxnPhases`] record per *committed*
    /// transaction, the raw material for Chrome trace export. Replaces any
    /// previously collected events.
    pub fn enable_phase_events(&mut self) {
        self.phase_events = Some(Vec::new());
    }

    /// The collected per-transaction phase events (empty unless
    /// [`enable_phase_events`](Futurebus::enable_phase_events) was called).
    #[must_use]
    pub fn phase_events(&self) -> &[TxnPhases] {
        self.phase_events.as_deref().unwrap_or(&[])
    }

    /// Flushes one finished transaction's observations: folds its duration
    /// into `busy_ns` and the per-phase breakdown into `phase_ns` (keeping
    /// the sum invariant by construction), records one histogram sample per
    /// phase, and — when the transaction committed and event collection is
    /// on — appends a [`TxnPhases`] record aligned 1:1 with the trace's
    /// final READ/WRITE/INVAL records. Called from exactly two places: the
    /// commit phase and the `execute` error path.
    pub(crate) fn seal_observation(&mut self, ctx: &TxnContext<'_>, completed: Option<TraceKind>) {
        let start_ns = self.stats.busy_ns;
        self.stats.busy_ns += ctx.duration;
        for (total, charged) in self.stats.phase_ns.iter_mut().zip(ctx.phase_ns) {
            *total += charged;
        }
        self.histograms.record_txn(&ctx.phase_ns);
        self.retry_hist.record(u64::from(ctx.aborts));
        self.stats.max_txn_aborts = self.stats.max_txn_aborts.max(u64::from(ctx.aborts));
        if let (Some(kind), Some(events)) = (completed, self.phase_events.as_mut()) {
            events.push(TxnPhases {
                master: ctx.req.master,
                addr: ctx.req.addr,
                kind,
                start_ns,
                phase_ns: ctx.phase_ns,
            });
        }
    }

    /// The abort-retry policy in force.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the abort-retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Installs a fault-injection plan; every subsequent transaction consults
    /// it. Replaces any previous plan (and its log).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan and its injection log, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Mutable access to the installed fault plan — the hierarchy campaign
    /// uses the plan's own RNG stream for faults (stale inclusion tags)
    /// that the bus engine cannot inject itself.
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.faults.as_mut()
    }

    /// Arms a one-shot stall: during the next transaction in which `module`
    /// is a snooper (not the master, not already retired), it stops
    /// responding and the watchdog retires it. `salvageable` distinguishes a
    /// hung board whose cache RAM can still be read out from a dead one.
    ///
    /// Works without a fault plan installed — this is the deterministic
    /// arming hook replay scripts use to pin watchdog behaviour.
    pub fn stall_module(&mut self, module: usize, salvageable: bool) {
        self.pending_stall = Some((module, salvageable));
    }

    /// Modules the watchdog has retired from the snoop set, ascending.
    #[must_use]
    pub fn retired(&self) -> Vec<usize> {
        self.retired.iter().copied().collect()
    }

    /// True when the watchdog has retired `module`.
    #[must_use]
    pub fn is_retired(&self, module: usize) -> bool {
        self.retired.contains(&module)
    }

    /// Runs one transaction. `modules` are all attached snooping units; the
    /// entry at `req.master` is skipped (a master does not snoop itself), so
    /// callers may pass their full module table. Indices in `req.master` and
    /// [`DataSource::Intervention`] refer to this slice. Modules the watchdog
    /// has retired are skipped too: a retired board neither snoops nor
    /// completes.
    ///
    /// # Errors
    ///
    /// See [`BusError`] — illegal signals, unaligned or oversized payloads,
    /// duplicate interveners, more BS aborts than the retry policy tolerates,
    /// or a protocol violation (BS asserted with no push to offer). All error
    /// paths still account the bus time burned into [`BusStats::busy_ns`].
    pub fn execute(
        &mut self,
        req: &TransactionRequest,
        modules: &mut [&mut dyn BusModule],
    ) -> Result<TransactionOutcome, BusError> {
        self.execute_components(req, modules)
    }

    /// [`Futurebus::execute`], generic over the module type. Callers that own
    /// a homogeneous component array (e.g. the simulator's
    /// `Vec<CacheController>`) pass it directly and get a statically
    /// dispatched pipeline — no per-transaction `Vec<&mut dyn BusModule>`
    /// and no virtual calls in the inner loop. The dyn-slice `execute` is
    /// this function instantiated with `M = &mut dyn BusModule`, so both
    /// entry points run the identical pipeline.
    ///
    /// # Errors
    ///
    /// Identical to [`Futurebus::execute`].
    pub fn execute_components<M: BusModule>(
        &mut self,
        req: &TransactionRequest,
        modules: &mut [M],
    ) -> Result<TransactionOutcome, BusError> {
        self.validate(req, modules.len())?;
        let faults = self.decide_faults(req, modules.len());
        let mut ctx = TxnContext::new(req, self.memory.line_size(), faults);
        ctx.replies = std::mem::take(&mut self.reply_scratch);
        let run = self.run_pipeline(&mut ctx, modules);
        self.reply_scratch = std::mem::take(&mut ctx.replies);
        self.reply_scratch.clear();
        match run {
            Ok(()) => {
                if let Some(mon) = self.liveness.as_mut() {
                    mon.record_commit(req.master);
                }
                Ok(ctx.into_outcome())
            }
            Err(err) => {
                // Every error path still accounts (and observes) the bus
                // time burned; no phase event, since nothing committed.
                self.seal_observation(&ctx, None);
                // Only the retry cutoff is a *liveness* failure — the master
                // wanted to proceed and the bus starved it. Validation and
                // protocol errors are the master's (or a snooper's) fault.
                if matches!(err, BusError::TooManyRetries(_)) {
                    if let Some(mon) = self.liveness.as_mut() {
                        if mon.record_failure(req.master) {
                            self.stats.liveness_violations += 1;
                        }
                    }
                }
                Err(err)
            }
        }
    }

    /// Rolls the fault plan's dice for this transaction and folds in any
    /// manually armed stall (replay pins), which overrides the plan's roll
    /// but only fires once the victim is actually a live snooper.
    fn decide_faults(&mut self, req: &TransactionRequest, module_count: usize) -> TxnFaults {
        let mut faults = match self.faults.as_mut() {
            Some(plan) => {
                let candidates: Vec<usize> = (0..module_count)
                    .filter(|&i| i != req.master && !self.retired.contains(&i))
                    .collect();
                plan.decide(&candidates)
            }
            None => TxnFaults::default(),
        };
        if let Some((victim, salvage)) = self.pending_stall {
            if victim != req.master && victim < module_count && !self.retired.contains(&victim) {
                faults.stall = Some((victim, salvage));
                self.pending_stall = None;
            }
        }
        faults
    }

    fn validate(&self, req: &TransactionRequest, module_count: usize) -> Result<(), BusError> {
        if !req.signals.is_legal() {
            return Err(BusError::IllegalSignals(req.signals));
        }
        // The master index may equal module_count when the master is not part
        // of the snoop population (e.g. a bare test harness); anything beyond
        // is a programming error.
        if req.master > module_count {
            return Err(BusError::UnknownMaster(req.master));
        }
        if !self.memory.is_aligned(req.addr) {
            return Err(BusError::UnalignedAddress(req.addr));
        }
        if let TransactionKind::Write { offset, bytes } = &req.kind {
            if offset + bytes.len() > self.memory.line_size() {
                return Err(BusError::PayloadOutOfRange {
                    offset: *offset,
                    len: bytes.len(),
                    line_size: self.memory.line_size(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultKind, InjectedFault};
    use crate::module::{BusObservation, PushWrite, RetireReport};
    use crate::phases::Phase;
    use crate::transaction::{DataSource, LineAddr};
    use moesi::{MasterSignals, ResponseSignals};

    /// A scripted snooper for exercising the engine.
    struct Mock {
        response: ResponseSignals,
        line: Vec<u8>,
        completions: Vec<(bool, Option<Vec<u8>>)>,
        pushes: u32,
        snooped: Vec<LineAddr>,
        dirty: Vec<LineAddr>,
        retired_as: Option<bool>,
    }

    impl Mock {
        fn quiet() -> Self {
            Mock::with(ResponseSignals::NONE)
        }
        fn with(response: ResponseSignals) -> Self {
            Mock {
                response,
                line: vec![0xEE; 16],
                completions: Vec::new(),
                pushes: 0,
                snooped: Vec::new(),
                dirty: Vec::new(),
                retired_as: None,
            }
        }
    }

    impl BusModule for Mock {
        fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals {
            self.snooped.push(req.addr);
            let r = self.response;
            if r.bs {
                // One abort only: react normally on the retry.
                self.response = ResponseSignals::NONE;
            }
            r
        }
        fn supply_line(&mut self, _addr: u64) -> Option<Box<[u8]>> {
            Some(self.line.clone().into_boxed_slice())
        }
        fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
            self.pushes += 1;
            Some(PushWrite {
                data: self.line.clone().into_boxed_slice(),
                signals: MasterSignals::CA,
            })
        }
        fn retire(&mut self, salvage: bool) -> RetireReport {
            self.retired_as = Some(salvage);
            if salvage {
                RetireReport {
                    salvaged: self
                        .dirty
                        .iter()
                        .map(|&a| (a, self.line.clone().into_boxed_slice()))
                        .collect(),
                    lost: Vec::new(),
                }
            } else {
                RetireReport {
                    salvaged: Vec::new(),
                    lost: self.dirty.clone(),
                }
            }
        }
        fn complete(&mut self, _req: &TransactionRequest, obs: &BusObservation<'_>) {
            self.completions
                .push((obs.ch_others, obs.write_data.map(|(_, b)| b.to_vec())));
        }
    }

    fn bus() -> Futurebus {
        Futurebus::new(16, TimingConfig::default())
    }

    #[test]
    fn read_without_owner_comes_from_memory() {
        let mut bus = bus();
        bus.memory_mut().write_bytes(0x40, 0, &[7; 16]);
        let mut a = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(&out.data.unwrap()[..], &[7; 16]);
        assert_eq!(bus.stats().memory_reads, 1);
        assert_eq!(bus.stats().interventions, 0);
    }

    #[test]
    fn di_owner_preempts_memory_on_reads() {
        let mut bus = bus();
        bus.memory_mut().write_bytes(0x40, 0, &[1; 16]); // stale
        let mut owner = Mock::with(ResponseSignals {
            di: true,
            ch: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut owner];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.source, DataSource::Intervention(0));
        assert_eq!(
            &out.data.unwrap()[..],
            &[0xEE; 16],
            "owner's data, not memory's"
        );
        assert!(out.ch_seen);
        // Intervention does NOT update memory — the Futurebus limitation.
        assert_eq!(&bus.memory().peek_line(0x40)[..], &[1; 16]);
    }

    #[test]
    fn non_broadcast_write_with_owner_is_captured_not_memorised() {
        let mut bus = bus();
        let mut owner = Mock::with(ResponseSignals {
            di: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut owner];
        let req = TransactionRequest::write(1, 0, MasterSignals::IM, 4, vec![9, 9]);
        bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.stats().captures, 1);
        assert_eq!(bus.stats().memory_writes, 0);
        assert_eq!(owner.completions.len(), 1);
        assert_eq!(owner.completions[0].1.as_deref(), Some(&[9u8, 9][..]));
    }

    #[test]
    fn non_broadcast_write_without_owner_updates_memory() {
        let mut bus = bus();
        let mut other = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut other];
        let req = TransactionRequest::write(1, 0, MasterSignals::IM, 2, vec![5, 6]);
        bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.memory().peek_line(0)[2..4], [5, 6]);
        // A quiet snooper receives no payload.
        assert_eq!(other.completions[0].1, None);
    }

    #[test]
    fn broadcast_write_updates_memory_and_sl_snoopers() {
        let mut bus = bus();
        let mut sharer = Mock::with(ResponseSignals {
            sl: true,
            ch: true,
            ..ResponseSignals::NONE
        });
        let mut bystander = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut sharer, &mut bystander];
        let req = TransactionRequest::write(2, 0, MasterSignals::CA_IM_BC, 0, vec![3; 4]);
        let out = bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.memory().peek_line(0)[..4], [3; 4]);
        assert_eq!(bus.stats().sl_updates, 1);
        assert!(out.ch_seen);
        assert_eq!(sharer.completions[0].1.as_deref(), Some(&[3u8; 4][..]));
        assert_eq!(bystander.completions[0].1, None);
    }

    #[test]
    fn bs_abort_pushes_then_retries() {
        let mut bus = bus();
        let mut dirty = Mock::with(ResponseSignals {
            bs: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut dirty];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.aborts, 1);
        assert_eq!(dirty.pushes, 1);
        // The push updated memory, so the retried read is served by memory
        // with the pushed contents.
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(&out.data.unwrap()[..], &[0xEE; 16]);
        assert_eq!(bus.stats().aborts, 1);
        assert_eq!(bus.stats().pushes, 1);
        assert_eq!(bus.stats().transactions, 2, "push + retried read");
        // One retry round waited out one base backoff.
        assert_eq!(bus.stats().retries, 1);
        assert_eq!(bus.stats().backoff_ns, bus.retry_policy().backoff_base_ns);
    }

    #[test]
    fn endless_bs_hits_the_retry_limit_after_backing_off() {
        struct AlwaysBusy;
        impl BusModule for AlwaysBusy {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
                Some(PushWrite {
                    data: vec![0; 16].into_boxed_slice(),
                    signals: MasterSignals::CA,
                })
            }
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        bus.set_retry_policy(RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        });
        let mut b = AlwaysBusy;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut b];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert_eq!(err, BusError::TooManyRetries(4));
        // Rounds 1..=3 retried with growing backoff; round 4 gave up.
        assert_eq!(bus.stats().retries, 3);
        assert_eq!(bus.stats().backoff_ns, 50 + 100 + 200);
        assert!(
            bus.stats().busy_ns >= bus.stats().backoff_ns,
            "the failed transaction's time is still accounted"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff_cap_ns: 300,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), 0);
        assert_eq!(p.backoff(1), 50);
        assert_eq!(p.backoff(2), 100);
        assert_eq!(p.backoff(3), 200);
        assert_eq!(p.backoff(4), 300, "capped");
        assert_eq!(p.backoff(40), 300, "huge rounds stay capped");
        assert_eq!(p.abort_bound(), 17, "commit within 16 or fail at 17");
    }

    #[test]
    fn flat_retry_waits_the_constant_base() {
        let p = RetryPolicy {
            flat_retry: true,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), 0);
        assert_eq!(p.backoff(1), 50);
        assert_eq!(p.backoff(2), 50);
        assert_eq!(p.backoff(40), 50);
    }

    #[test]
    fn bs_without_a_push_is_a_protocol_error_not_a_panic() {
        struct Liar;
        impl BusModule for Liar {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            // No prepare_push override: the default declines.
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        let mut l = Liar;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut l];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        match err {
            BusError::ProtocolError { module, detail } => {
                assert_eq!(module, 0);
                assert!(detail.contains("no push"), "{detail}");
            }
            other => panic!("expected ProtocolError, got {other:?}"),
        }
    }

    #[test]
    fn di_without_a_line_is_a_protocol_error_not_a_panic() {
        // A protocol that wrongly asserts DI (intervention) but then cannot
        // supply the line used to hit the trait default's panic; it is now a
        // reported protocol violation, like BS-without-a-push.
        struct EmptyHanded;
        impl BusModule for EmptyHanded {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    di: true,
                    ..ResponseSignals::NONE
                }
            }
            // No supply_line override: the default declines.
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        let mut e = EmptyHanded;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut e];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        match err {
            BusError::ProtocolError { module, detail } => {
                assert_eq!(module, 0);
                assert!(detail.contains("declined to supply"), "{detail}");
            }
            other => panic!("expected ProtocolError, got {other:?}"),
        }
        assert_eq!(bus.stats().interventions, 0, "no intervention happened");
        assert_eq!(
            bus.stats().phase_total_ns(),
            bus.stats().busy_ns,
            "the failed transaction still balances its books"
        );
    }

    #[test]
    fn short_pushes_are_a_protocol_error() {
        struct ShortPusher;
        impl BusModule for ShortPusher {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
                Some(PushWrite {
                    data: vec![0; 4].into_boxed_slice(), // line size is 16
                    signals: MasterSignals::CA,
                })
            }
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        let mut s = ShortPusher;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut s];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert!(
            matches!(err, BusError::ProtocolError { module: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn watchdog_retires_a_stalled_module_and_salvages_its_dirty_lines() {
        let mut bus = bus();
        bus.enable_trace(16);
        let mut victim = Mock::quiet();
        victim.dirty = vec![0x40, 0x80];
        let mut survivor = Mock::quiet();
        bus.stall_module(0, true);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut survivor];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        // The victim was retired before snooping; the survivor completed.
        assert_eq!(victim.retired_as, Some(true));
        assert!(victim.snooped.is_empty(), "a stalled board never answers");
        assert!(bus.is_retired(0));
        assert_eq!(bus.retired(), vec![0]);
        // Its dirty lines were salvaged to memory — including the one the
        // in-flight read wanted, which therefore sees the salvaged data.
        assert_eq!(&bus.memory().peek_line(0x40)[..], &[0xEE; 16]);
        assert_eq!(&bus.memory().peek_line(0x80)[..], &[0xEE; 16]);
        assert_eq!(&out.data.unwrap()[..], &[0xEE; 16]);
        assert_eq!(bus.stats().watchdog_retirements, 1);
        assert_eq!(bus.stats().salvaged_lines, 2);
        assert_eq!(bus.stats().lost_lines, 0);
        // The watchdog timeout is charged to the transaction.
        assert!(out.duration >= bus.timing().watchdog_timeout_ns);
        let rendered = bus.trace().render();
        assert!(rendered.contains("RETIR"), "{rendered}");
    }

    #[test]
    fn killed_module_loses_lines_and_survivors_are_invalidated() {
        let mut bus = bus();
        let mut victim = Mock::quiet();
        victim.dirty = vec![0x40];
        let mut survivor = Mock::quiet();
        bus.stall_module(0, false);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut survivor];
        // Master index 2 == module count: an external master, so both
        // attached modules are snoopers.
        bus.execute(
            &TransactionRequest::read(2, 0x80, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert_eq!(victim.retired_as, Some(false));
        // Nothing salvaged: the lost line never reached memory.
        assert_eq!(&bus.memory().peek_line(0x40)[..], &[0u8; 16]);
        assert_eq!(bus.stats().lost_lines, 1);
        assert_eq!(bus.stats().salvaged_lines, 0);
        // The survivor snooped the recovery invalidate for the lost line,
        // then the retried read for 0x80.
        assert_eq!(survivor.snooped, vec![0x40, 0x80]);
    }

    #[test]
    fn retired_modules_stop_snooping_entirely() {
        let mut bus = bus();
        let mut victim = Mock::with(ResponseSignals::CH);
        let mut survivor = Mock::quiet();
        bus.stall_module(0, true);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut survivor];
        let req = TransactionRequest::read(1, 0x40, MasterSignals::CA);
        let first = bus.execute(&req, &mut mods).unwrap();
        assert!(!first.ch_seen, "retired module's CH is gone");
        let again = bus.execute(&req, &mut mods).unwrap();
        assert!(!again.ch_seen);
        assert!(victim.snooped.is_empty());
        assert_eq!(victim.completions.len(), 0, "no completions either");
        assert_eq!(bus.stats().watchdog_retirements, 1, "retired only once");
    }

    #[test]
    fn glitches_are_filtered_at_the_settle_window_cost() {
        let mut bus = bus();
        bus.enable_trace(8);
        bus.inject_faults(FaultPlan::new(
            FaultConfig::default().with_rate(FaultKind::Glitch, 1.0),
        ));
        let mut sharer = Mock::with(ResponseSignals::CH);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut sharer];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        // The filter absorbed the glitch: true responses prevailed.
        assert!(out.ch_seen);
        assert_eq!(out.responses, ResponseSignals::CH);
        assert_eq!(bus.stats().glitches_filtered, 1);
        assert_eq!(bus.stats().settle_ns, bus.timing().broadcast_penalty_ns);
        assert_eq!(bus.fault_plan().unwrap().injected(), 1);
        assert_eq!(
            bus.fault_plan().unwrap().records()[0].fault.kind(),
            FaultKind::Glitch
        );
        assert!(bus.trace().render().contains("GLTCH"));
    }

    #[test]
    fn abort_storms_are_absorbed_by_bounded_retry() {
        let mut bus = bus();
        bus.inject_faults(FaultPlan::new(FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 3,
            ..FaultConfig::default()
        }));
        let mut quiet = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut quiet];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert!(out.aborts >= 1 && out.aborts <= 3);
        assert_eq!(bus.stats().pushes, 0, "phantom BS rounds push nothing");
        assert_eq!(bus.stats().aborts as u32, out.aborts);
        assert_eq!(bus.stats().retries as u32, out.aborts);
        assert!(bus.stats().backoff_ns > 0);
        let records = bus.fault_plan().unwrap().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fault.kind(), FaultKind::AbortStorm);
    }

    #[test]
    fn flat_retry_livelocks_where_capped_backoff_drains() {
        // The same 3-round phantom storm, twice. The capped-backoff
        // discipline drains it (one round per retry); the naive flat
        // discipline stays phase-locked with the interference, drains
        // nothing, and runs straight into the retry cutoff.
        let storm = FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 3,
            ..FaultConfig::default()
        };
        let req = TransactionRequest::read(1, 0x40, MasterSignals::CA);

        let mut sane = bus();
        sane.inject_faults(FaultPlan::new(storm));
        let mut quiet = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut quiet];
        let out = sane.execute(&req, &mut mods).unwrap();
        assert!(out.aborts <= 3, "the storm drained");

        let mut naive = bus();
        naive.set_retry_policy(RetryPolicy {
            flat_retry: true,
            ..RetryPolicy::default()
        });
        naive.enable_liveness(1);
        naive.inject_faults(FaultPlan::new(storm));
        let mut quiet = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut quiet];
        let err = naive.execute(&req, &mut mods).unwrap_err();
        assert_eq!(err, BusError::TooManyRetries(17));
        assert_eq!(naive.stats().liveness_violations, 1);
        assert_eq!(naive.stats().max_txn_aborts, 17);
        assert_eq!(naive.liveness().unwrap().progress(1).failures, 1);
        // Every flat backoff waited the constant base.
        assert_eq!(naive.stats().backoff_ns, 16 * 50);
    }

    #[test]
    fn priority_aging_recovers_a_storm_longer_than_the_retry_budget() {
        // A 32-round phantom storm outlasts the 16-retry budget, so even
        // capped backoff fails — but with priority aging the master's aged
        // arbitration priority outranks the interferer after 4 rounds and
        // the transaction proceeds.
        let storm = FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 32,
            ..FaultConfig::default()
        };
        let req = TransactionRequest::read(1, 0x40, MasterSignals::CA);

        let mut unaged = bus();
        unaged.inject_faults(FaultPlan::new(storm));
        let mut quiet = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut quiet];
        let err = unaged.execute(&req, &mut mods).unwrap_err();
        assert_eq!(err, BusError::TooManyRetries(17));

        let mut aged = bus();
        aged.set_retry_policy(RetryPolicy {
            aging_rounds: 4,
            ..RetryPolicy::default()
        });
        aged.enable_liveness(1);
        aged.inject_faults(FaultPlan::new(storm));
        let mut quiet = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut quiet];
        let out = aged.execute(&req, &mut mods).unwrap();
        assert_eq!(out.aborts, 4, "promoted after exactly aging_rounds");
        assert_eq!(aged.stats().aging_promotions, 1);
        assert_eq!(aged.stats().liveness_violations, 0);
        assert_eq!(aged.liveness().unwrap().progress(1).commits, 1);
    }

    #[test]
    fn aging_never_bypasses_a_genuine_bs_push() {
        // Three genuine BS aborts in a row (a real owner pushing each time)
        // must all run their pushes even with aggressive aging configured.
        struct BusyThrice(u32);
        impl BusModule for BusyThrice {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                if self.0 > 0 {
                    self.0 -= 1;
                    ResponseSignals {
                        bs: true,
                        ..ResponseSignals::NONE
                    }
                } else {
                    ResponseSignals::NONE
                }
            }
            fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
                Some(PushWrite {
                    data: vec![0xAB; 16].into_boxed_slice(),
                    signals: MasterSignals::CA,
                })
            }
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        bus.set_retry_policy(RetryPolicy {
            aging_rounds: 1,
            ..RetryPolicy::default()
        });
        let mut owner = BusyThrice(3);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut owner];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.aborts, 3, "all genuine aborts ran");
        assert_eq!(bus.stats().pushes, 3);
        assert_eq!(bus.stats().aging_promotions, 0);
    }

    #[test]
    fn retry_histogram_samples_every_transaction() {
        let mut bus = bus();
        bus.inject_faults(FaultPlan::new(FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 2,
            ..FaultConfig::default()
        }));
        let mut quiet = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut quiet];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(bus.retry_histogram().samples(), 1);
        assert_eq!(bus.retry_histogram().sum_ns(), u64::from(out.aborts));
        assert_eq!(bus.stats().max_txn_aborts, u64::from(out.aborts));
    }

    #[test]
    fn soft_errors_corrupt_memory_after_the_transaction() {
        let mut bus = bus();
        bus.enable_trace(8);
        bus.inject_faults(FaultPlan::new(
            FaultConfig::default().with_rate(FaultKind::CorruptMemory, 1.0),
        ));
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        bus.execute(
            &TransactionRequest::write(0, 0x40, MasterSignals::IM, 0, vec![7; 16]),
            &mut mods,
        )
        .unwrap();
        assert_eq!(bus.stats().corruptions, 1);
        let records = bus.fault_plan().unwrap().records();
        assert_eq!(records.len(), 1);
        let InjectedFault::CorruptMemory { addr, offset, mask } = records[0].fault.clone() else {
            panic!("expected a corruption record");
        };
        assert_eq!(addr, 0x40, "the only resident line");
        let line = bus.memory().peek_line(0x40);
        assert_eq!(line[offset], 7 ^ mask, "exactly one byte flipped");
        assert!(bus.trace().render().contains("CORPT"));
    }

    #[test]
    fn duplicate_interveners_are_rejected() {
        let di = ResponseSignals {
            di: true,
            ..ResponseSignals::NONE
        };
        let mut a = Mock::with(di);
        let mut b = Mock::with(di);
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a, &mut b];
        let err = bus
            .execute(
                &TransactionRequest::read(2, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert_eq!(err, BusError::MultipleInterveners(vec![0, 1]));
    }

    #[test]
    fn validation_errors() {
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        let bad_signals = TransactionRequest::read(0, 0, MasterSignals::new(false, false, true));
        assert!(matches!(
            bus.execute(&bad_signals, &mut mods),
            Err(BusError::IllegalSignals(_))
        ));
        let unaligned = TransactionRequest::read(0, 3, MasterSignals::CA);
        assert!(matches!(
            bus.execute(&unaligned, &mut mods),
            Err(BusError::UnalignedAddress(3))
        ));
        let oversized = TransactionRequest::write(0, 0, MasterSignals::IM, 12, vec![0; 8]);
        assert!(matches!(
            bus.execute(&oversized, &mut mods),
            Err(BusError::PayloadOutOfRange { .. })
        ));
        let ghost = TransactionRequest::read(5, 0, MasterSignals::CA);
        assert!(matches!(
            bus.execute(&ghost, &mut mods),
            Err(BusError::UnknownMaster(5))
        ));
    }

    #[test]
    fn ch_others_excludes_the_asker() {
        // Two sharers both assert CH; each must see the *other's* CH, and a
        // quiet third module sees CH from both.
        let ch = ResponseSignals::CH;
        let mut a = Mock::with(ch);
        let mut b = Mock::with(ch);
        let mut c = Mock::quiet();
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a, &mut b, &mut c];
        bus.execute(
            &TransactionRequest::read(3, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(a.completions[0].0);
        assert!(b.completions[0].0);
        assert!(c.completions[0].0);

        // With a single CH asserter, it must NOT see its own CH echoed back.
        let mut solo = Mock::with(ch);
        let mut quiet = Mock::quiet();
        let mut bus = Futurebus::new(16, TimingConfig::default());
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut solo, &mut quiet];
        bus.execute(
            &TransactionRequest::read(2, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(!solo.completions[0].0, "own CH must not count");
        assert!(quiet.completions[0].0);
    }

    #[test]
    fn address_only_moves_no_data_and_costs_no_transfer() {
        let mut bus = bus();
        let mut s = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut s];
        let out = bus
            .execute(
                &TransactionRequest::address_only(1, 0, MasterSignals::CA_IM),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.data, None);
        assert_eq!(out.source, DataSource::None);
        let t = TimingConfig::default();
        assert_eq!(out.duration, t.arbitration_ns + t.address_cycle_ns);
        assert_eq!(bus.stats().address_only, 1);
        assert_eq!(bus.stats().bytes_moved, 0);
    }

    #[test]
    fn disciplines_charge_queueing_into_the_arbitrate_phase() {
        let t = TimingConfig::default();
        let run = |discipline| {
            let mut bus = bus();
            bus.set_discipline(discipline);
            let mut a = Mock::quiet();
            let mut b = Mock::quiet();
            let mut mods: Vec<&mut dyn BusModule> = vec![&mut a, &mut b];
            // Master 1 arbitrates against live module 0.
            bus.execute(
                &TransactionRequest::address_only(1, 0, MasterSignals::CA_IM),
                &mut mods,
            )
            .unwrap()
            .duration
        };
        let base = t.arbitration_ns + t.address_cycle_ns;
        assert_eq!(
            run(Discipline::Priority),
            base,
            "combinational default stays byte-identical"
        );
        // Round-robin: the token starts before module 0, so master 1 waits
        // one extra slot; FCFS: both queue on first contact, master 1 behind
        // module 0.
        assert_eq!(run(Discipline::RoundRobin), base + t.arbitration_ns);
        assert_eq!(run(Discipline::Fcfs), base + t.arbitration_ns);
        // The extra wait lands in the Arbitrate bucket of the phase ledger.
        let mut bus = bus();
        bus.set_discipline(Discipline::Fcfs);
        let mut a = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a];
        bus.execute(
            &TransactionRequest::address_only(1, 0, MasterSignals::CA_IM),
            &mut mods,
        )
        .unwrap();
        assert_eq!(
            bus.stats().phase_ns[Phase::Arbitrate as usize],
            t.arbitration_ns
        );
        assert_eq!(bus.discipline(), Discipline::Fcfs);
    }

    #[test]
    fn broadcast_writes_cost_the_wired_or_penalty() {
        let mut bus = bus();
        let t = *bus.timing();
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        let plain = bus
            .execute(
                &TransactionRequest::write(0, 0, MasterSignals::IM, 0, vec![0; 4]),
                &mut mods,
            )
            .unwrap();
        let bcast = bus
            .execute(
                &TransactionRequest::write(0, 0, MasterSignals::IM_BC, 0, vec![0; 4]),
                &mut mods,
            )
            .unwrap();
        assert_eq!(bcast.duration - plain.duration, t.broadcast_penalty_ns);
    }

    #[test]
    fn master_does_not_snoop_itself() {
        let mut a = Mock::with(ResponseSignals::CH);
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a];
        // Module 0 is the master: its own CH must not be seen.
        let out = bus
            .execute(
                &TransactionRequest::read(0, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert!(!out.ch_seen);
        assert!(
            a.completions.is_empty(),
            "master gets no completion callback"
        );
    }

    #[test]
    fn phase_breakdown_always_sums_to_busy_ns() {
        use crate::Phase;
        let mut bus = bus();
        let mut dirty = Mock::with(ResponseSignals {
            bs: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut dirty];
        bus.execute(
            &TransactionRequest::read(1, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        bus.execute(
            &TransactionRequest::write(1, 0, MasterSignals::IM_BC, 0, vec![3; 4]),
            &mut mods,
        )
        .unwrap();
        let s = bus.stats();
        assert_eq!(s.phase_total_ns(), s.busy_ns);
        // The sub-charges live inside their phase's bucket.
        assert!(s.phase_ns[Phase::AbortBackoff as usize] >= s.backoff_ns);
        assert!(s.phase_ns[Phase::SnoopResolve as usize] >= s.settle_ns);
        // Each phase histogram saw one sample per bus request (the push and
        // the backoff fold into the aborted read's own breakdown).
        for phase in Phase::PIPELINE {
            assert_eq!(bus.phase_histograms().phase(phase).samples(), 2, "{phase}");
        }
        assert_eq!(bus.phase_histograms().sums(), s.phase_ns);
    }

    #[test]
    fn errored_transactions_are_observed_but_emit_no_phase_event() {
        let mut bus = bus();
        bus.enable_phase_events();
        bus.set_retry_policy(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        });
        struct AlwaysBusy;
        impl BusModule for AlwaysBusy {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
                Some(PushWrite {
                    data: vec![0; 16].into_boxed_slice(),
                    signals: MasterSignals::CA,
                })
            }
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut b = AlwaysBusy;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut b];
        bus.execute(
            &TransactionRequest::read(1, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap_err();
        // The failing read burned time that is observed (histograms, stats)
        // but committed nothing, so no phase event was recorded.
        assert!(bus.phase_events().is_empty());
        assert!(bus.stats().busy_ns > 0);
        assert_eq!(bus.stats().phase_total_ns(), bus.stats().busy_ns);
        assert_eq!(
            bus.phase_histograms()
                .phase(crate::Phase::Arbitrate)
                .samples(),
            1
        );
    }

    #[test]
    fn phase_events_line_up_with_the_occupancy_timeline() {
        let mut bus = bus();
        bus.enable_phase_events();
        let mut s = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut s];
        bus.execute(
            &TransactionRequest::read(1, 0x40, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        bus.execute(
            &TransactionRequest::write(1, 0x40, MasterSignals::IM, 0, vec![9; 4]),
            &mut mods,
        )
        .unwrap();
        let events = bus.phase_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Read);
        assert_eq!(events[1].kind, TraceKind::Write);
        assert_eq!(events[0].start_ns, 0);
        let first_dur: Nanos = events[0].phase_ns.iter().sum();
        assert_eq!(events[1].start_ns, first_dur, "back-to-back on the bus");
        let total: Nanos = events.iter().flat_map(|e| e.phase_ns).sum();
        assert_eq!(total, bus.stats().busy_ns);
    }

    #[test]
    fn a_pending_stall_waits_until_the_victim_is_a_snooper() {
        let mut bus = bus();
        let mut victim = Mock::quiet();
        let mut other = Mock::quiet();
        bus.stall_module(0, true);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut other];
        // Victim is the master here: the arm must hold its fire.
        bus.execute(
            &TransactionRequest::read(0, 0x40, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(!bus.is_retired(0));
        // Now it snoops — and dies.
        bus.execute(
            &TransactionRequest::read(1, 0x40, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(bus.is_retired(0));
    }
}
