//! The Futurebus transaction engine.
//!
//! [`Futurebus::execute`] runs one transaction end-to-end: the broadcast
//! address cycle (every attached module snoops, §2.1), wired-OR combination
//! of the response lines, BS abort-push-restart for the adapted protocols,
//! the data phase (memory, or an intervening owner preempting it), and the
//! completion phase in which every snooper commits its state transition with
//! the resolved CH observation.
//!
//! Memory-update semantics follow the paper exactly:
//!
//! * a **read** is served by the DI owner if one responds, else by memory;
//!   intervention does *not* update memory (that limitation is why Write-Once,
//!   Illinois and Firefly need BS, §4.3–4.5);
//! * a **non-broadcast write** is captured by the DI owner if one responds
//!   (memory preempted), else absorbed by memory;
//! * a **broadcast write** updates main memory *and* every SL-connected cache
//!   (§4.2: "when a broadcast write is done on the Futurebus, it affects all
//!   caches holding the line and also main memory");
//! * an **address-only** transaction moves no data.
//!
//! The engine also carries the recovery machinery that makes the class
//! degrade gracefully under faulty hardware (see [`fault`](crate::fault)):
//! BS aborts retry under a capped exponential [`RetryPolicy`] instead of a
//! bare cutoff, consistency-line glitches are absorbed by the wired-OR settle
//! window at a 25 ns cost, and a watchdog times out a non-responding snooper
//! and retires it from the snoop set — it is treated thereafter as a
//! non-caching processor, which the class explicitly supports (§3.3).

use crate::fault::{FaultPlan, InjectedFault, TxnFaults};
use crate::memory::SparseMemory;
use crate::module::{BusModule, BusObservation};
use crate::stats::BusStats;
use crate::timing::{DataSourceLatency, Nanos, TimingConfig};
use crate::trace::{BusTrace, TraceKind, TraceRecord};
use crate::transaction::{
    BusError, DataSource, TransactionKind, TransactionOutcome, TransactionRequest,
};
use moesi::{MasterSignals, ResponseSignals};
use std::collections::BTreeSet;

/// Capped exponential backoff for BS abort retries.
///
/// The bare `max_retries` cutoff modelled an infinitely patient master; real
/// masters back off so a transient abort storm drains instead of livelocking.
/// Round `n` (1-based) waits `min(base << (n-1), cap)` nanoseconds before the
/// re-arbitrated address cycle; the wait is charged to the transaction and
/// surfaced in [`BusStats::backoff_ns`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Abort rounds tolerated before the bus gives up with
    /// [`BusError::TooManyRetries`].
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base_ns: Nanos,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_ns: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            backoff_base_ns: 50,
            backoff_cap_ns: 1600,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry round `round` (1-based); zero for round 0.
    #[must_use]
    pub fn backoff(&self, round: u32) -> Nanos {
        if round == 0 {
            return 0;
        }
        let shift = (round - 1).min(20);
        self.backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ns)
    }
}

/// The shared backplane bus, owning main memory (the default owner of every
/// line) and the timing model.
///
/// # Examples
///
/// ```
/// use futurebus::{Futurebus, TransactionRequest};
/// use moesi::MasterSignals;
///
/// let mut bus = Futurebus::new(16, futurebus::TimingConfig::default());
/// // A read with no caches attached is served by memory.
/// let out = bus
///     .execute(&TransactionRequest::read(0, 0x40, MasterSignals::CA), &mut [])
///     .unwrap();
/// assert_eq!(out.data.unwrap().len(), 16);
/// assert!(!out.ch_seen);
/// ```
#[derive(Debug)]
pub struct Futurebus {
    memory: SparseMemory,
    timing: TimingConfig,
    stats: BusStats,
    retry: RetryPolicy,
    trace: BusTrace,
    faults: Option<FaultPlan>,
    retired: BTreeSet<usize>,
    pending_stall: Option<(usize, bool)>,
}

impl Futurebus {
    /// Creates a bus with the given line size (bytes) and timing model.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a non-zero power of two.
    #[must_use]
    pub fn new(line_size: usize, timing: TimingConfig) -> Self {
        Futurebus {
            memory: SparseMemory::new(line_size),
            timing,
            stats: BusStats::new(),
            retry: RetryPolicy::default(),
            trace: BusTrace::new(0),
            faults: None,
            retired: BTreeSet::new(),
            pending_stall: None,
        }
    }

    /// Enables transaction tracing, keeping the most recent `capacity`
    /// records (0 disables).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = BusTrace::new(capacity);
    }

    /// The transaction trace (empty unless [`enable_trace`] was called).
    ///
    /// [`enable_trace`]: Futurebus::enable_trace
    #[must_use]
    pub fn trace(&self) -> &BusTrace {
        &self.trace
    }

    /// The configured line size.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.memory.line_size()
    }

    /// The timing model in force.
    #[must_use]
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// Main memory, for initialisation and checking.
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Mutable access to main memory (e.g. to preload a workload image).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.memory
    }

    /// Cumulative bus statistics.
    #[must_use]
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Resets the statistics (memory contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::new();
    }

    /// The abort-retry policy in force.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the abort-retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Installs a fault-injection plan; every subsequent transaction consults
    /// it. Replaces any previous plan (and its log).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan and its injection log, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Arms a one-shot stall: during the next transaction in which `module`
    /// is a snooper (not the master, not already retired), it stops
    /// responding and the watchdog retires it. `salvageable` distinguishes a
    /// hung board whose cache RAM can still be read out from a dead one.
    ///
    /// Works without a fault plan installed — this is the deterministic
    /// arming hook replay scripts use to pin watchdog behaviour.
    pub fn stall_module(&mut self, module: usize, salvageable: bool) {
        self.pending_stall = Some((module, salvageable));
    }

    /// Modules the watchdog has retired from the snoop set, ascending.
    #[must_use]
    pub fn retired(&self) -> Vec<usize> {
        self.retired.iter().copied().collect()
    }

    /// True when the watchdog has retired `module`.
    #[must_use]
    pub fn is_retired(&self, module: usize) -> bool {
        self.retired.contains(&module)
    }

    /// Runs one transaction. `modules` are all attached snooping units; the
    /// entry at `req.master` is skipped (a master does not snoop itself), so
    /// callers may pass their full module table. Indices in `req.master` and
    /// [`DataSource::Intervention`] refer to this slice. Modules the watchdog
    /// has retired are skipped too: a retired board neither snoops nor
    /// completes.
    ///
    /// # Errors
    ///
    /// See [`BusError`] — illegal signals, unaligned or oversized payloads,
    /// duplicate interveners, more BS aborts than the retry policy tolerates,
    /// or a protocol violation (BS asserted with no push to offer). All error
    /// paths still account the bus time burned into [`BusStats::busy_ns`].
    pub fn execute(
        &mut self,
        req: &TransactionRequest,
        modules: &mut [&mut dyn BusModule],
    ) -> Result<TransactionOutcome, BusError> {
        self.validate(req, modules.len())?;
        let line_size = self.memory.line_size();
        let mut duration: Nanos = 0;
        let mut aborts = 0u32;

        // Ask the fault plan what lands in this transaction.
        let mut faults = match self.faults.as_mut() {
            Some(plan) => {
                let candidates: Vec<usize> = (0..modules.len())
                    .filter(|&i| i != req.master && !self.retired.contains(&i))
                    .collect();
                plan.decide(&candidates)
            }
            None => TxnFaults::default(),
        };
        // A manually armed stall (replay pins) overrides the plan's roll, but
        // only fires once the victim is actually a live snooper.
        if let Some((victim, salvage)) = self.pending_stall {
            if victim != req.master && victim < modules.len() && !self.retired.contains(&victim) {
                faults.stall = Some((victim, salvage));
                self.pending_stall = None;
            }
        }
        let mut storm_left = faults.storm_rounds;
        let mut storm_recorded = false;

        loop {
            // ---- Watchdog: a stalled snooper never completes the handshake.
            // Time it out, retire it from the snoop set, re-run the cycle.
            if let Some((victim, salvage)) = faults.stall.take() {
                duration += self.retire_module(victim, salvage, req, modules);
                continue;
            }

            // ---- Broadcast address cycle: every other live module snoops.
            let mut replies: Vec<(usize, ResponseSignals)> = Vec::with_capacity(modules.len());
            let mut combined = ResponseSignals::NONE;
            for (idx, module) in modules.iter_mut().enumerate() {
                if idx == req.master || self.retired.contains(&idx) {
                    continue;
                }
                let r = module.snoop(req);
                combined = combined.or(r);
                replies.push((idx, r));
            }

            // ---- Glitch: a consistency line bounces before the settle
            // window; the wired-OR inertial-delay filter absorbs it (§2.2) at
            // the cost of one settle delay. The *true* values proceed.
            if faults.glitch {
                faults.glitch = false;
                if let Some(plan) = self.faults.as_mut() {
                    let fault = plan.glitch_spec(combined);
                    let settle = self.timing.broadcast_penalty_ns;
                    duration += settle;
                    self.stats.glitches_filtered += 1;
                    self.stats.settle_ns += settle;
                    let perturbed = match &fault {
                        InjectedFault::Glitch { line, spurious } => {
                            combined.with_line(*line, *spurious)
                        }
                        _ => combined,
                    };
                    self.trace.push(TraceRecord {
                        seq: 0,
                        master: req.master,
                        addr: req.addr,
                        kind: TraceKind::Glitch,
                        signals: req.signals,
                        responses: perturbed,
                        source: DataSource::None,
                        duration: settle,
                        aborts,
                    });
                    plan.record(req.master, req.addr, fault, settle);
                }
            }

            // ---- BS: abort, push, restart (§3.2.2) — plus injected abort
            // storms, phantom BS rounds with nobody pushing.
            let genuine_bs = combined.bs;
            if genuine_bs || storm_left > 0 {
                if !genuine_bs {
                    storm_left -= 1;
                }
                aborts += 1;
                self.stats.aborts += 1;
                // The aborted address cycle still occupied the bus.
                duration += self.timing.transaction(0, DataSourceLatency::Master, false);
                if aborts > self.retry.max_retries {
                    self.stats.busy_ns += duration;
                    return Err(BusError::TooManyRetries(aborts));
                }
                let backoff = self.retry.backoff(aborts);
                duration += backoff;
                self.stats.retries += 1;
                self.stats.backoff_ns += backoff;
                if !genuine_bs && !storm_recorded {
                    storm_recorded = true;
                    let cost = self.timing.transaction(0, DataSourceLatency::Master, false);
                    if let Some(plan) = self.faults.as_mut() {
                        plan.record(
                            req.master,
                            req.addr,
                            InjectedFault::AbortStorm {
                                rounds: faults.storm_rounds,
                            },
                            cost + backoff,
                        );
                    }
                }
                if genuine_bs {
                    for (idx, r) in &replies {
                        if !r.bs {
                            continue;
                        }
                        let Some(push) = modules[*idx].prepare_push(req.addr) else {
                            self.stats.busy_ns += duration;
                            return Err(BusError::ProtocolError {
                                module: *idx,
                                detail: format!(
                                    "asserted BS for {:#x} with no push to offer",
                                    req.addr
                                ),
                            });
                        };
                        if push.data.len() != line_size {
                            self.stats.busy_ns += duration;
                            return Err(BusError::ProtocolError {
                                module: *idx,
                                detail: format!(
                                    "pushed {} bytes for {:#x}, not a full {line_size}-byte line",
                                    push.data.len(),
                                    req.addr
                                ),
                            });
                        }
                        self.memory.write_line(req.addr, &push.data);
                        // The push is itself a write transaction on the bus. No
                        // third party needs to snoop it: the pusher held the only
                        // owned copy, and unowned S copies are unaffected by a
                        // CA,~IM write-back.
                        let push_cost = self.timing.transaction(
                            line_size,
                            DataSourceLatency::Master,
                            push.signals.bc,
                        );
                        duration += push_cost;
                        self.stats.pushes += 1;
                        self.stats.transactions += 1;
                        self.stats.writes += 1;
                        self.stats.memory_writes += 1;
                        self.stats.bytes_moved += line_size as u64;
                        self.trace.push(TraceRecord {
                            seq: 0,
                            master: *idx,
                            addr: req.addr,
                            kind: TraceKind::Push,
                            signals: push.signals,
                            responses: ResponseSignals::NONE,
                            source: DataSource::Memory,
                            duration: push_cost,
                            aborts: 0,
                        });
                    }
                }
                continue;
            }

            // ---- Resolve the unique intervener, if any. ----
            let interveners: Vec<usize> = replies
                .iter()
                .filter(|(_, r)| r.di)
                .map(|(idx, _)| *idx)
                .collect();
            if interveners.len() > 1 {
                self.stats.busy_ns += duration;
                return Err(BusError::MultipleInterveners(interveners));
            }
            let intervener = interveners.first().copied();

            // ---- Data phase. ----
            let broadcast = req.signals.bc;
            let (data, source) = match &req.kind {
                TransactionKind::Read => {
                    let (line, source, latency) = match intervener {
                        Some(idx) => {
                            self.stats.interventions += 1;
                            (
                                modules[idx].supply_line(req.addr),
                                DataSource::Intervention(idx),
                                DataSourceLatency::Intervention,
                            )
                        }
                        None => {
                            self.stats.memory_reads += 1;
                            (
                                self.memory.read_line(req.addr),
                                DataSource::Memory,
                                DataSourceLatency::Memory,
                            )
                        }
                    };
                    duration += self.timing.transaction(line_size, latency, broadcast);
                    self.stats.reads += 1;
                    self.stats.bytes_moved += line_size as u64;
                    (Some(line), source)
                }
                TransactionKind::Write { offset, bytes } => {
                    if broadcast {
                        // Broadcast writes always reach memory (§4.2); SL
                        // snoopers are updated in the completion phase.
                        self.memory.write_bytes(req.addr, *offset, bytes);
                        self.stats.memory_writes += 1;
                    } else if intervener.is_some() {
                        // The owner captures the write; memory is preempted.
                        self.stats.captures += 1;
                    } else {
                        self.memory.write_bytes(req.addr, *offset, bytes);
                        self.stats.memory_writes += 1;
                    }
                    duration +=
                        self.timing
                            .transaction(bytes.len(), DataSourceLatency::Master, broadcast);
                    self.stats.writes += 1;
                    self.stats.bytes_moved += bytes.len() as u64;
                    (
                        None,
                        match intervener {
                            Some(idx) if !broadcast => DataSource::Intervention(idx),
                            _ => DataSource::Memory,
                        },
                    )
                }
                TransactionKind::AddressOnly => {
                    duration += self.timing.transaction(0, DataSourceLatency::Master, false);
                    self.stats.address_only += 1;
                    (None, DataSource::None)
                }
            };
            if broadcast {
                self.stats.broadcasts += 1;
            }

            // ---- Completion phase: commit every snooper's transition. ----
            let payload: Option<(usize, &[u8])> = match &req.kind {
                TransactionKind::Write { offset, bytes } => Some((*offset, bytes.as_slice())),
                _ => None,
            };
            for (idx, r) in &replies {
                let ch_others = replies
                    .iter()
                    .any(|(other, reply)| other != idx && reply.ch);
                let delivers = payload.is_some() && (r.sl || (r.di && !broadcast));
                if r.sl && payload.is_some() {
                    self.stats.sl_updates += 1;
                }
                modules[*idx].complete(
                    req,
                    &BusObservation {
                        ch_others,
                        write_data: if delivers { payload } else { None },
                    },
                );
            }

            // ---- Soft error: corrupt a resident memory line once the
            // transaction is over (never the in-flight data phase — the bus
            // got the electrical transfer right; the cell rots afterwards).
            if faults.corrupt {
                let resident = self.memory.line_addrs();
                if let Some(plan) = self.faults.as_mut() {
                    let fault = plan.corrupt_spec(&resident, req.addr, line_size);
                    if let InjectedFault::CorruptMemory { addr, offset, mask } = fault {
                        let mut line = self.memory.peek_line(addr);
                        line[offset] ^= mask;
                        self.memory.write_line(addr, &line);
                        self.stats.corruptions += 1;
                        self.trace.push(TraceRecord {
                            seq: 0,
                            master: req.master,
                            addr,
                            kind: TraceKind::Corrupt,
                            signals: MasterSignals::NONE,
                            responses: ResponseSignals::NONE,
                            source: DataSource::Memory,
                            duration: 0,
                            aborts: 0,
                        });
                        plan.record(
                            req.master,
                            req.addr,
                            InjectedFault::CorruptMemory { addr, offset, mask },
                            0,
                        );
                    }
                }
            }

            self.stats.transactions += 1;
            self.stats.busy_ns += duration;

            self.trace.push(TraceRecord {
                seq: 0,
                master: req.master,
                addr: req.addr,
                kind: match &req.kind {
                    TransactionKind::Read => TraceKind::Read,
                    TransactionKind::Write { .. } => TraceKind::Write,
                    TransactionKind::AddressOnly => TraceKind::AddressOnly,
                },
                signals: req.signals,
                responses: combined,
                source,
                duration,
                aborts,
            });

            return Ok(TransactionOutcome {
                data,
                responses: combined,
                ch_seen: combined.ch,
                source,
                duration,
                aborts,
            });
        }
    }

    /// Times out and retires a non-responding snooper: salvages its dirty
    /// lines to memory if its cache RAM is still readable, or — when the
    /// board is dead — invalidates every surviving copy of the lines whose
    /// only up-to-date data died with it, so no stale data outlives the
    /// owner. Returns the bus time consumed.
    fn retire_module(
        &mut self,
        victim: usize,
        salvage: bool,
        req: &TransactionRequest,
        modules: &mut [&mut dyn BusModule],
    ) -> Nanos {
        let line_size = self.memory.line_size();
        let mut cost = self.timing.watchdog_timeout_ns;
        let report = modules[victim].retire(salvage);

        let mut salvaged_addrs = Vec::with_capacity(report.salvaged.len());
        for (addr, data) in &report.salvaged {
            self.memory.write_line(*addr, data);
            cost += self
                .timing
                .transaction(line_size, DataSourceLatency::Master, false);
            self.stats.transactions += 1;
            self.stats.writes += 1;
            self.stats.memory_writes += 1;
            self.stats.bytes_moved += line_size as u64;
            self.stats.salvaged_lines += 1;
            salvaged_addrs.push(*addr);
        }

        // The dead board's dirty lines are gone; any surviving S copies of
        // them now disagree with the (stale) memory image, so the recovery
        // invalidates them bus-wide. The data loss is *reported* — it shows
        // up in the stats, the fault log and the trace, never silently.
        for addr in &report.lost {
            let inval = TransactionRequest::address_only(victim, *addr, MasterSignals::CA_IM);
            for (idx, module) in modules.iter_mut().enumerate() {
                if idx == victim || self.retired.contains(&idx) {
                    continue;
                }
                let _ = module.snoop(&inval);
            }
            for (idx, module) in modules.iter_mut().enumerate() {
                if idx == victim || self.retired.contains(&idx) {
                    continue;
                }
                module.complete(
                    &inval,
                    &BusObservation {
                        ch_others: false,
                        write_data: None,
                    },
                );
            }
            cost += self.timing.transaction(0, DataSourceLatency::Master, false);
            self.stats.transactions += 1;
            self.stats.address_only += 1;
            self.stats.lost_lines += 1;
        }

        self.retired.insert(victim);
        self.stats.watchdog_retirements += 1;
        self.trace.push(TraceRecord {
            seq: 0,
            master: victim,
            addr: req.addr,
            kind: TraceKind::Retire,
            signals: req.signals,
            responses: ResponseSignals::NONE,
            source: DataSource::None,
            duration: cost,
            aborts: 0,
        });
        if let Some(plan) = self.faults.as_mut() {
            let fault = if salvage {
                InjectedFault::Stall {
                    module: victim,
                    salvaged: salvaged_addrs,
                }
            } else {
                InjectedFault::Kill {
                    module: victim,
                    lost: report.lost.clone(),
                }
            };
            plan.record(req.master, req.addr, fault, cost);
        }
        cost
    }

    fn validate(&self, req: &TransactionRequest, module_count: usize) -> Result<(), BusError> {
        if !req.signals.is_legal() {
            return Err(BusError::IllegalSignals(req.signals));
        }
        // The master index may equal module_count when the master is not part
        // of the snoop population (e.g. a bare test harness); anything beyond
        // is a programming error.
        if req.master > module_count {
            return Err(BusError::UnknownMaster(req.master));
        }
        if !self.memory.is_aligned(req.addr) {
            return Err(BusError::UnalignedAddress(req.addr));
        }
        if let TransactionKind::Write { offset, bytes } = &req.kind {
            if offset + bytes.len() > self.memory.line_size() {
                return Err(BusError::PayloadOutOfRange {
                    offset: *offset,
                    len: bytes.len(),
                    line_size: self.memory.line_size(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultKind};
    use crate::module::{PushWrite, RetireReport};
    use crate::transaction::LineAddr;
    use moesi::MasterSignals;

    /// A scripted snooper for exercising the engine.
    struct Mock {
        response: ResponseSignals,
        line: Vec<u8>,
        completions: Vec<(bool, Option<Vec<u8>>)>,
        pushes: u32,
        snooped: Vec<LineAddr>,
        dirty: Vec<LineAddr>,
        retired_as: Option<bool>,
    }

    impl Mock {
        fn quiet() -> Self {
            Mock::with(ResponseSignals::NONE)
        }
        fn with(response: ResponseSignals) -> Self {
            Mock {
                response,
                line: vec![0xEE; 16],
                completions: Vec::new(),
                pushes: 0,
                snooped: Vec::new(),
                dirty: Vec::new(),
                retired_as: None,
            }
        }
    }

    impl BusModule for Mock {
        fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals {
            self.snooped.push(req.addr);
            let r = self.response;
            if r.bs {
                // One abort only: react normally on the retry.
                self.response = ResponseSignals::NONE;
            }
            r
        }
        fn supply_line(&mut self, _addr: u64) -> Box<[u8]> {
            self.line.clone().into_boxed_slice()
        }
        fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
            self.pushes += 1;
            Some(PushWrite {
                data: self.line.clone().into_boxed_slice(),
                signals: MasterSignals::CA,
            })
        }
        fn retire(&mut self, salvage: bool) -> RetireReport {
            self.retired_as = Some(salvage);
            if salvage {
                RetireReport {
                    salvaged: self
                        .dirty
                        .iter()
                        .map(|&a| (a, self.line.clone().into_boxed_slice()))
                        .collect(),
                    lost: Vec::new(),
                }
            } else {
                RetireReport {
                    salvaged: Vec::new(),
                    lost: self.dirty.clone(),
                }
            }
        }
        fn complete(&mut self, _req: &TransactionRequest, obs: &BusObservation<'_>) {
            self.completions
                .push((obs.ch_others, obs.write_data.map(|(_, b)| b.to_vec())));
        }
    }

    fn bus() -> Futurebus {
        Futurebus::new(16, TimingConfig::default())
    }

    #[test]
    fn read_without_owner_comes_from_memory() {
        let mut bus = bus();
        bus.memory_mut().write_bytes(0x40, 0, &[7; 16]);
        let mut a = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(&out.data.unwrap()[..], &[7; 16]);
        assert_eq!(bus.stats().memory_reads, 1);
        assert_eq!(bus.stats().interventions, 0);
    }

    #[test]
    fn di_owner_preempts_memory_on_reads() {
        let mut bus = bus();
        bus.memory_mut().write_bytes(0x40, 0, &[1; 16]); // stale
        let mut owner = Mock::with(ResponseSignals {
            di: true,
            ch: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut owner];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.source, DataSource::Intervention(0));
        assert_eq!(
            &out.data.unwrap()[..],
            &[0xEE; 16],
            "owner's data, not memory's"
        );
        assert!(out.ch_seen);
        // Intervention does NOT update memory — the Futurebus limitation.
        assert_eq!(&bus.memory().peek_line(0x40)[..], &[1; 16]);
    }

    #[test]
    fn non_broadcast_write_with_owner_is_captured_not_memorised() {
        let mut bus = bus();
        let mut owner = Mock::with(ResponseSignals {
            di: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut owner];
        let req = TransactionRequest::write(1, 0, MasterSignals::IM, 4, vec![9, 9]);
        bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.stats().captures, 1);
        assert_eq!(bus.stats().memory_writes, 0);
        assert_eq!(owner.completions.len(), 1);
        assert_eq!(owner.completions[0].1.as_deref(), Some(&[9u8, 9][..]));
    }

    #[test]
    fn non_broadcast_write_without_owner_updates_memory() {
        let mut bus = bus();
        let mut other = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut other];
        let req = TransactionRequest::write(1, 0, MasterSignals::IM, 2, vec![5, 6]);
        bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.memory().peek_line(0)[2..4], [5, 6]);
        // A quiet snooper receives no payload.
        assert_eq!(other.completions[0].1, None);
    }

    #[test]
    fn broadcast_write_updates_memory_and_sl_snoopers() {
        let mut bus = bus();
        let mut sharer = Mock::with(ResponseSignals {
            sl: true,
            ch: true,
            ..ResponseSignals::NONE
        });
        let mut bystander = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut sharer, &mut bystander];
        let req = TransactionRequest::write(2, 0, MasterSignals::CA_IM_BC, 0, vec![3; 4]);
        let out = bus.execute(&req, &mut mods).unwrap();
        assert_eq!(bus.memory().peek_line(0)[..4], [3; 4]);
        assert_eq!(bus.stats().sl_updates, 1);
        assert!(out.ch_seen);
        assert_eq!(sharer.completions[0].1.as_deref(), Some(&[3u8; 4][..]));
        assert_eq!(bystander.completions[0].1, None);
    }

    #[test]
    fn bs_abort_pushes_then_retries() {
        let mut bus = bus();
        let mut dirty = Mock::with(ResponseSignals {
            bs: true,
            ..ResponseSignals::NONE
        });
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut dirty];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.aborts, 1);
        assert_eq!(dirty.pushes, 1);
        // The push updated memory, so the retried read is served by memory
        // with the pushed contents.
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(&out.data.unwrap()[..], &[0xEE; 16]);
        assert_eq!(bus.stats().aborts, 1);
        assert_eq!(bus.stats().pushes, 1);
        assert_eq!(bus.stats().transactions, 2, "push + retried read");
        // One retry round waited out one base backoff.
        assert_eq!(bus.stats().retries, 1);
        assert_eq!(bus.stats().backoff_ns, bus.retry_policy().backoff_base_ns);
    }

    #[test]
    fn endless_bs_hits_the_retry_limit_after_backing_off() {
        struct AlwaysBusy;
        impl BusModule for AlwaysBusy {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
                Some(PushWrite {
                    data: vec![0; 16].into_boxed_slice(),
                    signals: MasterSignals::CA,
                })
            }
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        bus.set_retry_policy(RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        });
        let mut b = AlwaysBusy;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut b];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert_eq!(err, BusError::TooManyRetries(4));
        // Rounds 1..=3 retried with growing backoff; round 4 gave up.
        assert_eq!(bus.stats().retries, 3);
        assert_eq!(bus.stats().backoff_ns, 50 + 100 + 200);
        assert!(
            bus.stats().busy_ns >= bus.stats().backoff_ns,
            "the failed transaction's time is still accounted"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 16,
            backoff_base_ns: 50,
            backoff_cap_ns: 300,
        };
        assert_eq!(p.backoff(0), 0);
        assert_eq!(p.backoff(1), 50);
        assert_eq!(p.backoff(2), 100);
        assert_eq!(p.backoff(3), 200);
        assert_eq!(p.backoff(4), 300, "capped");
        assert_eq!(p.backoff(40), 300, "huge rounds stay capped");
    }

    #[test]
    fn bs_without_a_push_is_a_protocol_error_not_a_panic() {
        struct Liar;
        impl BusModule for Liar {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            // No prepare_push override: the default declines.
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        let mut l = Liar;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut l];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        match err {
            BusError::ProtocolError { module, detail } => {
                assert_eq!(module, 0);
                assert!(detail.contains("no push"), "{detail}");
            }
            other => panic!("expected ProtocolError, got {other:?}"),
        }
    }

    #[test]
    fn short_pushes_are_a_protocol_error() {
        struct ShortPusher;
        impl BusModule for ShortPusher {
            fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
                ResponseSignals {
                    bs: true,
                    ..ResponseSignals::NONE
                }
            }
            fn prepare_push(&mut self, _addr: u64) -> Option<PushWrite> {
                Some(PushWrite {
                    data: vec![0; 4].into_boxed_slice(), // line size is 16
                    signals: MasterSignals::CA,
                })
            }
            fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
        }
        let mut bus = bus();
        let mut s = ShortPusher;
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut s];
        let err = bus
            .execute(
                &TransactionRequest::read(1, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert!(
            matches!(err, BusError::ProtocolError { module: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn watchdog_retires_a_stalled_module_and_salvages_its_dirty_lines() {
        let mut bus = bus();
        bus.enable_trace(16);
        let mut victim = Mock::quiet();
        victim.dirty = vec![0x40, 0x80];
        let mut survivor = Mock::quiet();
        bus.stall_module(0, true);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut survivor];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        // The victim was retired before snooping; the survivor completed.
        assert_eq!(victim.retired_as, Some(true));
        assert!(victim.snooped.is_empty(), "a stalled board never answers");
        assert!(bus.is_retired(0));
        assert_eq!(bus.retired(), vec![0]);
        // Its dirty lines were salvaged to memory — including the one the
        // in-flight read wanted, which therefore sees the salvaged data.
        assert_eq!(&bus.memory().peek_line(0x40)[..], &[0xEE; 16]);
        assert_eq!(&bus.memory().peek_line(0x80)[..], &[0xEE; 16]);
        assert_eq!(&out.data.unwrap()[..], &[0xEE; 16]);
        assert_eq!(bus.stats().watchdog_retirements, 1);
        assert_eq!(bus.stats().salvaged_lines, 2);
        assert_eq!(bus.stats().lost_lines, 0);
        // The watchdog timeout is charged to the transaction.
        assert!(out.duration >= bus.timing().watchdog_timeout_ns);
        let rendered = bus.trace().render();
        assert!(rendered.contains("RETIR"), "{rendered}");
    }

    #[test]
    fn killed_module_loses_lines_and_survivors_are_invalidated() {
        let mut bus = bus();
        let mut victim = Mock::quiet();
        victim.dirty = vec![0x40];
        let mut survivor = Mock::quiet();
        bus.stall_module(0, false);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut survivor];
        // Master index 2 == module count: an external master, so both
        // attached modules are snoopers.
        bus.execute(
            &TransactionRequest::read(2, 0x80, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert_eq!(victim.retired_as, Some(false));
        // Nothing salvaged: the lost line never reached memory.
        assert_eq!(&bus.memory().peek_line(0x40)[..], &[0u8; 16]);
        assert_eq!(bus.stats().lost_lines, 1);
        assert_eq!(bus.stats().salvaged_lines, 0);
        // The survivor snooped the recovery invalidate for the lost line,
        // then the retried read for 0x80.
        assert_eq!(survivor.snooped, vec![0x40, 0x80]);
    }

    #[test]
    fn retired_modules_stop_snooping_entirely() {
        let mut bus = bus();
        let mut victim = Mock::with(ResponseSignals::CH);
        let mut survivor = Mock::quiet();
        bus.stall_module(0, true);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut survivor];
        let req = TransactionRequest::read(1, 0x40, MasterSignals::CA);
        let first = bus.execute(&req, &mut mods).unwrap();
        assert!(!first.ch_seen, "retired module's CH is gone");
        let again = bus.execute(&req, &mut mods).unwrap();
        assert!(!again.ch_seen);
        assert!(victim.snooped.is_empty());
        assert_eq!(victim.completions.len(), 0, "no completions either");
        assert_eq!(bus.stats().watchdog_retirements, 1, "retired only once");
    }

    #[test]
    fn glitches_are_filtered_at_the_settle_window_cost() {
        let mut bus = bus();
        bus.enable_trace(8);
        bus.inject_faults(FaultPlan::new(
            FaultConfig::default().with_rate(FaultKind::Glitch, 1.0),
        ));
        let mut sharer = Mock::with(ResponseSignals::CH);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut sharer];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        // The filter absorbed the glitch: true responses prevailed.
        assert!(out.ch_seen);
        assert_eq!(out.responses, ResponseSignals::CH);
        assert_eq!(bus.stats().glitches_filtered, 1);
        assert_eq!(bus.stats().settle_ns, bus.timing().broadcast_penalty_ns);
        assert_eq!(bus.fault_plan().unwrap().injected(), 1);
        assert_eq!(
            bus.fault_plan().unwrap().records()[0].fault.kind(),
            FaultKind::Glitch
        );
        assert!(bus.trace().render().contains("GLTCH"));
    }

    #[test]
    fn abort_storms_are_absorbed_by_bounded_retry() {
        let mut bus = bus();
        bus.inject_faults(FaultPlan::new(FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 3,
            ..FaultConfig::default()
        }));
        let mut quiet = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut quiet];
        let out = bus
            .execute(
                &TransactionRequest::read(1, 0x40, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert!(out.aborts >= 1 && out.aborts <= 3);
        assert_eq!(bus.stats().pushes, 0, "phantom BS rounds push nothing");
        assert_eq!(bus.stats().aborts as u32, out.aborts);
        assert_eq!(bus.stats().retries as u32, out.aborts);
        assert!(bus.stats().backoff_ns > 0);
        let records = bus.fault_plan().unwrap().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fault.kind(), FaultKind::AbortStorm);
    }

    #[test]
    fn soft_errors_corrupt_memory_after_the_transaction() {
        let mut bus = bus();
        bus.enable_trace(8);
        bus.inject_faults(FaultPlan::new(
            FaultConfig::default().with_rate(FaultKind::CorruptMemory, 1.0),
        ));
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        bus.execute(
            &TransactionRequest::write(0, 0x40, MasterSignals::IM, 0, vec![7; 16]),
            &mut mods,
        )
        .unwrap();
        assert_eq!(bus.stats().corruptions, 1);
        let records = bus.fault_plan().unwrap().records();
        assert_eq!(records.len(), 1);
        let InjectedFault::CorruptMemory { addr, offset, mask } = records[0].fault.clone() else {
            panic!("expected a corruption record");
        };
        assert_eq!(addr, 0x40, "the only resident line");
        let line = bus.memory().peek_line(0x40);
        assert_eq!(line[offset], 7 ^ mask, "exactly one byte flipped");
        assert!(bus.trace().render().contains("CORPT"));
    }

    #[test]
    fn duplicate_interveners_are_rejected() {
        let di = ResponseSignals {
            di: true,
            ..ResponseSignals::NONE
        };
        let mut a = Mock::with(di);
        let mut b = Mock::with(di);
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a, &mut b];
        let err = bus
            .execute(
                &TransactionRequest::read(2, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap_err();
        assert_eq!(err, BusError::MultipleInterveners(vec![0, 1]));
    }

    #[test]
    fn validation_errors() {
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        let bad_signals = TransactionRequest::read(0, 0, MasterSignals::new(false, false, true));
        assert!(matches!(
            bus.execute(&bad_signals, &mut mods),
            Err(BusError::IllegalSignals(_))
        ));
        let unaligned = TransactionRequest::read(0, 3, MasterSignals::CA);
        assert!(matches!(
            bus.execute(&unaligned, &mut mods),
            Err(BusError::UnalignedAddress(3))
        ));
        let oversized = TransactionRequest::write(0, 0, MasterSignals::IM, 12, vec![0; 8]);
        assert!(matches!(
            bus.execute(&oversized, &mut mods),
            Err(BusError::PayloadOutOfRange { .. })
        ));
        let ghost = TransactionRequest::read(5, 0, MasterSignals::CA);
        assert!(matches!(
            bus.execute(&ghost, &mut mods),
            Err(BusError::UnknownMaster(5))
        ));
    }

    #[test]
    fn ch_others_excludes_the_asker() {
        // Two sharers both assert CH; each must see the *other's* CH, and a
        // quiet third module sees CH from both.
        let ch = ResponseSignals::CH;
        let mut a = Mock::with(ch);
        let mut b = Mock::with(ch);
        let mut c = Mock::quiet();
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a, &mut b, &mut c];
        bus.execute(
            &TransactionRequest::read(3, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(a.completions[0].0);
        assert!(b.completions[0].0);
        assert!(c.completions[0].0);

        // With a single CH asserter, it must NOT see its own CH echoed back.
        let mut solo = Mock::with(ch);
        let mut quiet = Mock::quiet();
        let mut bus = Futurebus::new(16, TimingConfig::default());
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut solo, &mut quiet];
        bus.execute(
            &TransactionRequest::read(2, 0, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(!solo.completions[0].0, "own CH must not count");
        assert!(quiet.completions[0].0);
    }

    #[test]
    fn address_only_moves_no_data_and_costs_no_transfer() {
        let mut bus = bus();
        let mut s = Mock::quiet();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut s];
        let out = bus
            .execute(
                &TransactionRequest::address_only(1, 0, MasterSignals::CA_IM),
                &mut mods,
            )
            .unwrap();
        assert_eq!(out.data, None);
        assert_eq!(out.source, DataSource::None);
        let t = TimingConfig::default();
        assert_eq!(out.duration, t.arbitration_ns + t.address_cycle_ns);
        assert_eq!(bus.stats().address_only, 1);
        assert_eq!(bus.stats().bytes_moved, 0);
    }

    #[test]
    fn broadcast_writes_cost_the_wired_or_penalty() {
        let mut bus = bus();
        let t = *bus.timing();
        let mut mods: Vec<&mut dyn BusModule> = vec![];
        let plain = bus
            .execute(
                &TransactionRequest::write(0, 0, MasterSignals::IM, 0, vec![0; 4]),
                &mut mods,
            )
            .unwrap();
        let bcast = bus
            .execute(
                &TransactionRequest::write(0, 0, MasterSignals::IM_BC, 0, vec![0; 4]),
                &mut mods,
            )
            .unwrap();
        assert_eq!(bcast.duration - plain.duration, t.broadcast_penalty_ns);
    }

    #[test]
    fn master_does_not_snoop_itself() {
        let mut a = Mock::with(ResponseSignals::CH);
        let mut bus = bus();
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut a];
        // Module 0 is the master: its own CH must not be seen.
        let out = bus
            .execute(
                &TransactionRequest::read(0, 0, MasterSignals::CA),
                &mut mods,
            )
            .unwrap();
        assert!(!out.ch_seen);
        assert!(
            a.completions.is_empty(),
            "master gets no completion callback"
        );
    }

    #[test]
    fn a_pending_stall_waits_until_the_victim_is_a_snooper() {
        let mut bus = bus();
        let mut victim = Mock::quiet();
        let mut other = Mock::quiet();
        bus.stall_module(0, true);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut victim, &mut other];
        // Victim is the master here: the arm must hold its fire.
        bus.execute(
            &TransactionRequest::read(0, 0x40, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(!bus.is_retired(0));
        // Now it snoops — and dies.
        bus.execute(
            &TransactionRequest::read(1, 0x40, MasterSignals::CA),
            &mut mods,
        )
        .unwrap();
        assert!(bus.is_retired(0));
    }
}
