//! Open-collector wired-OR signal lines (§2.2 of the paper).
//!
//! "All bus signals are open-collector driven and passively terminated" —
//! any driver can pull a line low (asserted), and the line floats high
//! (released) only when *every* driver has let go. The paper's garden-hose
//! analogy: a child's foot on the hose stops the flow; removing one foot does
//! not resume it while another foot remains.
//!
//! The model also tracks **wired-OR glitches**: "an unavoidable perturbation
//! of the signal occurs when one driver releases an open-collector signal
//! that is still being asserted by another driver." Glitches are counted and
//! logged; the deterministic fix (an asymmetrical inertial delay line,
//! \[Gust83\]) is represented by the filter delay the timing model charges for
//! broadcast handshakes.

use std::collections::BTreeSet;
use std::fmt;

/// Identifies one driver (bus module) on a wired-OR line.
pub type DriverId = usize;

/// An event observed on a wired-OR line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireEvent {
    /// The line went from released (high) to asserted (low): the *first*
    /// driver stepped on it.
    Fell(DriverId),
    /// The line went from asserted to released: the *last* driver let go.
    Rose(DriverId),
    /// A driver released while at least one other driver still asserts: the
    /// current redistribution produces a wired-OR glitch.
    Glitch(DriverId),
}

impl fmt::Display for WireEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireEvent::Fell(d) => write!(f, "fell (driver {d})"),
            WireEvent::Rose(d) => write!(f, "rose (driver {d})"),
            WireEvent::Glitch(d) => write!(f, "wired-OR glitch (driver {d} released)"),
        }
    }
}

/// One open-collector bus line with any number of drivers.
///
/// # Examples
///
/// ```
/// use futurebus::wire::{WireEvent, WiredOr};
///
/// let mut ai = WiredOr::new("AI*");
/// // "Have them all pulling the signal low initially and wait for the
/// //  signal to go high" — the all-modules-ready broadcast idiom.
/// ai.assert(0);
/// ai.assert(1);
/// assert!(ai.is_asserted());
/// assert_eq!(ai.release(0), Some(WireEvent::Glitch(0)));
/// assert_eq!(ai.release(1), Some(WireEvent::Rose(1)));
/// assert!(!ai.is_asserted());
/// ```
#[derive(Clone, Debug)]
pub struct WiredOr {
    name: &'static str,
    drivers: BTreeSet<DriverId>,
    glitches: u64,
}

impl WiredOr {
    /// Creates a released (floating high) line with the given name.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        WiredOr {
            name,
            drivers: BTreeSet::new(),
            glitches: 0,
        }
    }

    /// The line's name (e.g. `"AS*"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// True while any driver pulls the line low.
    #[must_use]
    pub fn is_asserted(&self) -> bool {
        !self.drivers.is_empty()
    }

    /// The number of drivers currently asserting the line.
    #[must_use]
    pub fn driver_count(&self) -> usize {
        self.drivers.len()
    }

    /// Drives the line low. Returns `Fell` if this was the first driver;
    /// re-asserting is idempotent and returns `None`.
    pub fn assert(&mut self, driver: DriverId) -> Option<WireEvent> {
        let was_released = self.drivers.is_empty();
        if self.drivers.insert(driver) && was_released {
            Some(WireEvent::Fell(driver))
        } else {
            None
        }
    }

    /// Releases the line. Returns `Rose` if this was the last driver,
    /// `Glitch` if other drivers remain (the wired-OR glitch of §2.2), and
    /// `None` if this driver was not asserting.
    pub fn release(&mut self, driver: DriverId) -> Option<WireEvent> {
        if !self.drivers.remove(&driver) {
            return None;
        }
        if self.drivers.is_empty() {
            Some(WireEvent::Rose(driver))
        } else {
            self.glitches += 1;
            Some(WireEvent::Glitch(driver))
        }
    }

    /// How many wired-OR glitches this line has produced.
    #[must_use]
    pub fn glitch_count(&self) -> u64 {
        self.glitches
    }

    /// Releases every driver at once (end of transaction), without counting
    /// glitches — physically, the master stops sampling before tear-down.
    pub fn clear(&mut self) {
        self.drivers.clear();
    }
}

impl fmt::Display for WiredOr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={} ({} drivers)",
            self.name,
            if self.is_asserted() { "low" } else { "high" },
            self.drivers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_driver_pulls_low_last_driver_lets_rise() {
        let mut line = WiredOr::new("AK*");
        assert!(!line.is_asserted());
        assert_eq!(line.assert(3), Some(WireEvent::Fell(3)));
        assert_eq!(line.assert(5), None, "second driver changes nothing");
        assert!(line.is_asserted());
        assert_eq!(line.release(3), Some(WireEvent::Glitch(3)));
        assert!(line.is_asserted(), "still held by driver 5");
        assert_eq!(line.release(5), Some(WireEvent::Rose(5)));
        assert!(!line.is_asserted());
    }

    #[test]
    fn reassert_and_rerelease_are_idempotent() {
        let mut line = WiredOr::new("CH");
        line.assert(1);
        assert_eq!(line.assert(1), None);
        assert_eq!(line.driver_count(), 1);
        assert_eq!(line.release(1), Some(WireEvent::Rose(1)));
        assert_eq!(line.release(1), None);
        assert_eq!(line.release(9), None, "non-driver release is a no-op");
    }

    #[test]
    fn glitches_are_counted_per_partial_release() {
        let mut line = WiredOr::new("AI*");
        for d in 0..4 {
            line.assert(d);
        }
        for d in 0..3 {
            assert!(matches!(line.release(d), Some(WireEvent::Glitch(_))));
        }
        assert_eq!(line.glitch_count(), 3);
        assert!(matches!(line.release(3), Some(WireEvent::Rose(3))));
        assert_eq!(line.glitch_count(), 3, "the final release is clean");
    }

    #[test]
    fn clear_releases_everyone_without_glitches() {
        let mut line = WiredOr::new("AD");
        line.assert(0);
        line.assert(1);
        line.clear();
        assert!(!line.is_asserted());
        assert_eq!(line.glitch_count(), 0);
    }

    #[test]
    fn display_shows_level() {
        let mut line = WiredOr::new("AS*");
        assert!(line.to_string().contains("high"));
        line.assert(0);
        assert!(line.to_string().contains("low"));
    }
}
