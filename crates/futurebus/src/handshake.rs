//! The broadcast address handshake of Figures 1 and 2.
//!
//! "The current bus master first issues an address, then signals the event by
//! asserting the address strobe, AS*. All other bus modules assert AK*
//! immediately (address acknowledge), but each releases AI* (address
//! acknowledge inverse) and allows it to rise only after it is finished with
//! the address and is ready to go on. Only after AI* has risen may the bus
//! master remove the address from the bus" (§2.2).
//!
//! [`HandshakeSim`] replays that sequence for a set of modules with
//! individual address-processing delays and produces a timestamped trace —
//! the event series Figure 2 plots — plus the cycle duration, which is
//! governed by the *slowest* module plus the wired-OR glitch-filter delay.
//! "The reward is that broadcast operations are guaranteed to work, no matter
//! how new or old, fast or slow, a particular board may be."

use crate::timing::{Nanos, TimingConfig};
use crate::wire::{WireEvent, WiredOr};
use std::fmt;

/// One timestamped step of the handshake trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandshakeEvent {
    /// Nanoseconds since the master began driving the address.
    pub at: Nanos,
    /// What happened.
    pub step: HandshakeStep,
}

/// The observable steps of one broadcast address cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandshakeStep {
    /// Master drives the address lines.
    AddressDriven,
    /// Master asserts AS* (address strobe).
    AsAsserted,
    /// A module asserts AK* (address acknowledge).
    AkAsserted(usize),
    /// A module releases AI*; if others still hold it, this is where a
    /// wired-OR glitch occurs and the inertial filter earns its delay.
    AiReleased {
        /// The releasing module.
        module: usize,
        /// Whether the release glitched (other drivers still held AI* low).
        glitch: bool,
    },
    /// AI* has risen: every module is finished with the address.
    AiRose,
    /// Master removes the address and releases AS*.
    AddressRemoved,
}

impl fmt::Display for HandshakeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeStep::AddressDriven => f.write_str("address driven"),
            HandshakeStep::AsAsserted => f.write_str("AS* asserted"),
            HandshakeStep::AkAsserted(m) => write!(f, "AK* asserted by module {m}"),
            HandshakeStep::AiReleased { module, glitch } => {
                if *glitch {
                    write!(f, "AI* released by module {module} (wired-OR glitch)")
                } else {
                    write!(f, "AI* released by module {module} (line rises)")
                }
            }
            HandshakeStep::AiRose => f.write_str("AI* high: all modules ready"),
            HandshakeStep::AddressRemoved => f.write_str("address removed"),
        }
    }
}

/// The result of simulating one broadcast address cycle.
#[derive(Clone, Debug)]
pub struct HandshakeTrace {
    /// The timestamped steps, in time order.
    pub events: Vec<HandshakeEvent>,
    /// Total duration of the address cycle.
    pub duration: Nanos,
    /// Number of wired-OR glitches that the inertial filter absorbed.
    pub glitches: u64,
}

impl HandshakeTrace {
    /// Renders the trace as an ASCII timeline (one line per event).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!("{:>6} ns  {}\n", ev.at, ev.step));
        }
        out.push_str(&format!("{:>6} ns  cycle complete\n", self.duration));
        out
    }
}

/// Simulates broadcast address cycles over a population of modules.
///
/// # Examples
///
/// ```
/// use futurebus::handshake::HandshakeSim;
/// use futurebus::TimingConfig;
///
/// let sim = HandshakeSim::new(TimingConfig::default());
/// // Three modules: a fast cache, a slow I/O board, memory.
/// let trace = sim.run(&[20, 90, 45]);
/// // The slowest module governs the cycle.
/// assert!(trace.duration >= 90);
/// assert_eq!(trace.glitches, 2, "two of three AI* releases glitch");
/// ```
#[derive(Clone, Debug)]
pub struct HandshakeSim {
    timing: TimingConfig,
    /// Time from address valid to AS* assertion (setup time).
    pub as_delay_ns: Nanos,
    /// Time for a module to assert AK* after seeing AS*.
    pub ak_delay_ns: Nanos,
}

impl HandshakeSim {
    /// Creates a simulator with 10 ns setup and 5 ns acknowledge delays.
    #[must_use]
    pub fn new(timing: TimingConfig) -> Self {
        HandshakeSim {
            timing,
            as_delay_ns: 10,
            ak_delay_ns: 5,
        }
    }

    /// Runs one broadcast address cycle; `module_delays[i]` is how long module
    /// `i` needs the address (e.g. a cache directory lookup, §2.1: "the cache
    /// must check the address for a hit in its directory before allowing the
    /// address cycle to complete").
    ///
    /// # Panics
    ///
    /// Panics if `module_delays` is empty — a broadcast needs listeners.
    #[must_use]
    pub fn run(&self, module_delays: &[Nanos]) -> HandshakeTrace {
        assert!(
            !module_delays.is_empty(),
            "a broadcast cycle needs at least one slave"
        );
        let mut events = Vec::new();
        let mut ai = WiredOr::new("AI*");
        let mut ak = WiredOr::new("AK*");

        events.push(HandshakeEvent {
            at: 0,
            step: HandshakeStep::AddressDriven,
        });
        let as_time = self.as_delay_ns;
        events.push(HandshakeEvent {
            at: as_time,
            step: HandshakeStep::AsAsserted,
        });

        // All modules hold AI* low from the start of the cycle (drive low,
        // float high) and acknowledge with AK* as soon as they see AS*.
        for (m, _) in module_delays.iter().enumerate() {
            ai.assert(m);
        }
        let ak_time = as_time + self.ak_delay_ns;
        for (m, _) in module_delays.iter().enumerate() {
            ak.assert(m);
            events.push(HandshakeEvent {
                at: ak_time,
                step: HandshakeStep::AkAsserted(m),
            });
        }

        // Each module releases AI* when it is done with the address; sort by
        // completion time so the trace is chronological.
        let mut order: Vec<usize> = (0..module_delays.len()).collect();
        order.sort_by_key(|&m| module_delays[m]);
        let mut glitches = 0;
        let mut ai_rise_time = ak_time;
        for m in order {
            let at = ak_time + module_delays[m];
            let event = ai.release(m);
            let glitch = matches!(event, Some(WireEvent::Glitch(_)));
            if glitch {
                glitches += 1;
            }
            events.push(HandshakeEvent {
                at,
                step: HandshakeStep::AiReleased { module: m, glitch },
            });
            ai_rise_time = at;
        }

        // The glitch filter holds the perceived rise back by its delay.
        let filtered_rise = ai_rise_time
            + if glitches > 0 {
                self.timing.broadcast_penalty_ns
            } else {
                0
            };
        events.push(HandshakeEvent {
            at: filtered_rise,
            step: HandshakeStep::AiRose,
        });
        events.push(HandshakeEvent {
            at: filtered_rise,
            step: HandshakeStep::AddressRemoved,
        });

        HandshakeTrace {
            events,
            duration: filtered_rise,
            glitches,
        }
    }

    /// Duration of a single-slave handshake (no glitch filter needed) versus a
    /// broadcast one with the same per-module delay: the difference is the
    /// §2.2 "25 nanoseconds slower" penalty.
    #[must_use]
    pub fn broadcast_overhead(&self, delay: Nanos, modules: usize) -> Nanos {
        let single = self.run(&[delay]).duration;
        let broadcast = self.run(&vec![delay; modules.max(2)]).duration;
        broadcast - single
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> HandshakeSim {
        HandshakeSim::new(TimingConfig::default())
    }

    #[test]
    fn slowest_module_governs_the_cycle() {
        let t = sim().run(&[10, 200, 30]);
        // 10 (AS setup) + 5 (AK) + 200 (slowest) + 25 (glitch filter).
        assert_eq!(t.duration, 240);
    }

    #[test]
    fn single_slave_has_no_glitch_and_no_penalty() {
        let t = sim().run(&[40]);
        assert_eq!(t.glitches, 0);
        assert_eq!(t.duration, 10 + 5 + 40);
    }

    #[test]
    fn broadcast_overhead_is_the_paper_25ns() {
        // Equal-delay modules: the only extra cost is the glitch filter.
        assert_eq!(sim().broadcast_overhead(50, 4), 25);
    }

    #[test]
    fn n_modules_produce_n_minus_1_glitches() {
        for n in 2..8 {
            let delays: Vec<Nanos> = (0..n).map(|i| 10 + 7 * i as Nanos).collect();
            let t = sim().run(&delays);
            assert_eq!(t.glitches, n as u64 - 1);
        }
    }

    #[test]
    fn trace_is_chronological_and_complete() {
        let t = sim().run(&[30, 10, 20]);
        let times: Vec<Nanos> = t.events.iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "events out of order");
        assert!(matches!(t.events[0].step, HandshakeStep::AddressDriven));
        assert!(matches!(
            t.events.last().unwrap().step,
            HandshakeStep::AddressRemoved
        ));
        let renders = t.render();
        assert!(renders.contains("AS* asserted"));
        assert!(renders.contains("wired-OR glitch"));
        assert!(renders.contains("cycle complete"));
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn empty_broadcast_is_rejected() {
        let _ = sim().run(&[]);
    }
}
