//! Deterministic, seeded fault injection for the Futurebus layer.
//!
//! The paper's robustness claim is electrical as much as logical: §2.2's
//! wired-OR glitch filter, §3.2.2's BS abort-push-restart path, and the
//! class's tolerance of non-caching processors all exist so the protocol
//! survives *misbehaving hardware*. A [`FaultPlan`] turns that claim into a
//! testable one — it injects, from a seeded [`moesi::rng::SmallRng`], the four
//! fault families the bus must absorb:
//!
//! * **glitches** on the CH/DI/SL consistency lines before the settle window
//!   (spurious or suppressed assertions, swallowed by the inertial delay
//!   filter at the cost of `broadcast_penalty_ns`),
//! * **stalls** and **kills** of a module mid-snoop (the watchdog retires the
//!   board, degrading it to a non-caching processor — which the class
//!   explicitly supports),
//! * **abort storms**, phantom BS assertions beyond a single genuine abort
//!   (absorbed by bounded retry with backoff),
//! * **memory corruption**, a soft-error bit flip in a resident line (must be
//!   *detected* by the consistency oracle, never masked as correct).
//!
//! Every injected fault is logged as a [`FaultRecord`], so a campaign driver
//! can classify each one as masked, detected-and-recovered, or silent.

use crate::timing::Nanos;
use crate::transaction::LineAddr;
use moesi::rng::SmallRng;
use moesi::{ConsistencyLine, ResponseSignals};
use std::fmt;

/// The families of hardware fault the engine can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A spurious or suppressed CH/DI/SL assertion before the settle window.
    Glitch,
    /// A module hangs mid-snoop but its cache RAM stays readable, so the
    /// watchdog can salvage dirty lines while retiring it.
    Stall,
    /// A module dies outright: retired with its dirty lines lost (the loss
    /// is reported, never silent).
    Kill,
    /// Phantom BS assertions abort the transaction for several extra rounds.
    AbortStorm,
    /// A soft error flips bits in a resident memory line.
    CorruptMemory,
    /// A segment bridge hangs on the parent bus but its directory and mirror
    /// stay readable: the parent watchdog salvages the dirty lines its
    /// cluster owned before retiring it to memory-direct degraded mode.
    BridgeStall,
    /// A segment bridge dies outright: its cluster's dirty lines are lost
    /// (reported, never silent) and the cluster degrades to memory-direct.
    BridgeKill,
    /// A soft error corrupts a bridge's inclusion tag: the cached
    /// cluster-level state of a resident line flips to a bogus value.
    StaleTag,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Glitch,
        FaultKind::Stall,
        FaultKind::Kill,
        FaultKind::AbortStorm,
        FaultKind::CorruptMemory,
        FaultKind::BridgeStall,
        FaultKind::BridgeKill,
        FaultKind::StaleTag,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Glitch => "glitch",
            FaultKind::Stall => "stall",
            FaultKind::Kill => "kill",
            FaultKind::AbortStorm => "abort-storm",
            FaultKind::CorruptMemory => "corrupt-memory",
            FaultKind::BridgeStall => "bridge-stall",
            FaultKind::BridgeKill => "bridge-kill",
            FaultKind::StaleTag => "stale-tag",
        })
    }
}

/// Seed and per-kind injection rates for a [`FaultPlan`].
///
/// Rates are per-transaction probabilities in `[0, 1]`; the default enables
/// nothing, so a plan built from `FaultConfig::default()` is inert until a
/// rate is raised (see [`FaultConfig::with_rate`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; two plans with the same seed and rates inject identically.
    pub seed: u64,
    /// Probability of glitching one consistency line per transaction.
    pub glitch_rate: f64,
    /// Probability of stalling (salvageable hang) a snooper per transaction.
    pub stall_rate: f64,
    /// Probability of killing (unsalvageable death) a snooper per transaction.
    pub kill_rate: f64,
    /// Probability of an abort storm per transaction.
    pub storm_rate: f64,
    /// Probability of corrupting a resident memory line per transaction.
    pub corrupt_rate: f64,
    /// Upper bound on phantom BS rounds per storm (each storm draws
    /// uniformly from `1..=max_storm_rounds`).
    pub max_storm_rounds: u32,
    /// Probability of corrupting a bridge inclusion tag per hierarchy
    /// access (consumed by the hierarchy driver, not the bus pipeline).
    pub stale_tag_rate: f64,
    /// When true the plan's stall/kill victims are segment *bridges* on a
    /// parent bus, so the watchdog records retirements as
    /// [`FaultKind::BridgeStall`] / [`FaultKind::BridgeKill`].
    pub bridges: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA_017,
            glitch_rate: 0.0,
            stall_rate: 0.0,
            kill_rate: 0.0,
            storm_rate: 0.0,
            corrupt_rate: 0.0,
            max_storm_rounds: 8,
            stale_tag_rate: 0.0,
            bridges: false,
        }
    }
}

impl FaultConfig {
    /// Returns this config with the given kind's rate set. The bridge
    /// variants share the stall/kill rate fields — which family the
    /// watchdog records is governed by [`FaultConfig::bridges`].
    #[must_use]
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        match kind {
            FaultKind::Glitch => self.glitch_rate = rate,
            FaultKind::Stall | FaultKind::BridgeStall => self.stall_rate = rate,
            FaultKind::Kill | FaultKind::BridgeKill => self.kill_rate = rate,
            FaultKind::AbortStorm => self.storm_rate = rate,
            FaultKind::CorruptMemory => self.corrupt_rate = rate,
            FaultKind::StaleTag => self.stale_tag_rate = rate,
        }
        self
    }
}

/// The faults a plan decided to inject into one transaction.
#[derive(Clone, Copy, Debug, Default)]
pub struct TxnFaults {
    /// Glitch one consistency line during the first snoop pass.
    pub glitch: bool,
    /// Stall or kill this module: `(victim, salvageable)`.
    pub stall: Option<(usize, bool)>,
    /// Phantom BS rounds to inject before letting the transaction through.
    pub storm_rounds: u32,
    /// Corrupt a resident memory line once the transaction completes.
    pub corrupt: bool,
}

/// One injected fault, with enough detail to replay or explain it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// A consistency line was glitched: `spurious` means the line was forced
    /// asserted (it was quiet), otherwise its genuine assertion was briefly
    /// suppressed. Either way the settle window filtered it out.
    Glitch {
        /// The line that glitched.
        line: ConsistencyLine,
        /// True for a spurious assertion, false for a suppressed one.
        spurious: bool,
    },
    /// A module hung mid-snoop; the watchdog retired it and salvaged the
    /// listed dirty lines to memory.
    Stall {
        /// The retired module.
        module: usize,
        /// Dirty lines the watchdog pushed to memory on its behalf.
        salvaged: Vec<LineAddr>,
    },
    /// A module died mid-snoop; the watchdog retired it and reports the
    /// listed dirty lines as lost.
    Kill {
        /// The retired module.
        module: usize,
        /// Dirty lines whose only up-to-date copy died with the module.
        lost: Vec<LineAddr>,
    },
    /// Phantom BS assertions aborted the transaction `rounds` extra times.
    AbortStorm {
        /// Number of phantom abort rounds injected.
        rounds: u32,
    },
    /// Bits flipped in a resident memory line.
    CorruptMemory {
        /// The corrupted line.
        addr: LineAddr,
        /// Byte offset within the line.
        offset: usize,
        /// XOR mask applied to that byte (never zero).
        mask: u8,
    },
    /// A segment bridge hung on the parent bus; the watchdog retired it
    /// (degrading its whole cluster to memory-direct) and salvaged the
    /// listed cluster-owned dirty lines to parent memory.
    BridgeStall {
        /// The retired bridge's parent-bus module index.
        bridge: usize,
        /// Dirty lines the watchdog pushed to parent memory on its behalf.
        salvaged: Vec<LineAddr>,
    },
    /// A segment bridge died on the parent bus; the watchdog retired it
    /// (degrading its cluster to memory-direct) and reports the listed
    /// cluster-owned dirty lines as lost.
    BridgeKill {
        /// The retired bridge's parent-bus module index.
        bridge: usize,
        /// Dirty lines whose only up-to-date copy died with the cluster.
        lost: Vec<LineAddr>,
    },
    /// A bridge's inclusion tag for a resident line was corrupted.
    StaleTag {
        /// The affected bridge's parent-bus module index.
        bridge: usize,
        /// The line whose cluster-level tag flipped.
        addr: LineAddr,
        /// The state letter the tag held before the flip.
        from: char,
        /// The bogus state letter it flipped to.
        to: char,
    },
}

impl InjectedFault {
    /// The family this fault belongs to.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        match self {
            InjectedFault::Glitch { .. } => FaultKind::Glitch,
            InjectedFault::Stall { .. } => FaultKind::Stall,
            InjectedFault::Kill { .. } => FaultKind::Kill,
            InjectedFault::AbortStorm { .. } => FaultKind::AbortStorm,
            InjectedFault::CorruptMemory { .. } => FaultKind::CorruptMemory,
            InjectedFault::BridgeStall { .. } => FaultKind::BridgeStall,
            InjectedFault::BridgeKill { .. } => FaultKind::BridgeKill,
            InjectedFault::StaleTag { .. } => FaultKind::StaleTag,
        }
    }
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFault::Glitch { line, spurious } => {
                write!(
                    f,
                    "{} {line}",
                    if *spurious { "spurious" } else { "suppressed" }
                )
            }
            InjectedFault::Stall { module, salvaged } => {
                write!(f, "stall m{module} ({} salvaged)", salvaged.len())
            }
            InjectedFault::Kill { module, lost } => {
                write!(f, "kill m{module} ({} lost)", lost.len())
            }
            InjectedFault::AbortStorm { rounds } => write!(f, "abort storm x{rounds}"),
            InjectedFault::CorruptMemory { addr, offset, mask } => {
                write!(f, "corrupt @{addr:#x}+{offset} ^{mask:#04x}")
            }
            InjectedFault::BridgeStall { bridge, salvaged } => {
                write!(f, "bridge stall b{bridge} ({} salvaged)", salvaged.len())
            }
            InjectedFault::BridgeKill { bridge, lost } => {
                write!(f, "bridge kill b{bridge} ({} lost)", lost.len())
            }
            InjectedFault::StaleTag {
                bridge,
                addr,
                from,
                to,
            } => {
                write!(f, "stale tag b{bridge} @{addr:#x} {from}->{to}")
            }
        }
    }
}

/// One logged injection: what was injected, into whose transaction, and how
/// much bus time the recovery cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Monotonic injection id, 0-based in injection order.
    pub id: u64,
    /// The master of the transaction the fault landed in.
    pub master: usize,
    /// The line address of that transaction.
    pub addr: LineAddr,
    /// The fault itself.
    pub fault: InjectedFault,
    /// Bus time the fault added (settle delay, backoff, watchdog timeout).
    pub recovery_ns: Nanos,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault #{} [{}] in m{}'s txn @{:#x}: {} (+{} ns)",
            self.id,
            self.fault.kind(),
            self.master,
            self.addr,
            self.fault,
            self.recovery_ns
        )
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// Installed on a `Futurebus` via `inject_faults`; the bus consults it once
/// per transaction ([`FaultPlan::decide`]) and logs whatever it actually
/// injected. The log ([`FaultPlan::records`]) is the campaign driver's input
/// for classifying outcomes.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SmallRng,
    log: Vec<FaultRecord>,
}

impl FaultPlan {
    /// Builds a plan from a config; same config ⇒ same injection sequence.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            log: Vec::new(),
        }
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Rolls the dice for one transaction. `stall_candidates` are the modules
    /// eligible for a stall/kill (snooping, not the master, not yet retired);
    /// stall faults are skipped when it is empty.
    pub fn decide(&mut self, stall_candidates: &[usize]) -> TxnFaults {
        let glitch = self.rng.gen_bool(self.cfg.glitch_rate);
        let stall = if stall_candidates.is_empty() {
            None
        } else if self.rng.gen_bool(self.cfg.stall_rate) {
            Some((*self.rng.pick(stall_candidates), true))
        } else if self.rng.gen_bool(self.cfg.kill_rate) {
            Some((*self.rng.pick(stall_candidates), false))
        } else {
            None
        };
        let storm_rounds =
            if self.cfg.max_storm_rounds > 0 && self.rng.gen_bool(self.cfg.storm_rate) {
                self.rng.gen_range(1..self.cfg.max_storm_rounds + 1)
            } else {
                0
            };
        let corrupt = self.rng.gen_bool(self.cfg.corrupt_rate);
        TxnFaults {
            glitch,
            stall,
            storm_rounds,
            corrupt,
        }
    }

    /// Picks which line to glitch given the wired-OR value the snoop pass
    /// actually produced: a quiet line glitches spuriously asserted, an
    /// asserted line glitches briefly suppressed.
    pub fn glitch_spec(&mut self, actual: ResponseSignals) -> InjectedFault {
        let line = *self.rng.pick(&ConsistencyLine::ALL);
        InjectedFault::Glitch {
            line,
            spurious: !actual.line(line),
        }
    }

    /// Picks a resident line (falling back to `fallback` when memory is
    /// empty), a byte offset and a non-zero XOR mask for a soft error.
    pub fn corrupt_spec(
        &mut self,
        resident: &[LineAddr],
        fallback: LineAddr,
        line_size: usize,
    ) -> InjectedFault {
        let addr = if resident.is_empty() {
            fallback
        } else {
            *self.rng.pick(resident)
        };
        InjectedFault::CorruptMemory {
            addr,
            offset: self.rng.gen_range(0..line_size),
            mask: self.rng.gen_range(1u16..256) as u8,
        }
    }

    /// Rolls the stale-inclusion-tag dice once. The hierarchy driver calls
    /// this per access (tags live in the bridges, not on the bus, so the
    /// bus pipeline never consumes this rate itself).
    pub fn decide_stale_tag(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.stale_tag_rate)
    }

    /// A uniform index into `0..len` from the plan's RNG — lets hierarchy
    /// drivers pick fault sites (which bridge, which resident tag) from the
    /// same deterministic stream the plan injects with.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "gen_index over an empty range");
        self.rng.gen_range(0..len)
    }

    /// Logs one injected fault, returning its id.
    pub fn record(
        &mut self,
        master: usize,
        addr: LineAddr,
        fault: InjectedFault,
        recovery_ns: Nanos,
    ) -> u64 {
        let id = self.log.len() as u64;
        self.log.push(FaultRecord {
            id,
            master,
            addr,
            fault,
            recovery_ns,
        });
        id
    }

    /// Every fault injected so far, in injection order.
    #[must_use]
    pub fn records(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Total faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.log.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_means_same_decisions() {
        let cfg = FaultConfig {
            glitch_rate: 0.5,
            stall_rate: 0.2,
            kill_rate: 0.2,
            storm_rate: 0.3,
            corrupt_rate: 0.4,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..200 {
            let (da, db) = (a.decide(&[1, 2, 3]), b.decide(&[1, 2, 3]));
            assert_eq!(da.glitch, db.glitch);
            assert_eq!(da.stall, db.stall);
            assert_eq!(da.storm_rounds, db.storm_rounds);
            assert_eq!(da.corrupt, db.corrupt);
        }
    }

    #[test]
    fn default_config_is_inert() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        for _ in 0..100 {
            let d = plan.decide(&[1, 2]);
            assert!(!d.glitch && d.stall.is_none() && d.storm_rounds == 0 && !d.corrupt);
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn glitch_spec_inverts_the_actual_line_value() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        let all = ResponseSignals {
            ch: true,
            di: true,
            sl: true,
            bs: false,
        };
        for _ in 0..20 {
            match plan.glitch_spec(ResponseSignals::NONE) {
                InjectedFault::Glitch { spurious, .. } => assert!(spurious),
                other => panic!("unexpected {other:?}"),
            }
            match plan.glitch_spec(all) {
                InjectedFault::Glitch { spurious, .. } => assert!(!spurious),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_spec_targets_resident_lines_with_nonzero_mask() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        let resident = [0x40, 0x80, 0xC0];
        for _ in 0..50 {
            match plan.corrupt_spec(&resident, 0x0, 32) {
                InjectedFault::CorruptMemory { addr, offset, mask } => {
                    assert!(resident.contains(&addr));
                    assert!(offset < 32);
                    assert_ne!(mask, 0);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match plan.corrupt_spec(&[], 0x1C0, 32) {
            InjectedFault::CorruptMemory { addr, .. } => assert_eq!(addr, 0x1C0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stalls_only_pick_eligible_victims() {
        let cfg = FaultConfig {
            stall_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(plan.decide(&[]).stall, None, "no candidates, no stall");
        for _ in 0..20 {
            let (victim, salvage) = plan.decide(&[2, 5]).stall.expect("rate 1.0 always fires");
            assert!(victim == 2 || victim == 5);
            assert!(salvage);
        }
    }

    #[test]
    fn records_accumulate_in_order() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        let id0 = plan.record(0, 0x40, InjectedFault::AbortStorm { rounds: 3 }, 150);
        let id1 = plan.record(
            1,
            0x80,
            InjectedFault::Kill {
                module: 2,
                lost: vec![0x40],
            },
            10_000,
        );
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.records()[1].fault.kind(), FaultKind::Kill);
        let shown = plan.records()[0].to_string();
        assert!(
            shown.contains("abort-storm") && shown.contains("x3"),
            "{shown}"
        );
    }

    #[test]
    fn displays_are_descriptive() {
        assert_eq!(FaultKind::CorruptMemory.to_string(), "corrupt-memory");
        let g = InjectedFault::Glitch {
            line: ConsistencyLine::Di,
            spurious: true,
        };
        assert_eq!(g.to_string(), "spurious DI");
        let c = InjectedFault::CorruptMemory {
            addr: 0x40,
            offset: 3,
            mask: 0x80,
        };
        assert!(c.to_string().contains("0x40"), "{c}");
    }
}
