//! Main memory: the default owner of every line (§3.1.3).
//!
//! "All data is said to be owned uniquely either by one and only one cache or
//! by main memory ... main memory is the default owner." Memory keeps no
//! consistency state at all: "Shared memory modules will not need to
//! distinguish valid data from invalid data; instead, caches associated with
//! each master will keep track of the invalidity of the data that resides in
//! shared memory" (§3.1.1).

use crate::transaction::LineAddr;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative hasher for line addresses. Line lookups sit on the bus
/// engine's per-transaction path, where the default SipHash costs more than
/// the table probe itself; a Fibonacci multiply with an avalanche shift is
/// plenty for keys that differ only in their upper (line-number) bits.
/// Iteration order is never observable — deterministic consumers go through
/// [`SparseMemory::line_addrs`], which sorts.
#[derive(Clone, Copy, Debug, Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the line map): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        let mixed = (self.0 ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = mixed ^ (mixed >> 29);
    }
}

type LineMap = HashMap<LineAddr, Box<[u8]>, BuildHasherDefault<LineHasher>>;

/// A sparse, line-granular main memory. Untouched lines read as zero.
///
/// # Examples
///
/// ```
/// use futurebus::SparseMemory;
///
/// let mut mem = SparseMemory::new(16);
/// assert_eq!(&mem.read_line(0x40)[..4], &[0, 0, 0, 0]);
/// mem.write_bytes(0x40, 4, &[0xAB, 0xCD]);
/// assert_eq!(mem.read_line(0x40)[4], 0xAB);
/// ```
#[derive(Clone, Debug)]
pub struct SparseMemory {
    line_size: usize,
    lines: LineMap,
    reads: u64,
    writes: u64,
}

impl SparseMemory {
    /// Creates an empty memory with the given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a non-zero power of two (the paper's
    /// §5.1 standard-line-size requirement presumes conventional sizes).
    #[must_use]
    pub fn new(line_size: usize) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two, got {line_size}"
        );
        SparseMemory {
            line_size,
            lines: LineMap::default(),
            reads: 0,
            writes: 0,
        }
    }

    /// The configured line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Aligns an arbitrary byte address down to its line address.
    #[must_use]
    pub fn align(&self, addr: u64) -> LineAddr {
        addr & !(self.line_size as u64 - 1)
    }

    /// True when `addr` is line-aligned.
    #[must_use]
    pub fn is_aligned(&self, addr: u64) -> bool {
        self.align(addr) == addr
    }

    /// Reads a full line. Untouched lines are zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned.
    #[must_use]
    pub fn read_line(&mut self, addr: LineAddr) -> Box<[u8]> {
        assert!(self.is_aligned(addr), "unaligned line read at {addr:#x}");
        self.reads += 1;
        match self.lines.get(&addr) {
            Some(line) => line.clone(),
            None => vec![0; self.line_size].into_boxed_slice(),
        }
    }

    /// Peeks at a line without counting a memory access (for checkers).
    #[must_use]
    pub fn peek_line(&self, addr: LineAddr) -> Box<[u8]> {
        match self.lines.get(&self.align(addr)) {
            Some(line) => line.clone(),
            None => vec![0; self.line_size].into_boxed_slice(),
        }
    }

    /// Overwrites a full line (a push / write-back).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or `data` is not exactly one line.
    pub fn write_line(&mut self, addr: LineAddr, data: &[u8]) {
        assert!(self.is_aligned(addr), "unaligned line write at {addr:#x}");
        assert_eq!(data.len(), self.line_size, "line write must be full-size");
        self.writes += 1;
        self.lines.insert(addr, data.into());
    }

    /// Writes part of a line (a word write from a write-through or
    /// non-caching master, or a broadcast update).
    ///
    /// # Panics
    ///
    /// Panics if the write would cross the end of the line.
    pub fn write_bytes(&mut self, addr: LineAddr, offset: usize, bytes: &[u8]) {
        assert!(
            self.is_aligned(addr),
            "unaligned partial write at {addr:#x}"
        );
        assert!(
            offset + bytes.len() <= self.line_size,
            "write {}B@+{offset} crosses line boundary (line size {})",
            bytes.len(),
            self.line_size
        );
        self.writes += 1;
        let line = self
            .lines
            .entry(addr)
            .or_insert_with(|| vec![0; self.line_size].into_boxed_slice());
        line[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Number of line reads served.
    #[must_use]
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of writes accepted (full-line and partial).
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of distinct lines ever written.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Addresses of every resident line, sorted ascending. The underlying
    /// map iterates in hash order, so callers that need determinism (fault
    /// injection, checkers) must go through this.
    #[must_use]
    pub fn line_addrs(&self) -> Vec<LineAddr> {
        let mut addrs: Vec<LineAddr> = self.lines.keys().copied().collect();
        addrs.sort_unstable();
        addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_lines_read_zero() {
        let mut mem = SparseMemory::new(32);
        assert!(mem.read_line(0).iter().all(|&b| b == 0));
        assert_eq!(mem.read_line(0x1000).len(), 32);
    }

    #[test]
    fn partial_writes_merge_into_the_line() {
        let mut mem = SparseMemory::new(16);
        mem.write_bytes(0x20, 0, &[1, 2]);
        mem.write_bytes(0x20, 14, &[3, 4]);
        let line = mem.read_line(0x20);
        assert_eq!(&line[..2], &[1, 2]);
        assert_eq!(&line[14..], &[3, 4]);
        assert!(line[2..14].iter().all(|&b| b == 0));
    }

    #[test]
    fn full_line_write_replaces_content() {
        let mut mem = SparseMemory::new(8);
        mem.write_bytes(0, 0, &[9; 8]);
        mem.write_line(0, &[7; 8]);
        assert_eq!(&mem.read_line(0)[..], &[7; 8]);
    }

    #[test]
    fn alignment_helpers() {
        let mem = SparseMemory::new(64);
        assert_eq!(mem.align(0x7F), 0x40);
        assert!(mem.is_aligned(0x80));
        assert!(!mem.is_aligned(0x81));
    }

    #[test]
    fn counters_track_traffic() {
        let mut mem = SparseMemory::new(16);
        let _ = mem.read_line(0);
        mem.write_bytes(0, 0, &[1]);
        mem.write_line(16, &[0; 16]);
        assert_eq!(mem.read_count(), 1);
        assert_eq!(mem.write_count(), 2);
        assert_eq!(mem.resident_lines(), 2);
        // peek does not count.
        let _ = mem.peek_line(0);
        assert_eq!(mem.read_count(), 1);
    }

    #[test]
    fn line_addrs_are_sorted() {
        let mut mem = SparseMemory::new(16);
        for addr in [0x300, 0x10, 0x200, 0x0] {
            mem.write_line(addr, &[1; 16]);
        }
        assert_eq!(mem.line_addrs(), vec![0x0, 0x10, 0x200, 0x300]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_line_sizes_are_rejected() {
        let _ = SparseMemory::new(24);
    }

    #[test]
    #[should_panic(expected = "crosses line boundary")]
    fn line_crossing_writes_are_rejected() {
        let mut mem = SparseMemory::new(16);
        mem.write_bytes(0, 14, &[0; 4]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_reads_are_rejected() {
        let mut mem = SparseMemory::new(16);
        let _ = mem.read_line(3);
    }
}
