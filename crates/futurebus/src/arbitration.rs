//! Bus arbitration: which requesting master gets the next transaction.

use std::fmt;

/// An arbitration policy over module indices.
///
/// The Futurebus arbitrates in parallel with the previous transfer; the
/// simulator models only the *choice*, charging the fixed
/// [`arbitration_ns`](crate::TimingConfig::arbitration_ns) cost per
/// transaction.
pub trait Arbiter {
    /// Picks the winner among `requesters` (module indices). Returns `None`
    /// when no one is requesting.
    fn grant(&mut self, requesters: &[usize]) -> Option<usize>;
}

impl fmt::Debug for dyn Arbiter + Send {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Arbiter")
    }
}

/// Fixed-priority arbitration: the lowest module index always wins.
///
/// Simple and unfair — a greedy low-numbered master can starve the others,
/// which the fairness integration tests demonstrate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PriorityArbiter;

impl PriorityArbiter {
    /// Creates the arbiter.
    #[must_use]
    pub fn new() -> Self {
        PriorityArbiter
    }
}

impl Arbiter for PriorityArbiter {
    fn grant(&mut self, requesters: &[usize]) -> Option<usize> {
        requesters.iter().copied().min()
    }
}

/// Round-robin arbitration: after a grant, that module becomes the lowest
/// priority, guaranteeing every requester is served eventually.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    last: usize,
}

impl RoundRobinArbiter {
    /// Creates the arbiter; module 0 has initial priority.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinArbiter { last: usize::MAX }
    }
}

impl Arbiter for RoundRobinArbiter {
    fn grant(&mut self, requesters: &[usize]) -> Option<usize> {
        if requesters.is_empty() {
            return None;
        }
        // The winner is the smallest index strictly greater than the previous
        // winner, wrapping around.
        let after = requesters
            .iter()
            .copied()
            .filter(|&r| self.last != usize::MAX && r > self.last)
            .min();
        let winner = after.or_else(|| requesters.iter().copied().min())?;
        self.last = winner;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_always_picks_the_lowest() {
        let mut a = PriorityArbiter::new();
        assert_eq!(a.grant(&[3, 1, 2]), Some(1));
        assert_eq!(a.grant(&[3, 1, 2]), Some(1), "no memory, no fairness");
        assert_eq!(a.grant(&[]), None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobinArbiter::new();
        assert_eq!(a.grant(&[0, 1, 2]), Some(0));
        assert_eq!(a.grant(&[0, 1, 2]), Some(1));
        assert_eq!(a.grant(&[0, 1, 2]), Some(2));
        assert_eq!(a.grant(&[0, 1, 2]), Some(0), "wraps around");
        assert_eq!(a.grant(&[]), None);
    }

    #[test]
    fn round_robin_skips_non_requesters() {
        let mut a = RoundRobinArbiter::new();
        assert_eq!(a.grant(&[1]), Some(1));
        assert_eq!(a.grant(&[0, 3]), Some(3), "next after 1 among {{0,3}}");
        assert_eq!(a.grant(&[0, 3]), Some(0));
    }

    #[test]
    fn round_robin_serves_everyone_within_n_rounds() {
        let mut a = RoundRobinArbiter::new();
        let requesters: Vec<usize> = (0..8).collect();
        let mut served = std::collections::HashSet::new();
        for _ in 0..8 {
            served.insert(a.grant(&requesters).unwrap());
        }
        assert_eq!(served.len(), 8);
    }
}
