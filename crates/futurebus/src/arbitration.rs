//! Bus arbitration: which requesting master gets the next transaction, and
//! how long it queues for the grant.
//!
//! §2.1 of the paper describes distributed priority arbitration with an
//! optional fairness overlay; the Nikolov & Lerato comparison (PAPERS.md)
//! measures FCFS against priority and round-robin service disciplines on a
//! shared bus. The simulator models both halves:
//!
//! * [`Arbiter::grant`] — the *choice* among simultaneous requesters (used by
//!   the fairness tests and the watchdog's retirement bookkeeping);
//! * [`Arbiter::slots_to_grant`] — the *queueing delay* a master pays before
//!   its grant, in arbitration slots. The pipeline charges
//!   `(slots - 1) * arbitration_ns` to [`Phase::Arbitrate`]
//!   (the first slot is already in the base transaction cost), so the
//!   default single-slot disciplines are byte-identical to the historical
//!   fixed-cost model.
//!
//! [`Phase::Arbitrate`]: crate::Phase::Arbitrate

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// An arbitration policy over module indices.
///
/// The Futurebus arbitrates in parallel with the previous transfer; the
/// simulator models the *choice* via [`Arbiter::grant`] and the queueing
/// delay via [`Arbiter::slots_to_grant`], each slot costing the fixed
/// [`arbitration_ns`](crate::TimingConfig::arbitration_ns).
pub trait Arbiter {
    /// Picks the winner among `requesters` (module indices). Returns `None`
    /// when no one is requesting.
    fn grant(&mut self, requesters: &[usize]) -> Option<usize>;

    /// How many arbitration slots `master` waits before winning the bus when
    /// every index in `live` is contending. The default models a purely
    /// combinational arbiter: one slot, regardless of the winner — exactly
    /// the historical fixed-cost behaviour.
    fn slots_to_grant(&mut self, master: usize, live: &[usize]) -> u32 {
        let _ = (master, live);
        1
    }
}

impl fmt::Debug for dyn Arbiter + Send {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Arbiter")
    }
}

/// Fixed-priority arbitration: the lowest module index always wins.
///
/// Simple and unfair — a greedy low-numbered master can starve the others,
/// which the fairness integration tests demonstrate. The grant itself is
/// combinational (one slot for everyone): the unfairness lives in *who*
/// wins, not in how long the resolution takes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PriorityArbiter;

impl PriorityArbiter {
    /// Creates the arbiter.
    #[must_use]
    pub fn new() -> Self {
        PriorityArbiter
    }
}

impl Arbiter for PriorityArbiter {
    fn grant(&mut self, requesters: &[usize]) -> Option<usize> {
        requesters.iter().copied().min()
    }
}

/// Round-robin arbitration: after a grant, that module becomes the lowest
/// priority, guaranteeing every requester is served eventually.
///
/// The queueing model is the rotating token: the master waits one slot for
/// every contender the token passes over on its way round, so a master that
/// just transacted pays a full rotation while a master next in turn pays one
/// slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    last: usize,
}

impl RoundRobinArbiter {
    /// Creates the arbiter; module 0 has initial priority.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinArbiter { last: usize::MAX }
    }
}

impl Arbiter for RoundRobinArbiter {
    fn grant(&mut self, requesters: &[usize]) -> Option<usize> {
        if requesters.is_empty() {
            return None;
        }
        // The winner is the smallest index strictly greater than the previous
        // winner, wrapping around.
        let after = requesters
            .iter()
            .copied()
            .filter(|&r| self.last != usize::MAX && r > self.last)
            .min();
        let winner = after.or_else(|| requesters.iter().copied().min())?;
        self.last = winner;
        Some(winner)
    }

    fn slots_to_grant(&mut self, master: usize, live: &[usize]) -> u32 {
        if !live.contains(&master) {
            return 1;
        }
        // Spin the token until it lands on the master, one slot per grant.
        let mut slots = 0u32;
        for _ in 0..live.len() {
            slots += 1;
            if self.grant(live) == Some(master) {
                break;
            }
        }
        slots.max(1)
    }
}

/// First-come-first-served arbitration: requesters queue in arrival order
/// and the head of the queue is served next, regardless of index.
///
/// Arrival is modelled at the granularity the simulator sees: every live
/// module not already queued joins the tail (in index order) when a new
/// transaction arbitrates, and serving the master also serves everyone ahead
/// of it — one slot each — so the master's delay is its queue depth.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FcfsArbiter {
    queue: VecDeque<usize>,
}

impl FcfsArbiter {
    /// Creates the arbiter with an empty request queue.
    #[must_use]
    pub fn new() -> Self {
        FcfsArbiter {
            queue: VecDeque::new(),
        }
    }

    fn admit(&mut self, candidates: &[usize]) {
        // Simultaneous arrivals tie-break by index, whatever order the
        // caller listed them in.
        let mut sorted: Vec<usize> = candidates.to_vec();
        sorted.sort_unstable();
        for m in sorted {
            if !self.queue.contains(&m) {
                self.queue.push_back(m);
            }
        }
    }
}

impl Arbiter for FcfsArbiter {
    fn grant(&mut self, requesters: &[usize]) -> Option<usize> {
        if requesters.is_empty() {
            return None;
        }
        self.admit(requesters);
        // The queued requester closest to the head wins.
        let winner = self
            .queue
            .iter()
            .copied()
            .find(|m| requesters.contains(m))?;
        self.queue.retain(|&m| m != winner);
        Some(winner)
    }

    fn slots_to_grant(&mut self, master: usize, live: &[usize]) -> u32 {
        self.admit(live);
        if !self.queue.contains(&master) {
            self.queue.push_back(master);
        }
        let pos = self
            .queue
            .iter()
            .position(|&m| m == master)
            .expect("master enqueued above");
        // Everyone ahead of the master is served first, one slot each; then
        // the master's own grant slot.
        self.queue.drain(..=pos);
        pos as u32 + 1
    }
}

/// The bus service disciplines a segment can run, named after the policies
/// Nikolov & Lerato compare for a shared-bus multiprocessor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Discipline {
    /// Fixed priority by module index ([`PriorityArbiter`]); the historical
    /// default, byte-identical to the fixed-cost arbitration model.
    #[default]
    Priority,
    /// Rotating priority ([`RoundRobinArbiter`]).
    RoundRobin,
    /// Arrival-order queueing ([`FcfsArbiter`]).
    Fcfs,
}

impl Discipline {
    /// Every discipline, in presentation order.
    pub const ALL: [Discipline; 3] = [
        Discipline::Priority,
        Discipline::RoundRobin,
        Discipline::Fcfs,
    ];

    /// A fresh arbiter implementing this discipline.
    #[must_use]
    pub fn arbiter(self) -> Box<dyn Arbiter + Send> {
        match self {
            Discipline::Priority => Box::new(PriorityArbiter::new()),
            Discipline::RoundRobin => Box::new(RoundRobinArbiter::new()),
            Discipline::Fcfs => Box::new(FcfsArbiter::new()),
        }
    }
}

impl fmt::Display for Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Discipline::Priority => "priority",
            Discipline::RoundRobin => "round-robin",
            Discipline::Fcfs => "fcfs",
        })
    }
}

impl FromStr for Discipline {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "priority" => Ok(Discipline::Priority),
            "round-robin" | "rr" => Ok(Discipline::RoundRobin),
            "fcfs" => Ok(Discipline::Fcfs),
            other => Err(format!(
                "unknown discipline `{other}` (expected priority, round-robin or fcfs)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_always_picks_the_lowest() {
        let mut a = PriorityArbiter::new();
        assert_eq!(a.grant(&[3, 1, 2]), Some(1));
        assert_eq!(a.grant(&[3, 1, 2]), Some(1), "no memory, no fairness");
        assert_eq!(a.grant(&[]), None);
    }

    #[test]
    fn priority_grants_in_one_slot_for_everyone() {
        let mut a = PriorityArbiter::new();
        for master in 0..4 {
            assert_eq!(a.slots_to_grant(master, &[0, 1, 2, 3]), 1);
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobinArbiter::new();
        assert_eq!(a.grant(&[0, 1, 2]), Some(0));
        assert_eq!(a.grant(&[0, 1, 2]), Some(1));
        assert_eq!(a.grant(&[0, 1, 2]), Some(2));
        assert_eq!(a.grant(&[0, 1, 2]), Some(0), "wraps around");
        assert_eq!(a.grant(&[]), None);
    }

    #[test]
    fn round_robin_skips_non_requesters() {
        let mut a = RoundRobinArbiter::new();
        assert_eq!(a.grant(&[1]), Some(1));
        assert_eq!(a.grant(&[0, 3]), Some(3), "next after 1 among {{0,3}}");
        assert_eq!(a.grant(&[0, 3]), Some(0));
    }

    #[test]
    fn round_robin_serves_everyone_within_n_rounds() {
        let mut a = RoundRobinArbiter::new();
        let requesters: Vec<usize> = (0..8).collect();
        let mut served = std::collections::HashSet::new();
        for _ in 0..8 {
            served.insert(a.grant(&requesters).unwrap());
        }
        assert_eq!(served.len(), 8);
    }

    #[test]
    fn round_robin_charges_the_token_distance() {
        let mut a = RoundRobinArbiter::new();
        // Token starts before module 0: master 2 waits for 0 and 1.
        assert_eq!(a.slots_to_grant(2, &[0, 1, 2, 3]), 3);
        // Token now at 2; master 3 is next in turn.
        assert_eq!(a.slots_to_grant(3, &[0, 1, 2, 3]), 1);
        // Wrapping: master 3 again pays a full rotation.
        assert_eq!(a.slots_to_grant(3, &[0, 1, 2, 3]), 4);
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut a = FcfsArbiter::new();
        // All four arrive together (index order breaks the tie); master 1 is
        // second in line.
        assert_eq!(a.slots_to_grant(1, &[0, 1, 2, 3]), 2);
        // 2 and 3 are still queued from the first round; master 0 re-arrives
        // behind them.
        assert_eq!(a.slots_to_grant(0, &[0, 1, 2, 3]), 3);
        // Only 1 left queued; 0, 2 and 3 re-arrive behind it in index order,
        // so master 3 sits at the tail of a four-deep queue.
        assert_eq!(a.slots_to_grant(3, &[0, 1, 2, 3]), 4);
    }

    #[test]
    fn fcfs_grant_prefers_the_longest_waiter() {
        let mut a = FcfsArbiter::new();
        assert_eq!(a.grant(&[2, 1]), Some(1), "index order on simultaneous");
        assert_eq!(a.grant(&[2, 0]), Some(2), "2 queued before 0 arrived");
        assert_eq!(a.grant(&[]), None);
    }

    #[test]
    fn disciplines_parse_and_render_round_trip() {
        for d in Discipline::ALL {
            assert_eq!(d.to_string().parse::<Discipline>(), Ok(d));
        }
        assert_eq!("rr".parse::<Discipline>(), Ok(Discipline::RoundRobin));
        assert!("lifo".parse::<Discipline>().is_err());
        assert_eq!(Discipline::default(), Discipline::Priority);
    }

    #[test]
    fn every_discipline_builds_a_working_arbiter() {
        for d in Discipline::ALL {
            let mut a = d.arbiter();
            assert_eq!(a.grant(&[0]), Some(0), "{d}");
            assert!(a.slots_to_grant(0, &[0, 1]) >= 1, "{d}");
        }
    }
}
