//! # futurebus — a behavioural model of the IEEE P896 Futurebus
//!
//! This crate models the bus substrate of *"A Class of Compatible Cache
//! Consistency Protocols and their Support by the IEEE Futurebus"* (Sweazey &
//! Smith, ISCA 1986), §2:
//!
//! * [`wire`] — open-collector wired-OR lines ("drive low, float high") with
//!   wired-OR glitch accounting;
//! * [`handshake`] — the broadcast address handshake of Figures 1 and 2,
//!   including the 25 ns glitch-filter penalty;
//! * [`Futurebus`] — the transaction engine: broadcast snooping, intervention
//!   (DI) preempting memory, broadcast writes updating memory and SL-connected
//!   third parties, BS abort-push-restart, and nanosecond cost accounting;
//! * [`SparseMemory`] — main memory, the default owner of every line;
//! * [`arbitration`] — pluggable service disciplines (priority, round-robin,
//!   FCFS) with per-slot queueing-delay accounting;
//! * [`fault`] — a deterministic, seeded fault-injection engine (consistency-
//!   line glitches, stalled/killed snoopers, abort storms, soft errors) paired
//!   with the bus watchdog and bounded-retry recovery machinery.
//!
//! The consistency *protocols* live in the `moesi` crate; the cache arrays in
//! `cache-array`; the full multiprocessor simulator in `mpsim`.
//!
//! ## Quick start
//!
//! ```
//! use futurebus::{Futurebus, TimingConfig, TransactionRequest};
//! use moesi::MasterSignals;
//!
//! let mut bus = Futurebus::new(32, TimingConfig::default());
//! bus.memory_mut().write_bytes(0x100, 0, b"hello");
//!
//! let req = TransactionRequest::read(0, 0x100, MasterSignals::CA);
//! let out = bus.execute(&req, &mut []).unwrap();
//! assert_eq!(&out.data.unwrap()[..5], b"hello");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbitration;
mod bus;
pub mod fault;
pub mod handshake;
mod memory;
mod module;
pub mod observe;
pub mod phases;
mod stats;
mod timing;
pub mod trace;
mod transaction;
pub mod wire;

pub use arbitration::{Arbiter, Discipline, FcfsArbiter, PriorityArbiter, RoundRobinArbiter};
pub use bus::{Futurebus, RetryPolicy};
pub use fault::{FaultConfig, FaultKind, FaultPlan, FaultRecord, InjectedFault};
pub use memory::SparseMemory;
pub use module::{BusModule, BusObservation, PushWrite, RetireReport};
pub use observe::{
    ChromeTraceWriter, LatencyHistogram, LivenessMonitor, MasterProgress, PhaseHistograms,
    TxnPhases, HISTOGRAM_BUCKETS,
};
pub use phases::Phase;
pub use stats::BusStats;
pub use timing::{DataSourceLatency, Nanos, TimingConfig, BROADCAST_PENALTY_NS};
pub use trace::{BusTrace, TraceKind, TraceRecord};
pub use transaction::{
    BusError, DataSource, LineAddr, TransactionKind, TransactionOutcome, TransactionRequest,
};
