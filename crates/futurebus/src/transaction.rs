//! Bus transactions: requests masters issue and the outcomes they observe.

use crate::timing::Nanos;
use moesi::{MasterSignals, ResponseSignals};
use std::fmt;

/// A line-aligned byte address on the shared bus.
pub type LineAddr = u64;

/// What a transaction does in its data phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransactionKind {
    /// Read a full line (the `R` action of the tables). The master receives
    /// the line from memory or from an intervening owner.
    Read,
    /// Write `bytes` starting at `offset` within the line (the `W` action):
    /// a write-through, a broadcast update, or — with `offset == 0` and a
    /// full-line payload — a line push.
    Write {
        /// Byte offset of the payload within the line.
        offset: usize,
        /// The bytes written.
        bytes: Vec<u8>,
    },
    /// No data phase: the "address only invalidate signal" of table note 6.
    AddressOnly,
}

impl TransactionKind {
    /// Payload size in bytes (zero for reads and address-only transactions —
    /// for reads the *response* carries the line, accounted separately).
    #[must_use]
    pub fn payload_len(&self) -> usize {
        match self {
            TransactionKind::Write { bytes, .. } => bytes.len(),
            _ => 0,
        }
    }
}

impl fmt::Display for TransactionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionKind::Read => f.write_str("read"),
            TransactionKind::Write { offset, bytes } => {
                write!(f, "write {}B@+{offset}", bytes.len())
            }
            TransactionKind::AddressOnly => f.write_str("address-only"),
        }
    }
}

/// A transaction as presented on the bus during the broadcast address cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransactionRequest {
    /// Index of the issuing module in the module slice passed to
    /// [`Futurebus::execute`](crate::Futurebus::execute). The master does not
    /// snoop its own transaction.
    pub master: usize,
    /// The line-aligned address.
    pub addr: LineAddr,
    /// The data-phase operation.
    pub kind: TransactionKind,
    /// The consistency signals the master drives (CA, IM, BC).
    pub signals: MasterSignals,
}

impl TransactionRequest {
    /// A read transaction.
    #[must_use]
    pub fn read(master: usize, addr: LineAddr, signals: MasterSignals) -> Self {
        TransactionRequest {
            master,
            addr,
            kind: TransactionKind::Read,
            signals,
        }
    }

    /// A write transaction carrying `bytes` at `offset` within the line.
    #[must_use]
    pub fn write(
        master: usize,
        addr: LineAddr,
        signals: MasterSignals,
        offset: usize,
        bytes: Vec<u8>,
    ) -> Self {
        TransactionRequest {
            master,
            addr,
            kind: TransactionKind::Write { offset, bytes },
            signals,
        }
    }

    /// An address-only transaction (invalidate).
    #[must_use]
    pub fn address_only(master: usize, addr: LineAddr, signals: MasterSignals) -> Self {
        TransactionRequest {
            master,
            addr,
            kind: TransactionKind::AddressOnly,
            signals,
        }
    }
}

impl fmt::Display for TransactionRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "module {} {} @{:#x} [{}]",
            self.master, self.kind, self.addr, self.signals
        )
    }
}

/// Where the data phase was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataSource {
    /// Main memory responded (the default owner).
    Memory,
    /// The identified module intervened (asserted DI) and preempted memory.
    Intervention(usize),
    /// No data flowed (address-only).
    None,
}

/// What the master observes when its transaction completes.
#[derive(Clone, Debug)]
pub struct TransactionOutcome {
    /// The line contents, for reads.
    pub data: Option<Box<[u8]>>,
    /// Wired-OR of every snooper's response lines on the final (non-aborted)
    /// pass.
    pub responses: ResponseSignals,
    /// Whether any other cache asserted CH — resolves the `CH:x/y` results.
    pub ch_seen: bool,
    /// Who served the data phase.
    pub source: DataSource,
    /// Total bus time consumed, including any abort-push-retry rounds.
    pub duration: Nanos,
    /// Number of BS abort rounds the transaction went through.
    pub aborts: u32,
}

/// Errors the bus can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BusError {
    /// The master drove an illegal signal combination (BC without IM).
    IllegalSignals(MasterSignals),
    /// `master` is not a valid module index.
    UnknownMaster(usize),
    /// More than one module asserted DI — ownership is supposed to be unique.
    MultipleInterveners(Vec<usize>),
    /// BS abort loops exceeded the retry limit.
    TooManyRetries(u32),
    /// A write payload does not fit in the line.
    PayloadOutOfRange {
        /// Offset of the payload within the line.
        offset: usize,
        /// Payload length.
        len: usize,
        /// The configured line size.
        line_size: usize,
    },
    /// The address is not aligned to the configured line size.
    UnalignedAddress(LineAddr),
    /// A snooper broke the bus protocol — e.g. asserted BS without having a
    /// push ready, or pushed a short line. Reported as an error so a buggy
    /// protocol is a diagnosable failure, not a process abort.
    ProtocolError {
        /// The offending module index.
        module: usize,
        /// What it did wrong.
        detail: String,
    },
}

impl BusError {
    /// The pipeline phase in which this error arises: validation failures
    /// never pass arbitration, the retry cutoff fires in abort-backoff, and
    /// duplicate interveners or protocol violations surface when the data
    /// has to move (an intervention supply or an abort push). Lets fault
    /// campaigns classify damage structurally instead of string-matching.
    #[must_use]
    pub fn phase(&self) -> crate::Phase {
        match self {
            BusError::IllegalSignals(_)
            | BusError::UnknownMaster(_)
            | BusError::PayloadOutOfRange { .. }
            | BusError::UnalignedAddress(_) => crate::Phase::Arbitrate,
            BusError::TooManyRetries(_) => crate::Phase::AbortBackoff,
            BusError::MultipleInterveners(_) | BusError::ProtocolError { .. } => {
                crate::Phase::DataTransfer
            }
        }
    }
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::IllegalSignals(s) => write!(f, "illegal master signals `{s}`"),
            BusError::UnknownMaster(m) => write!(f, "unknown master index {m}"),
            BusError::MultipleInterveners(ms) => {
                write!(f, "multiple modules intervened: {ms:?}")
            }
            BusError::TooManyRetries(n) => write!(f, "transaction aborted {n} times"),
            BusError::PayloadOutOfRange {
                offset,
                len,
                line_size,
            } => write!(
                f,
                "write payload {len}B@+{offset} exceeds line size {line_size}"
            ),
            BusError::UnalignedAddress(a) => write!(f, "address {a:#x} is not line-aligned"),
            BusError::ProtocolError { module, detail } => {
                write!(f, "module {module} broke the bus protocol: {detail}")
            }
        }
    }
}

impl std::error::Error for BusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let r = TransactionRequest::read(2, 0x80, MasterSignals::CA);
        assert_eq!(r.kind, TransactionKind::Read);
        assert_eq!(r.kind.payload_len(), 0);

        let w = TransactionRequest::write(0, 0x40, MasterSignals::IM, 4, vec![1, 2, 3, 4]);
        assert_eq!(w.kind.payload_len(), 4);

        let a = TransactionRequest::address_only(1, 0, MasterSignals::CA_IM);
        assert_eq!(a.kind, TransactionKind::AddressOnly);
        assert_eq!(a.kind.payload_len(), 0);
    }

    #[test]
    fn display_is_descriptive() {
        let w = TransactionRequest::write(3, 0x100, MasterSignals::CA_IM_BC, 8, vec![0; 4]);
        let s = w.to_string();
        assert!(s.contains("module 3"));
        assert!(s.contains("write 4B@+8"));
        assert!(s.contains("CA,IM,BC"));

        assert_eq!(
            BusError::IllegalSignals(MasterSignals::new(false, false, true)).to_string(),
            "illegal master signals `BC`"
        );
        assert!(BusError::TooManyRetries(5).to_string().contains("5 times"));
        let pe = BusError::ProtocolError {
            module: 2,
            detail: "asserted BS without a push".to_string(),
        };
        assert!(pe.to_string().contains("module 2"), "{pe}");
        assert!(pe.to_string().contains("without a push"), "{pe}");
    }
}
