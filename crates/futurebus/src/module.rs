//! The [`BusModule`] trait: anything attached to the Futurebus that snoops.

use crate::transaction::{LineAddr, TransactionRequest};
use moesi::{MasterSignals, ResponseSignals};

/// What a snooping module observes at the end of a transaction, after all
/// responses have been combined on the wired-OR lines.
#[derive(Clone, Copy, Debug)]
pub struct BusObservation<'a> {
    /// CH asserted by at least one *other* cache (not this module, not the
    /// master). Resolves `CH:O/M` and `CH:S/E` reaction results.
    pub ch_others: bool,
    /// The write payload, when this module connected to the transfer (SL on a
    /// broadcast) or captured it (DI on a write): byte offset within the line
    /// and the data.
    pub write_data: Option<(usize, &'a [u8])>,
}

/// The write-back a module performs after aborting a transaction with BS
/// (§3.2.2: "BS is used to abort a transaction and update memory before that
/// transaction can resume").
#[derive(Clone, Debug)]
pub struct PushWrite {
    /// The full line contents pushed to memory.
    pub data: Box<[u8]>,
    /// The signals the push write drives (e.g. `CA` for `BS;S,CA,W`).
    pub signals: MasterSignals,
}

/// What the bus watchdog recovers when it retires a non-responding module
/// from the snoop set.
///
/// A *stalled* module's snoop logic hung but its cache RAM is still readable,
/// so its dirty (owned) lines can be salvaged to memory; a *killed* module
/// takes its dirty lines with it, and the loss is reported here rather than
/// discovered later as silent corruption.
#[derive(Clone, Debug, Default)]
pub struct RetireReport {
    /// Dirty lines recovered from the module, ready to write back to memory.
    pub salvaged: Vec<(LineAddr, Box<[u8]>)>,
    /// Dirty lines whose only up-to-date copy died with the module.
    pub lost: Vec<LineAddr>,
}

/// A unit attached to the bus: a cache controller, an I/O board, etc.
///
/// Main memory is *not* a `BusModule`: it lives inside the
/// [`Futurebus`](crate::Futurebus) as the default owner of every line, which
/// keeps the data path (intervention preempting memory) in one place.
///
/// The bus drives a transaction through three phases:
///
/// 1. **Snoop** — every module other than the master sees the broadcast
///    address cycle and answers with its response lines ([`snoop`]).
/// 2. **Data** — if a module asserted DI on a read, the bus fetches the line
///    from it ([`supply_line`]); if it asserted BS, the bus collects its push
///    ([`prepare_push`]), writes it to memory, and restarts the transaction.
/// 3. **Complete** — every snooped module commits its state transition with
///    the resolved CH observation and any broadcast/captured data
///    ([`complete`]).
///
/// [`snoop`]: BusModule::snoop
/// [`supply_line`]: BusModule::supply_line
/// [`prepare_push`]: BusModule::prepare_push
/// [`complete`]: BusModule::complete
pub trait BusModule {
    /// Observe the broadcast address cycle and answer with response lines.
    ///
    /// A module asserting `BS` must be prepared for a [`prepare_push`] call;
    /// one asserting `DI` on a read must be prepared for [`supply_line`].
    ///
    /// [`prepare_push`]: BusModule::prepare_push
    /// [`supply_line`]: BusModule::supply_line
    fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals;

    /// Supply the full line for a read this module intervened on, or `None`
    /// if it cannot.
    ///
    /// Asserting DI without being able to supply the line is a protocol bug,
    /// but it must not crash the machine: the bus turns a `None` here into a
    /// reported [`BusError::ProtocolError`](crate::BusError::ProtocolError)
    /// instead of a process abort. The default implementation returns
    /// `None`, since modules that never assert DI never receive this call.
    fn supply_line(&mut self, _addr: LineAddr) -> Option<Box<[u8]>> {
        None
    }

    /// Produce the push write-back after this module aborted with BS, or
    /// `None` if it has nothing to push.
    ///
    /// Asserting BS without a push is a protocol bug, but it must not crash
    /// the machine: the bus turns a `None` here into a reported
    /// [`BusError::ProtocolError`](crate::BusError::ProtocolError) instead of
    /// a process abort. The default implementation returns `None`, since
    /// modules that never assert BS never receive this call.
    fn prepare_push(&mut self, _addr: LineAddr) -> Option<PushWrite> {
        None
    }

    /// Retire this module from the bus after the watchdog timed it out.
    ///
    /// `salvage` is true for a stalled module whose cache RAM is still
    /// readable; the implementation should hand over its dirty lines and
    /// degrade itself to a non-caching client (the class explicitly supports
    /// those, §3.3). The default reports nothing salvaged and nothing lost —
    /// correct for modules that never own data.
    fn retire(&mut self, _salvage: bool) -> RetireReport {
        RetireReport::default()
    }

    /// Commit the state transition for a snooped transaction.
    fn complete(&mut self, req: &TransactionRequest, obs: &BusObservation<'_>);
}

// A mutable reference to a module is itself a module. This is what lets the
// bus pipeline be generic over `M: BusModule` while the historical
// `&mut [&mut dyn BusModule]` entry point keeps working: the dyn path simply
// instantiates the generic pipeline with `M = &mut dyn BusModule`, and owners
// of concrete component arrays (`&mut [CacheController]`) get a statically
// dispatched instantiation with no per-transaction reference vector.
impl<T: BusModule + ?Sized> BusModule for &mut T {
    fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals {
        (**self).snoop(req)
    }

    fn supply_line(&mut self, addr: LineAddr) -> Option<Box<[u8]>> {
        (**self).supply_line(addr)
    }

    fn prepare_push(&mut self, addr: LineAddr) -> Option<PushWrite> {
        (**self).prepare_push(addr)
    }

    fn retire(&mut self, salvage: bool) -> RetireReport {
        (**self).retire(salvage)
    }

    fn complete(&mut self, req: &TransactionRequest, obs: &BusObservation<'_>) {
        (**self).complete(req, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TransactionKind;

    struct Dummy;
    impl BusModule for Dummy {
        fn snoop(&mut self, _req: &TransactionRequest) -> ResponseSignals {
            ResponseSignals::NONE
        }
        fn complete(&mut self, _req: &TransactionRequest, _obs: &BusObservation<'_>) {}
    }

    #[test]
    fn default_supply_declines_instead_of_panicking() {
        assert!(Dummy.supply_line(0x40).is_none());
    }

    #[test]
    fn default_push_declines_instead_of_panicking() {
        assert!(Dummy.prepare_push(0x40).is_none());
    }

    #[test]
    fn default_retire_reports_nothing() {
        let report = Dummy.retire(true);
        assert!(report.salvaged.is_empty() && report.lost.is_empty());
    }

    #[test]
    fn trait_is_object_safe() {
        let mut d = Dummy;
        let obj: &mut dyn BusModule = &mut d;
        let req = TransactionRequest {
            master: 0,
            addr: 0,
            kind: TransactionKind::Read,
            signals: MasterSignals::CA,
        };
        assert_eq!(obj.snoop(&req), ResponseSignals::NONE);
        obj.complete(
            &req,
            &BusObservation {
                ch_others: false,
                write_data: None,
            },
        );
    }
}
