//! The phased transaction pipeline.
//!
//! The paper's bus protocol is explicitly staged: connection and arbitration,
//! the broadcast address cycle with wired-OR snoop responses (Figures 1–2),
//! the BS abort-and-push restart (§3.2.2), the data transfer, and the
//! completion handshake in which every snooper commits its transition. The
//! engine mirrors that structure literally — [`Futurebus::execute`] walks a
//! [`TxnContext`] through the six [`Phase`]s in order, and every recovery
//! concern from the fault model lives inside exactly one phase:
//!
//! * [`Phase::Arbitrate`] — bus acquisition; the watchdog times out a stalled
//!   snooper *here*, before the address cycle it would otherwise wedge, and
//!   the pipeline re-arbitrates.
//! * [`Phase::AddressBroadcast`] — every live module snoops the address and
//!   drives its response lines.
//! * [`Phase::SnoopResolve`] — the wired-OR settle window combines the
//!   responses; an injected consistency-line glitch is absorbed here at the
//!   cost of one settle delay (§2.2).
//! * [`Phase::AbortBackoff`] — a genuine BS abort runs the push-restart
//!   sequence, phantom storm rounds drain under the capped exponential
//!   [`RetryPolicy`](crate::RetryPolicy); either way the pipeline restarts
//!   from arbitration.
//! * [`Phase::DataTransfer`] — the unique DI owner (or memory) moves the
//!   line; broadcast writes reach memory and are fanned out at completion.
//! * [`Phase::Commit`] — every snooper observes the resolved CH value and
//!   commits its state transition; post-transaction soft errors land, the
//!   stats and trace are sealed.
//!
//! A phase returns [`Step::Restart`] to re-enter arbitration (watchdog
//! recovery, BS abort) and [`Step::Advance`] to proceed; errors abort the
//! pipeline with the bus time burned still accounted by the caller.

use crate::bus::Futurebus;
use crate::fault::{InjectedFault, TxnFaults};
use crate::module::{BusModule, BusObservation};
use crate::timing::{DataSourceLatency, Nanos};
use crate::trace::{TraceKind, TraceRecord};
use crate::transaction::{
    BusError, DataSource, TransactionKind, TransactionOutcome, TransactionRequest,
};
use moesi::{MasterSignals, ResponseSignals};
use std::fmt;

/// The six stages of one bus transaction, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Bus acquisition; watchdog recovery of stalled snoopers.
    Arbitrate,
    /// Broadcast address cycle: every live module snoops.
    AddressBroadcast,
    /// Wired-OR combination and settle of the response lines.
    SnoopResolve,
    /// BS abort-push-restart and storm draining under bounded retry.
    AbortBackoff,
    /// The data phase: intervention, memory, or broadcast distribution.
    DataTransfer,
    /// Completion handshake: snoopers commit; stats and trace are sealed.
    Commit,
}

impl Phase {
    /// The pipeline, in execution order.
    pub const PIPELINE: [Phase; 6] = [
        Phase::Arbitrate,
        Phase::AddressBroadcast,
        Phase::SnoopResolve,
        Phase::AbortBackoff,
        Phase::DataTransfer,
        Phase::Commit,
    ];

    /// The phase after this one (`None` after [`Phase::Commit`]).
    #[must_use]
    pub fn next(self) -> Option<Phase> {
        match self {
            Phase::Arbitrate => Some(Phase::AddressBroadcast),
            Phase::AddressBroadcast => Some(Phase::SnoopResolve),
            Phase::SnoopResolve => Some(Phase::AbortBackoff),
            Phase::AbortBackoff => Some(Phase::DataTransfer),
            Phase::DataTransfer => Some(Phase::Commit),
            Phase::Commit => None,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Arbitrate => "arbitrate",
            Phase::AddressBroadcast => "address-broadcast",
            Phase::SnoopResolve => "snoop-resolve",
            Phase::AbortBackoff => "abort-backoff",
            Phase::DataTransfer => "data-transfer",
            Phase::Commit => "commit",
        })
    }
}

/// What a phase tells the pipeline driver to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// Proceed to the next phase in [`Phase::PIPELINE`] order.
    Advance,
    /// Re-enter arbitration (watchdog recovery, BS abort, storm round).
    Restart,
}

/// Everything one in-flight transaction accumulates while it walks the
/// pipeline: the request, the per-snooper replies and their wired-OR
/// combination, the fault decisions still pending, and the bus time burned
/// so far. Sealed into a [`TransactionOutcome`] after [`Phase::Commit`].
#[derive(Debug)]
pub(crate) struct TxnContext<'r> {
    /// The request being executed.
    pub(crate) req: &'r TransactionRequest,
    /// The system line size, cached off the bus memory.
    pub(crate) line_size: usize,
    /// Bus time consumed so far (sealed into stats at commit, and accounted
    /// on every error path by the pipeline driver).
    pub(crate) duration: Nanos,
    /// `duration` attributed to the phase that charged it, in
    /// [`Phase::PIPELINE`] order — every charge goes through
    /// [`TxnContext::charge`], so the six entries always sum to `duration`.
    pub(crate) phase_ns: [Nanos; 6],
    /// BS abort rounds suffered so far.
    pub(crate) aborts: u32,
    /// The fault plan's decisions for this transaction, consumed phase by
    /// phase (stall in arbitration, glitch at snoop-resolve, storm rounds at
    /// abort-backoff, corruption at commit).
    pub(crate) faults: TxnFaults,
    /// Phantom BS rounds still to inject.
    pub(crate) storm_left: u32,
    /// Whether the storm has already been logged to the fault plan.
    pub(crate) storm_recorded: bool,
    /// Per-snooper response lines from the current address cycle.
    pub(crate) replies: Vec<(usize, ResponseSignals)>,
    /// Wired-OR of `replies` after the settle window.
    pub(crate) combined: ResponseSignals,
    /// The unique DI responder, resolved in the data phase.
    pub(crate) intervener: Option<usize>,
    /// The line contents, for reads.
    pub(crate) data: Option<Box<[u8]>>,
    /// Who served the data phase.
    pub(crate) source: DataSource,
}

impl<'r> TxnContext<'r> {
    /// Starts a context for `req` with the fault decisions already rolled.
    pub(crate) fn new(req: &'r TransactionRequest, line_size: usize, faults: TxnFaults) -> Self {
        TxnContext {
            req,
            line_size,
            duration: 0,
            phase_ns: [0; 6],
            aborts: 0,
            storm_left: faults.storm_rounds,
            storm_recorded: false,
            faults,
            replies: Vec::new(),
            combined: ResponseSignals::NONE,
            intervener: None,
            data: None,
            source: DataSource::None,
        }
    }

    /// Charges `ns` of bus time to `phase`: the single funnel through which
    /// every phase accrues time, keeping the per-phase breakdown summing to
    /// `duration` by construction.
    pub(crate) fn charge(&mut self, phase: Phase, ns: Nanos) {
        self.duration += ns;
        self.phase_ns[phase as usize] += ns;
    }

    /// Seals the context into the outcome handed back to the master.
    pub(crate) fn into_outcome(self) -> TransactionOutcome {
        TransactionOutcome {
            data: self.data,
            responses: self.combined,
            ch_seen: self.combined.ch,
            source: self.source,
            duration: self.duration,
            aborts: self.aborts,
        }
    }
}

impl Futurebus {
    /// Drives `ctx` through the pipeline until [`Phase::Commit`] completes.
    /// The caller accounts `ctx.duration` into the stats on error.
    ///
    /// Generic over the module type: callers holding a concrete component
    /// array (`&mut [CacheController]`) get a statically dispatched pipeline
    /// with no per-transaction reference vector, while the historical dyn
    /// entry point instantiates `M = &mut dyn BusModule` — one code path,
    /// byte-identical behaviour.
    pub(crate) fn run_pipeline<M: BusModule>(
        &mut self,
        ctx: &mut TxnContext<'_>,
        modules: &mut [M],
    ) -> Result<(), BusError> {
        let mut phase = Phase::Arbitrate;
        loop {
            match self.run_phase(phase, ctx, modules)? {
                Step::Restart => phase = Phase::Arbitrate,
                Step::Advance => match phase.next() {
                    Some(next) => phase = next,
                    None => return Ok(()),
                },
            }
        }
    }

    fn run_phase<M: BusModule>(
        &mut self,
        phase: Phase,
        ctx: &mut TxnContext<'_>,
        modules: &mut [M],
    ) -> Result<Step, BusError> {
        match phase {
            Phase::Arbitrate => Ok(self.arbitrate(ctx, modules)),
            Phase::AddressBroadcast => Ok(self.address_broadcast(ctx, modules)),
            Phase::SnoopResolve => Ok(self.snoop_resolve(ctx)),
            Phase::AbortBackoff => self.abort_backoff(ctx, modules),
            Phase::DataTransfer => self.data_transfer(ctx, modules),
            Phase::Commit => Ok(self.commit(ctx, modules)),
        }
    }

    /// Bus acquisition. A stalled snooper never completes the connection
    /// handshake, so the watchdog times it out *here*, retires it from the
    /// snoop set, and the master re-arbitrates.
    fn arbitrate<M: BusModule>(&mut self, ctx: &mut TxnContext<'_>, modules: &mut [M]) -> Step {
        if let Some((victim, salvage)) = ctx.faults.stall.take() {
            let cost = self.retire_module(victim, salvage, ctx, modules);
            ctx.charge(Phase::Arbitrate, cost);
            return Step::Restart;
        }
        // Queueing under the segment's service discipline: the master pays
        // one arbitration slot per contender served ahead of it. The first
        // slot is already in the base transaction cost, so the combinational
        // default charges nothing here and stays byte-identical.
        let slots = self.queue_slots(ctx.req.master, modules.len());
        if slots > 1 {
            ctx.charge(
                Phase::Arbitrate,
                Nanos::from(slots - 1) * self.timing.arbitration_ns,
            );
        }
        Step::Advance
    }

    /// Broadcast address cycle: every other live module snoops the request
    /// and drives its response lines.
    fn address_broadcast<M: BusModule>(
        &mut self,
        ctx: &mut TxnContext<'_>,
        modules: &mut [M],
    ) -> Step {
        ctx.replies.clear();
        ctx.combined = ResponseSignals::NONE;
        for (idx, module) in modules.iter_mut().enumerate() {
            if idx == ctx.req.master || self.retired.contains(&idx) {
                continue;
            }
            let r = module.snoop(ctx.req);
            ctx.combined = ctx.combined.or(r);
            ctx.replies.push((idx, r));
        }
        Step::Advance
    }

    /// Wired-OR settle: an injected consistency-line glitch bounces before
    /// the settle window and the inertial-delay filter absorbs it (§2.2) at
    /// the cost of one settle delay. The *true* values proceed.
    fn snoop_resolve(&mut self, ctx: &mut TxnContext<'_>) -> Step {
        if ctx.faults.glitch {
            ctx.faults.glitch = false;
            if let Some(plan) = self.faults.as_mut() {
                let fault = plan.glitch_spec(ctx.combined);
                let settle = self.timing.broadcast_penalty_ns;
                ctx.charge(Phase::SnoopResolve, settle);
                self.stats.glitches_filtered += 1;
                self.stats.settle_ns += settle;
                let perturbed = match &fault {
                    InjectedFault::Glitch { line, spurious } => {
                        ctx.combined.with_line(*line, *spurious)
                    }
                    _ => ctx.combined,
                };
                self.trace.push(TraceRecord {
                    responses: perturbed,
                    duration: settle,
                    aborts: ctx.aborts,
                    ..TraceRecord::for_txn(ctx, TraceKind::Glitch)
                });
                plan.record(ctx.req.master, ctx.req.addr, fault, settle);
            }
        }
        Step::Advance
    }

    /// BS: abort, push, restart (§3.2.2) — plus injected abort storms,
    /// phantom BS rounds with nobody pushing. Both drain under the capped
    /// exponential retry policy; the aborted address cycle and the backoff
    /// wait are charged to the transaction.
    fn abort_backoff<M: BusModule>(
        &mut self,
        ctx: &mut TxnContext<'_>,
        modules: &mut [M],
    ) -> Result<Step, BusError> {
        let genuine_bs = ctx.combined.bs;
        if !genuine_bs && ctx.storm_left == 0 {
            return Ok(Step::Advance);
        }
        if !genuine_bs {
            if self.retry.aging_rounds > 0 && ctx.aborts >= self.retry.aging_rounds {
                // Priority aging: after enough consecutive losses the
                // master's aged arbitration priority outranks the phantom
                // interferer and the transaction proceeds. Genuine BS is
                // never bypassed — a real owner's push is required.
                ctx.storm_left = 0;
                self.stats.aging_promotions += 1;
                return Ok(Step::Advance);
            }
            if !self.retry.flat_retry {
                // Capped exponential backoff desynchronises the retries
                // from the interference, so the storm drains one round per
                // retry. A flat retry stays phase-locked and drains nothing.
                ctx.storm_left -= 1;
            }
        }
        ctx.aborts += 1;
        self.stats.aborts += 1;
        // The aborted address cycle still occupied the bus.
        let aborted_cycle = self.timing.transaction(0, DataSourceLatency::Master, false);
        ctx.charge(Phase::AbortBackoff, aborted_cycle);
        if ctx.aborts > self.retry.max_retries {
            return Err(BusError::TooManyRetries(ctx.aborts));
        }
        let backoff = self.retry.backoff(ctx.aborts);
        ctx.charge(Phase::AbortBackoff, backoff);
        self.stats.retries += 1;
        self.stats.backoff_ns += backoff;
        if !genuine_bs && !ctx.storm_recorded {
            ctx.storm_recorded = true;
            let cost = self.timing.transaction(0, DataSourceLatency::Master, false);
            if let Some(plan) = self.faults.as_mut() {
                plan.record(
                    ctx.req.master,
                    ctx.req.addr,
                    InjectedFault::AbortStorm {
                        rounds: ctx.faults.storm_rounds,
                    },
                    cost + backoff,
                );
            }
        }
        if genuine_bs {
            self.execute_pushes(ctx, modules)?;
        }
        Ok(Step::Restart)
    }

    /// Runs the push write-back of every BS-asserting snooper: the pusher
    /// held the only owned copy, so its line goes to memory as a write
    /// transaction of its own before the master's retry.
    fn execute_pushes<M: BusModule>(
        &mut self,
        ctx: &mut TxnContext<'_>,
        modules: &mut [M],
    ) -> Result<(), BusError> {
        let line_size = ctx.line_size;
        for reply in 0..ctx.replies.len() {
            let (idx, r) = ctx.replies[reply];
            if !r.bs {
                continue;
            }
            let Some(push) = modules[idx].prepare_push(ctx.req.addr) else {
                return Err(BusError::ProtocolError {
                    module: idx,
                    detail: format!("asserted BS for {:#x} with no push to offer", ctx.req.addr),
                });
            };
            if push.data.len() != line_size {
                return Err(BusError::ProtocolError {
                    module: idx,
                    detail: format!(
                        "pushed {} bytes for {:#x}, not a full {line_size}-byte line",
                        push.data.len(),
                        ctx.req.addr
                    ),
                });
            }
            self.memory.write_line(ctx.req.addr, &push.data);
            // The push is itself a write transaction on the bus. No third
            // party needs to snoop it: the pusher held the only owned copy,
            // and unowned S copies are unaffected by a CA,~IM write-back.
            let push_cost =
                self.timing
                    .transaction(line_size, DataSourceLatency::Master, push.signals.bc);
            ctx.charge(Phase::AbortBackoff, push_cost);
            self.stats.pushes += 1;
            self.stats.transactions += 1;
            self.stats.writes += 1;
            self.stats.memory_writes += 1;
            self.stats.bytes_moved += line_size as u64;
            self.trace.push(TraceRecord {
                master: idx,
                signals: push.signals,
                source: DataSource::Memory,
                duration: push_cost,
                ..TraceRecord::for_txn(ctx, TraceKind::Push)
            });
        }
        Ok(())
    }

    /// The data phase: a read is served by the unique DI owner if one
    /// responded, else by memory (intervention does *not* update memory —
    /// the Futurebus limitation of §4.3–4.5); a non-broadcast write is
    /// captured by the owner or absorbed by memory; a broadcast write
    /// updates memory *and* every SL snooper (§4.2, fanned out at commit).
    fn data_transfer<M: BusModule>(
        &mut self,
        ctx: &mut TxnContext<'_>,
        modules: &mut [M],
    ) -> Result<Step, BusError> {
        let mut di_count = 0usize;
        let mut first_di = None;
        for (idx, r) in &ctx.replies {
            if r.di {
                di_count += 1;
                first_di.get_or_insert(*idx);
            }
        }
        if di_count > 1 {
            // Only the error path pays for materialising the offender list.
            let interveners: Vec<usize> = ctx
                .replies
                .iter()
                .filter(|(_, r)| r.di)
                .map(|(idx, _)| *idx)
                .collect();
            return Err(BusError::MultipleInterveners(interveners));
        }
        ctx.intervener = first_di;

        let line_size = ctx.line_size;
        let broadcast = ctx.req.signals.bc;
        match &ctx.req.kind {
            TransactionKind::Read => {
                let (line, source, latency) = match ctx.intervener {
                    Some(idx) => {
                        // A module that asserts DI must be able to supply
                        // the line; one that declines broke the protocol,
                        // reported rather than crashing the machine.
                        let Some(line) = modules[idx].supply_line(ctx.req.addr) else {
                            return Err(BusError::ProtocolError {
                                module: idx,
                                detail: format!(
                                    "asserted DI for {:#x} but declined to supply the line",
                                    ctx.req.addr
                                ),
                            });
                        };
                        self.stats.interventions += 1;
                        (
                            line,
                            DataSource::Intervention(idx),
                            DataSourceLatency::Intervention,
                        )
                    }
                    None => {
                        self.stats.memory_reads += 1;
                        (
                            self.memory.read_line(ctx.req.addr),
                            DataSource::Memory,
                            DataSourceLatency::Memory,
                        )
                    }
                };
                let cost = self.timing.transaction(line_size, latency, broadcast);
                ctx.charge(Phase::DataTransfer, cost);
                self.stats.reads += 1;
                self.stats.bytes_moved += line_size as u64;
                ctx.data = Some(line);
                ctx.source = source;
            }
            TransactionKind::Write { offset, bytes } => {
                if broadcast {
                    // Broadcast writes always reach memory (§4.2); SL
                    // snoopers are updated in the completion phase.
                    self.memory.write_bytes(ctx.req.addr, *offset, bytes);
                    self.stats.memory_writes += 1;
                } else if ctx.intervener.is_some() {
                    // The owner captures the write; memory is preempted.
                    self.stats.captures += 1;
                } else {
                    self.memory.write_bytes(ctx.req.addr, *offset, bytes);
                    self.stats.memory_writes += 1;
                }
                let cost =
                    self.timing
                        .transaction(bytes.len(), DataSourceLatency::Master, broadcast);
                ctx.charge(Phase::DataTransfer, cost);
                self.stats.writes += 1;
                self.stats.bytes_moved += bytes.len() as u64;
                ctx.data = None;
                ctx.source = match ctx.intervener {
                    Some(idx) if !broadcast => DataSource::Intervention(idx),
                    _ => DataSource::Memory,
                };
            }
            TransactionKind::AddressOnly => {
                let cost = self.timing.transaction(0, DataSourceLatency::Master, false);
                ctx.charge(Phase::DataTransfer, cost);
                self.stats.address_only += 1;
                ctx.data = None;
                ctx.source = DataSource::None;
            }
        }
        if broadcast {
            self.stats.broadcasts += 1;
        }
        Ok(Step::Advance)
    }

    /// Completion handshake: every snooper commits its state transition with
    /// the resolved CH observation (and the write payload, when SL- or
    /// DI-connected). Post-transaction soft errors land here, then the stats
    /// and trace are sealed.
    fn commit<M: BusModule>(&mut self, ctx: &mut TxnContext<'_>, modules: &mut [M]) -> Step {
        let payload: Option<(usize, &[u8])> = match &ctx.req.kind {
            TransactionKind::Write { offset, bytes } => Some((*offset, bytes.as_slice())),
            _ => None,
        };
        let broadcast = ctx.req.signals.bc;
        // "CH asserted by someone else" per snooper, without rescanning the
        // reply list for each: others hold CH iff the total count exceeds
        // this snooper's own contribution.
        let ch_count = ctx.replies.iter().filter(|(_, r)| r.ch).count();
        for (idx, r) in &ctx.replies {
            let ch_others = ch_count > usize::from(r.ch);
            let delivers = payload.is_some() && (r.sl || (r.di && !broadcast));
            if r.sl && payload.is_some() {
                self.stats.sl_updates += 1;
            }
            modules[*idx].complete(
                ctx.req,
                &BusObservation {
                    ch_others,
                    write_data: if delivers { payload } else { None },
                },
            );
        }

        // Soft error: corrupt a resident memory line once the transaction is
        // over (never the in-flight data phase — the bus got the electrical
        // transfer right; the cell rots afterwards).
        if ctx.faults.corrupt {
            let resident = self.memory.line_addrs();
            if let Some(plan) = self.faults.as_mut() {
                let fault = plan.corrupt_spec(&resident, ctx.req.addr, ctx.line_size);
                if let InjectedFault::CorruptMemory { addr, offset, mask } = fault {
                    let mut line = self.memory.peek_line(addr);
                    line[offset] ^= mask;
                    self.memory.write_line(addr, &line);
                    self.stats.corruptions += 1;
                    self.trace.push(TraceRecord {
                        addr,
                        signals: MasterSignals::NONE,
                        source: DataSource::Memory,
                        ..TraceRecord::for_txn(ctx, TraceKind::Corrupt)
                    });
                    plan.record(
                        ctx.req.master,
                        ctx.req.addr,
                        InjectedFault::CorruptMemory { addr, offset, mask },
                        0,
                    );
                }
            }
        }

        let kind = match &ctx.req.kind {
            TransactionKind::Read => TraceKind::Read,
            TransactionKind::Write { .. } => TraceKind::Write,
            TransactionKind::AddressOnly => TraceKind::AddressOnly,
        };
        self.stats.transactions += 1;
        self.seal_observation(ctx, Some(kind));
        self.trace.push(TraceRecord {
            responses: ctx.combined,
            source: ctx.source,
            duration: ctx.duration,
            aborts: ctx.aborts,
            ..TraceRecord::for_txn(ctx, kind)
        });
        Step::Advance
    }

    /// Times out and retires a non-responding snooper: salvages its dirty
    /// lines to memory if its cache RAM is still readable, or — when the
    /// board is dead — invalidates every surviving copy of the lines whose
    /// only up-to-date data died with it, so no stale data outlives the
    /// owner. Returns the bus time consumed.
    fn retire_module<M: BusModule>(
        &mut self,
        victim: usize,
        salvage: bool,
        ctx: &TxnContext<'_>,
        modules: &mut [M],
    ) -> Nanos {
        let line_size = ctx.line_size;
        let mut cost = self.timing.watchdog_timeout_ns;
        let report = modules[victim].retire(salvage);

        let mut salvaged_addrs = Vec::with_capacity(report.salvaged.len());
        for (addr, data) in &report.salvaged {
            self.memory.write_line(*addr, data);
            cost += self
                .timing
                .transaction(line_size, DataSourceLatency::Master, false);
            self.stats.transactions += 1;
            self.stats.writes += 1;
            self.stats.memory_writes += 1;
            self.stats.bytes_moved += line_size as u64;
            self.stats.salvaged_lines += 1;
            salvaged_addrs.push(*addr);
        }

        // The dead board's dirty lines are gone; any surviving S copies of
        // them now disagree with the (stale) memory image, so the recovery
        // invalidates them bus-wide. The data loss is *reported* — it shows
        // up in the stats, the fault log and the trace, never silently.
        for addr in &report.lost {
            let inval = TransactionRequest::address_only(victim, *addr, MasterSignals::CA_IM);
            for (idx, module) in modules.iter_mut().enumerate() {
                if idx == victim || self.retired.contains(&idx) {
                    continue;
                }
                let _ = module.snoop(&inval);
            }
            for (idx, module) in modules.iter_mut().enumerate() {
                if idx == victim || self.retired.contains(&idx) {
                    continue;
                }
                module.complete(
                    &inval,
                    &BusObservation {
                        ch_others: false,
                        write_data: None,
                    },
                );
            }
            cost += self.timing.transaction(0, DataSourceLatency::Master, false);
            self.stats.transactions += 1;
            self.stats.address_only += 1;
            self.stats.lost_lines += 1;
        }

        self.retired.insert(victim);
        self.stats.watchdog_retirements += 1;
        self.trace.push(TraceRecord {
            master: victim,
            duration: cost,
            ..TraceRecord::for_txn(ctx, TraceKind::Retire)
        });
        if let Some(plan) = self.faults.as_mut() {
            // On a parent bus the snoopers are bridges, and the plan says so;
            // the record then names the fault for what it is — a whole
            // cluster's bus adapter dying, not one cache board.
            let fault = match (plan.config().bridges, salvage) {
                (false, true) => InjectedFault::Stall {
                    module: victim,
                    salvaged: salvaged_addrs,
                },
                (false, false) => InjectedFault::Kill {
                    module: victim,
                    lost: report.lost.clone(),
                },
                (true, true) => InjectedFault::BridgeStall {
                    bridge: victim,
                    salvaged: salvaged_addrs,
                },
                (true, false) => InjectedFault::BridgeKill {
                    bridge: victim,
                    lost: report.lost.clone(),
                },
            };
            plan.record(ctx.req.master, ctx.req.addr, fault, cost);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_order_is_the_paper_handshake() {
        let mut walked = vec![Phase::PIPELINE[0]];
        while let Some(next) = walked.last().unwrap().next() {
            walked.push(next);
        }
        assert_eq!(walked, Phase::PIPELINE);
        assert_eq!(Phase::Commit.next(), None);
    }

    #[test]
    fn phases_render_for_diagnostics() {
        let names: Vec<String> = Phase::PIPELINE.iter().map(Phase::to_string).collect();
        assert_eq!(
            names,
            [
                "arbitrate",
                "address-broadcast",
                "snoop-resolve",
                "abort-backoff",
                "data-transfer",
                "commit"
            ]
        );
    }
}
