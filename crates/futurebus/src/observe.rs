//! Per-phase latency observability: fixed-bucket histograms and Chrome
//! trace-event export.
//!
//! The paper's §5.2 cost discussion (via Archibald & Baer) argues that the
//! preferred action in each Table 1/2 cell is sensitive to the bus, memory
//! and cache cost ratios. An aggregate `busy_ns` cannot show those ratios;
//! this module attributes every nanosecond the engine charges to the
//! [`Phase`] that burned it, so the 25 ns broadcast penalty (§5.2), the
//! §2.2 settle window and the §3.2.2 abort-backoff tax are each visible as
//! their own distribution.
//!
//! Everything here is zero-dependency and deterministic: histograms use
//! fixed power-of-two buckets with integer percentile extraction (so merged
//! shard results are byte-identical for any worker count), and the Chrome
//! trace-event JSON is assembled with the workspace's one shared
//! hand-rolled writer, [`moesi::json`].

use crate::timing::Nanos;
use crate::trace::TraceKind;
use crate::transaction::LineAddr;
use crate::Phase;
use moesi::json::JsonObject;
use std::collections::BTreeMap;

/// Number of power-of-two latency buckets per histogram. Bucket 0 holds
/// exact zeros; bucket `b >= 1` holds samples in `[2^(b-1), 2^b)`; the last
/// bucket absorbs everything at or above `2^30` ns (~1 s of bus time, far
/// beyond any single transaction).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket latency histogram over nanosecond samples.
///
/// Buckets are powers of two, so recording is a `leading_zeros` and merging
/// is bucket-wise addition — order-independent, which is what keeps sharded
/// campaign output identical for any `--jobs` value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    samples: u64,
    sum_ns: Nanos,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket(ns: Nanos) -> usize {
        if ns == 0 {
            0
        } else {
            ((u64::BITS - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `b` (0 for the zero bucket).
    #[must_use]
    pub fn bucket_bound(b: usize) -> Nanos {
        if b == 0 {
            0
        } else {
            (1u64 << b.min(HISTOGRAM_BUCKETS - 1)) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, ns: Nanos) {
        self.counts[Self::bucket(ns)] += 1;
        self.samples += 1;
        self.sum_ns += ns;
    }

    /// Samples recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sum of all recorded samples in nanoseconds.
    #[must_use]
    pub fn sum_ns(&self) -> Nanos {
        self.sum_ns
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Adds every sample of `other` into `self` (bucket-wise, commutative).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        self.samples += other.samples;
        self.sum_ns += other.sum_ns;
    }

    /// The nearest-rank `pct`-th percentile, reported as the inclusive
    /// upper bound of the bucket holding that rank. Pure integer math, so
    /// the result is identical however the histogram was sharded and merged.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, pct: u64) -> Nanos {
        if self.samples == 0 {
            return 0;
        }
        let rank = (self.samples * pct).div_ceil(100).max(1);
        let mut seen = 0;
        for (b, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_bound(b);
            }
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// The median bucket bound.
    #[must_use]
    pub fn p50(&self) -> Nanos {
        self.percentile(50)
    }

    /// The 99th-percentile bucket bound.
    #[must_use]
    pub fn p99(&self) -> Nanos {
        self.percentile(99)
    }
}

/// One master's progress ledger inside the [`LivenessMonitor`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MasterProgress {
    /// Transactions this master has committed.
    pub commits: u64,
    /// Transactions this master lost to the retry cutoff
    /// ([`BusError::TooManyRetries`](crate::BusError::TooManyRetries)).
    pub failures: u64,
    /// Retry-cutoff failures since the last commit. Reset on commit and on
    /// each fired violation, so repeated starvation keeps firing.
    pub consecutive_failures: u32,
    /// Deadline violations charged to this master.
    pub violations: u64,
}

/// A deadline-based livelock/starvation detector over the Abort/Backoff
/// phase.
///
/// The paper's §3.2.2 abort-push-restart makes forward progress a *protocol
/// obligation*, not a given: a master that keeps losing to BS aborts commits
/// nothing, and with a naive flat retry discipline it can lose forever. The
/// monitor keeps one [`MasterProgress`] ledger per master; a commit proves
/// progress and clears the master's consecutive-failure count, while each
/// retry-cutoff failure raises it. When the count reaches the configured
/// deadline, a **liveness violation** fires — the watchdog's verdict that
/// the master is starved, surfaced in
/// [`BusStats::liveness_violations`](crate::BusStats) and in the fault
/// campaign's oracle. Deliberately deadline-based rather than
/// rate-based: deterministic, seed-stable, and mergeable.
#[derive(Clone, Debug)]
pub struct LivenessMonitor {
    deadline: u32,
    masters: BTreeMap<usize, MasterProgress>,
    violations: u64,
}

impl LivenessMonitor {
    /// A monitor that declares starvation after `deadline` consecutive
    /// retry-cutoff failures by one master with no intervening commit.
    ///
    /// # Panics
    ///
    /// Panics when `deadline` is zero (a zero deadline would fire before any
    /// failure was even possible).
    #[must_use]
    pub fn new(deadline: u32) -> Self {
        assert!(deadline > 0, "liveness deadline must be at least 1");
        LivenessMonitor {
            deadline,
            masters: BTreeMap::new(),
            violations: 0,
        }
    }

    /// The configured deadline (consecutive failures before a violation).
    #[must_use]
    pub fn deadline(&self) -> u32 {
        self.deadline
    }

    /// Records one committed transaction: progress, so the master's
    /// consecutive-failure count resets.
    pub fn record_commit(&mut self, master: usize) {
        let p = self.masters.entry(master).or_default();
        p.commits += 1;
        p.consecutive_failures = 0;
    }

    /// Records one retry-cutoff failure. Returns `true` when this failure
    /// reached the deadline and fired a violation (the count then resets so
    /// continued starvation keeps firing every `deadline` failures).
    pub fn record_failure(&mut self, master: usize) -> bool {
        let deadline = self.deadline;
        let p = self.masters.entry(master).or_default();
        p.failures += 1;
        p.consecutive_failures += 1;
        if p.consecutive_failures >= deadline {
            p.consecutive_failures = 0;
            p.violations += 1;
            self.violations += 1;
            true
        } else {
            false
        }
    }

    /// Total violations fired across all masters.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The progress ledger for `master` (zeroed if it never transacted).
    #[must_use]
    pub fn progress(&self, master: usize) -> MasterProgress {
        self.masters.get(&master).copied().unwrap_or_default()
    }

    /// Masters with at least one violation, ascending.
    #[must_use]
    pub fn starved(&self) -> Vec<usize> {
        self.masters
            .iter()
            .filter(|(_, p)| p.violations > 0)
            .map(|(&m, _)| m)
            .collect()
    }
}

/// One latency histogram per pipeline phase: every completed (or errored)
/// transaction contributes one sample per phase — the nanoseconds that
/// phase charged it, zero included, so each phase's sample count equals the
/// transaction count and phase distributions are directly comparable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseHistograms {
    phases: [LatencyHistogram; Phase::PIPELINE.len()],
}

impl PhaseHistograms {
    /// Empty histograms for all six phases.
    #[must_use]
    pub fn new() -> Self {
        PhaseHistograms::default()
    }

    /// Records one transaction's per-phase breakdown (one sample per phase).
    pub fn record_txn(&mut self, phase_ns: &[Nanos; Phase::PIPELINE.len()]) {
        for (hist, ns) in self.phases.iter_mut().zip(phase_ns) {
            hist.record(*ns);
        }
    }

    /// The histogram for `phase`.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &LatencyHistogram {
        &self.phases[phase as usize]
    }

    /// Merges another set in (bucket-wise, commutative).
    pub fn merge(&mut self, other: &PhaseHistograms) {
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
    }

    /// Per-phase medians, in [`Phase::PIPELINE`] order.
    #[must_use]
    pub fn p50s(&self) -> [Nanos; Phase::PIPELINE.len()] {
        self.phases.map(|h| h.p50())
    }

    /// Per-phase 99th percentiles, in [`Phase::PIPELINE`] order.
    #[must_use]
    pub fn p99s(&self) -> [Nanos; Phase::PIPELINE.len()] {
        self.phases.map(|h| h.p99())
    }

    /// Per-phase nanosecond totals, in [`Phase::PIPELINE`] order.
    #[must_use]
    pub fn sums(&self) -> [Nanos; Phase::PIPELINE.len()] {
        self.phases.map(|h| h.sum_ns())
    }
}

/// One committed transaction's per-phase time breakdown, stamped with its
/// position on the bus-occupancy timeline (`start_ns` = the bus's `busy_ns`
/// when the transaction sealed, minus its own duration). The raw material
/// for the Chrome trace export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnPhases {
    /// The mastering module index.
    pub master: usize,
    /// The line address.
    pub addr: LineAddr,
    /// What the transaction was (read/write/invalidate).
    pub kind: TraceKind,
    /// Bus-occupancy timeline position at which the transaction began.
    pub start_ns: Nanos,
    /// Nanoseconds charged by each phase, in [`Phase::PIPELINE`] order.
    pub phase_ns: [Nanos; Phase::PIPELINE.len()],
}

/// A hand-rolled Chrome trace-event JSON writer (the `chrome://tracing` /
/// Perfetto format), in the same no-dependency style as the benchmark
/// sweep's JSON. Timestamps and durations are in nanoseconds;
/// `displayTimeUnit` says so.
#[derive(Debug)]
pub struct ChromeTraceWriter {
    out: String,
    events: u64,
}

impl ChromeTraceWriter {
    /// Starts a trace document.
    #[must_use]
    pub fn new() -> Self {
        ChromeTraceWriter {
            out: String::from("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n"),
            events: 0,
        }
    }

    fn lead_in(&mut self) {
        if self.events > 0 {
            self.out.push_str(",\n");
        }
        self.events += 1;
    }

    /// Appends a complete-duration event (`"ph": "X"`).
    pub fn duration(&mut self, name: &str, cat: &str, tid: usize, ts: Nanos, dur: Nanos) {
        self.lead_in();
        let event = JsonObject::new()
            .string("name", name)
            .string("cat", cat)
            .string("ph", "X")
            .number("pid", 0)
            .number("tid", tid)
            .number("ts", ts)
            .number("dur", dur)
            .finish();
        self.out.push_str("  ");
        self.out.push_str(&event);
    }

    /// Appends a global instant event (`"ph": "i"`).
    pub fn instant(&mut self, name: &str, cat: &str, tid: usize, ts: Nanos) {
        self.lead_in();
        let event = JsonObject::new()
            .string("name", name)
            .string("cat", cat)
            .string("ph", "i")
            .string("s", "g")
            .number("pid", 0)
            .number("tid", tid)
            .number("ts", ts)
            .finish();
        self.out.push_str("  ");
        self.out.push_str(&event);
    }

    /// Events appended so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.events
    }

    /// True when no events have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Closes the document and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push_str("\n]\n}\n");
        self.out
    }
}

impl Default for ChromeTraceWriter {
    fn default() -> Self {
        ChromeTraceWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(4), 3);
        assert_eq!(LatencyHistogram::bucket(1023), 10);
        assert_eq!(LatencyHistogram::bucket(1024), 11);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_bound(0), 0);
        assert_eq!(LatencyHistogram::bucket_bound(10), 1023);
    }

    #[test]
    fn percentiles_are_nearest_rank_bucket_bounds() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0, "empty histogram reports zero");
        for ns in [100, 100, 100, 100, 100, 100, 100, 100, 100, 5000] {
            h.record(ns);
        }
        assert_eq!(h.samples(), 10);
        assert_eq!(h.sum_ns(), 5900);
        // 100 lands in bucket 7 ([64, 128)) whose bound is 127; 5000 in
        // bucket 13 ([4096, 8192)) whose bound is 8191.
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p99(), 8191);
        assert_eq!(h.percentile(90), 127);
        assert_eq!(h.percentile(91), 8191);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let samples_a = [0u64, 50, 450, 450, 1200];
        let samples_b = [25u64, 450, 10_000];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for ns in samples_a {
            a.record(ns);
            whole.record(ns);
        }
        for ns in samples_b {
            b.record(ns);
            whole.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merging shards equals recording sequentially");
    }

    #[test]
    fn phase_histograms_record_one_sample_per_phase() {
        let mut p = PhaseHistograms::new();
        p.record_txn(&[0, 0, 25, 150, 450, 0]);
        p.record_txn(&[10_000, 0, 0, 0, 450, 0]);
        for phase in Phase::PIPELINE {
            assert_eq!(p.phase(phase).samples(), 2, "{phase}");
        }
        assert_eq!(p.sums(), [10_000, 0, 25, 150, 900, 0]);
        assert_eq!(p.phase(Phase::DataTransfer).p50(), 511);
    }

    #[test]
    fn chrome_writer_emits_wellformed_json() {
        let mut w = ChromeTraceWriter::new();
        assert!(w.is_empty());
        w.duration("arbitrate", "phase", 1, 0, 50);
        w.duration("data-transfer", "phase", 1, 50, 450);
        w.instant("GLTCH", "fault", 2, 500);
        assert_eq!(w.len(), 3);
        let text = w.finish();
        assert!(text.starts_with("{\n"), "{text}");
        assert!(text.ends_with("\n]\n}\n"), "{text}");
        assert_eq!(text.matches("\"ph\": \"X\"").count(), 2);
        assert_eq!(text.matches("\"ph\": \"i\"").count(), 1);
        assert!(!text.contains(",\n]"), "no trailing comma: {text}");
        assert!(text.contains("\"dur\": 450"), "{text}");
        assert!(text.contains("\"displayTimeUnit\": \"ns\""), "{text}");
    }

    #[test]
    fn empty_chrome_trace_is_still_a_document() {
        let text = ChromeTraceWriter::new().finish();
        assert!(text.contains("\"traceEvents\": [\n\n]"), "{text}");
    }

    #[test]
    fn liveness_violations_fire_at_the_deadline_and_commits_reset_it() {
        let mut mon = LivenessMonitor::new(3);
        assert!(!mon.record_failure(1));
        assert!(!mon.record_failure(1));
        // A commit is progress: the streak resets.
        mon.record_commit(1);
        assert!(!mon.record_failure(1));
        assert!(!mon.record_failure(1));
        assert!(mon.record_failure(1), "third consecutive failure fires");
        assert_eq!(mon.violations(), 1);
        assert_eq!(mon.starved(), vec![1]);
        let p = mon.progress(1);
        assert_eq!(p.commits, 1);
        assert_eq!(p.failures, 5);
        assert_eq!(p.violations, 1);
        assert_eq!(p.consecutive_failures, 0, "reset after firing");
        // Continued starvation keeps firing every `deadline` failures.
        assert!(!mon.record_failure(1));
        assert!(!mon.record_failure(1));
        assert!(mon.record_failure(1));
        assert_eq!(mon.violations(), 2);
    }

    #[test]
    fn liveness_ledgers_are_per_master() {
        let mut mon = LivenessMonitor::new(2);
        assert!(!mon.record_failure(0));
        assert!(!mon.record_failure(1));
        assert!(mon.record_failure(1));
        assert_eq!(mon.starved(), vec![1], "master 0 is one short");
        assert_eq!(mon.progress(7), MasterProgress::default(), "never seen");
    }
}
