//! Bus transaction tracing: a bounded log of everything that crossed the bus.
//!
//! Logic analysers were the 1986 way of debugging a backplane; this is ours.
//! When enabled, the bus appends one [`TraceRecord`] per completed
//! transaction (and per push), and the log can be rendered as a transcript.

use crate::timing::Nanos;
use crate::transaction::{DataSource, LineAddr};
use moesi::{MasterSignals, ResponseSignals};
use std::collections::VecDeque;
use std::fmt;

/// What kind of transaction a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A read transaction (line fill / read-for-modify).
    Read,
    /// A write transaction (write-through, broadcast update, write-back).
    Write,
    /// An address-only invalidate.
    AddressOnly,
    /// A push write executed on behalf of a BS-aborting snooper.
    Push,
    /// An injected consistency-line glitch, absorbed by the settle window.
    Glitch,
    /// The watchdog retired a non-responding snooper (the `master` field
    /// holds the retired module).
    Retire,
    /// An injected soft error corrupted a memory line.
    Corrupt,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Read => "READ",
            TraceKind::Write => "WRITE",
            TraceKind::AddressOnly => "INVAL",
            TraceKind::Push => "PUSH",
            TraceKind::Glitch => "GLTCH",
            TraceKind::Retire => "RETIR",
            TraceKind::Corrupt => "CORPT",
        };
        f.write_str(s)
    }
}

/// One logged bus transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Sequence number (monotonically increasing, survives log eviction).
    pub seq: u64,
    /// The master module index (the pushing snooper for [`TraceKind::Push`]).
    pub master: usize,
    /// The line address.
    pub addr: LineAddr,
    /// What happened.
    pub kind: TraceKind,
    /// The master signals driven.
    pub signals: MasterSignals,
    /// Wired-OR of the snoopers' response lines.
    pub responses: ResponseSignals,
    /// Who served the data phase.
    pub source: DataSource,
    /// Bus time consumed.
    pub duration: Nanos,
    /// BS abort rounds the transaction suffered before completing.
    pub aborts: u32,
}

impl TraceRecord {
    /// A record template for the transaction `ctx` carries: master, address
    /// and signals come from the request, everything else defaults (the
    /// sequence number is assigned by [`BusTrace::push`]). Push sites
    /// override the fields that differ with struct-update syntax.
    pub(crate) fn for_txn(ctx: &crate::phases::TxnContext<'_>, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            seq: 0,
            master: ctx.req.master,
            addr: ctx.req.addr,
            kind,
            signals: ctx.req.signals,
            responses: ResponseSignals::NONE,
            source: DataSource::None,
            duration: 0,
            aborts: 0,
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<5} m{} {:<5} @{:#08x} [{}] -> [{}] {}{} {} ns",
            self.seq,
            self.master,
            self.kind,
            self.addr,
            self.signals,
            self.responses,
            match self.source {
                DataSource::Memory => "mem".to_string(),
                DataSource::Intervention(i) => format!("cache{i}"),
                DataSource::None => "-".to_string(),
            },
            if self.aborts > 0 {
                format!(" ({} aborts)", self.aborts)
            } else {
                String::new()
            },
            self.duration,
        )
    }
}

/// A bounded transaction log.
#[derive(Clone, Debug, Default)]
pub struct BusTrace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
}

impl BusTrace {
    /// Creates a log keeping the most recent `capacity` records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BusTrace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
        }
    }

    /// Appends a record (assigning its sequence number), evicting the oldest
    /// if full.
    pub fn push(&mut self, mut record: TraceRecord) {
        if self.capacity == 0 {
            return;
        }
        record.seq = self.next_seq;
        self.next_seq += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }

    /// True when the log retains records (non-zero capacity). Hot paths use
    /// this to skip building records that [`BusTrace::push`] would drop.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.records.iter()
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever logged (including evicted ones).
    #[must_use]
    pub fn total_logged(&self) -> u64 {
        self.next_seq
    }

    /// Renders the retained records, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// Clears the log (sequence numbering continues).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(addr: u64) -> TraceRecord {
        TraceRecord {
            seq: 0,
            master: 1,
            addr,
            kind: TraceKind::Read,
            signals: MasterSignals::CA,
            responses: ResponseSignals::CH,
            source: DataSource::Memory,
            duration: 450,
            aborts: 0,
        }
    }

    #[test]
    fn sequence_numbers_are_assigned_and_monotonic() {
        let mut t = BusTrace::new(8);
        t.push(record(0x40));
        t.push(record(0x80));
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(t.total_logged(), 2);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = BusTrace::new(2);
        for i in 0..5 {
            t.push(record(i * 0x40));
        }
        assert_eq!(t.len(), 2);
        let addrs: Vec<u64> = t.records().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![0xC0, 0x100]);
        assert_eq!(t.total_logged(), 5);
    }

    #[test]
    fn zero_capacity_logs_nothing() {
        let mut t = BusTrace::new(0);
        t.push(record(0));
        assert!(t.is_empty());
        assert_eq!(t.total_logged(), 0);
    }

    #[test]
    fn render_is_one_line_per_record() {
        let mut t = BusTrace::new(4);
        t.push(record(0x40));
        let mut aborted = record(0x80);
        aborted.kind = TraceKind::Push;
        aborted.aborts = 1;
        t.push(aborted);
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("READ"));
        assert!(text.contains("PUSH"));
        assert!(text.contains("(1 aborts)"));
        assert!(text.contains("CA"));
    }

    #[test]
    fn clear_keeps_numbering() {
        let mut t = BusTrace::new(4);
        t.push(record(0));
        t.clear();
        assert!(t.is_empty());
        t.push(record(0));
        assert_eq!(t.records().next().unwrap().seq, 1);
    }
}
