//! The bus timing model, in nanoseconds.
//!
//! §5.2: "the preferred protocol is sensitive to the implementation of the
//! bus, the memory and the caches. Changes in their relative performance can
//! change the cost of various bus operations ... and change the preferred
//! actions." All costs are therefore configuration, not constants, and the
//! timing-sweep benchmark varies them.
//!
//! The one number the paper fixes is the broadcast handshake penalty: "The
//! exacted penalty on the Futurebus is that broadcast handshaking is 25
//! nanoseconds slower than single slave transactions" (§2.2) — the price of
//! filtering wired-OR glitches with an asymmetrical inertial delay line.

use std::fmt;

/// A duration in nanoseconds.
pub type Nanos = u64;

/// The paper's broadcast handshake penalty (§2.2).
pub const BROADCAST_PENALTY_NS: Nanos = 25;

/// Cost parameters for one Futurebus configuration.
///
/// # Examples
///
/// ```
/// use futurebus::TimingConfig;
///
/// let t = TimingConfig::default();
/// // A broadcast beat costs the wired-OR filter delay on top of a plain beat.
/// assert_eq!(t.data_beat(true) - t.data_beat(false), 25);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingConfig {
    /// Bus arbitration overhead per transaction.
    pub arbitration_ns: Nanos,
    /// The broadcast address cycle (always broadcast on the Futurebus, §2.1),
    /// including its handshake.
    pub address_cycle_ns: Nanos,
    /// Extra delay per broadcast (multi-party) data beat, from the wired-OR
    /// glitch filter. 25 ns on the real bus.
    pub broadcast_penalty_ns: Nanos,
    /// One data beat (one bus word) in a single-slave transfer.
    pub data_beat_ns: Nanos,
    /// Main memory access latency (first word).
    pub memory_latency_ns: Nanos,
    /// An intervening cache's access latency (first word); usually well below
    /// memory latency — that asymmetry is what makes intervention attractive.
    pub intervention_latency_ns: Nanos,
    /// Bytes moved per data beat (bus width). 4 for the 32-bit Futurebus.
    pub bus_word_bytes: usize,
    /// How long the bus waits for a snooper's response before the watchdog
    /// declares it dead and retires it from the snoop set. Far above any
    /// legitimate handshake time: a healthy module answers within the
    /// address-cycle handshake, so only a genuinely hung board ever pays this.
    pub watchdog_timeout_ns: Nanos,
}

impl Default for TimingConfig {
    /// Plausible mid-1980s numbers: 100 ns bus cycle, 300 ns DRAM,
    /// 100 ns SRAM cache intervention.
    fn default() -> Self {
        TimingConfig {
            arbitration_ns: 50,
            address_cycle_ns: 100,
            broadcast_penalty_ns: BROADCAST_PENALTY_NS,
            data_beat_ns: 100,
            memory_latency_ns: 300,
            intervention_latency_ns: 100,
            bus_word_bytes: 4,
            watchdog_timeout_ns: 10_000,
        }
    }
}

impl TimingConfig {
    /// Cost of one data beat, broadcast or single-slave.
    #[must_use]
    pub fn data_beat(&self, broadcast: bool) -> Nanos {
        if broadcast {
            self.data_beat_ns + self.broadcast_penalty_ns
        } else {
            self.data_beat_ns
        }
    }

    /// Number of beats needed to move `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bus_word_bytes` is zero.
    #[must_use]
    pub fn beats_for(&self, bytes: usize) -> u64 {
        assert!(self.bus_word_bytes > 0, "bus width must be non-zero");
        (bytes.div_ceil(self.bus_word_bytes)) as u64
    }

    /// Cost of a block transfer of `bytes` bytes from the given source,
    /// excluding arbitration and the address cycle.
    #[must_use]
    pub fn transfer(&self, bytes: usize, source: DataSourceLatency, broadcast: bool) -> Nanos {
        let latency = match source {
            DataSourceLatency::Memory => self.memory_latency_ns,
            DataSourceLatency::Intervention => self.intervention_latency_ns,
            DataSourceLatency::Master => 0,
        };
        latency + self.beats_for(bytes) * self.data_beat(broadcast)
    }

    /// Cost of a full transaction: arbitration, address cycle, and (for
    /// data-bearing transactions) the transfer.
    #[must_use]
    pub fn transaction(
        &self,
        payload_bytes: usize,
        source: DataSourceLatency,
        broadcast: bool,
    ) -> Nanos {
        let data = if payload_bytes == 0 {
            0
        } else {
            self.transfer(payload_bytes, source, broadcast)
        };
        self.arbitration_ns + self.address_cycle_ns + data
    }
}

/// Who pays the first-word latency of a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataSourceLatency {
    /// Main memory responds.
    Memory,
    /// An intervening (owner) cache responds.
    Intervention,
    /// The transaction master drives the data (writes).
    Master,
}

impl fmt::Display for DataSourceLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataSourceLatency::Memory => "memory",
            DataSourceLatency::Intervention => "intervention",
            DataSourceLatency::Master => "master",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_beats_cost_the_paper_penalty() {
        let t = TimingConfig::default();
        assert_eq!(t.data_beat(false), 100);
        assert_eq!(t.data_beat(true), 125);
        assert_eq!(t.broadcast_penalty_ns, 25);
    }

    #[test]
    fn beats_round_up_to_whole_bus_words() {
        let t = TimingConfig::default();
        assert_eq!(t.beats_for(4), 1);
        assert_eq!(t.beats_for(5), 2);
        assert_eq!(t.beats_for(32), 8);
        assert_eq!(t.beats_for(0), 0);
    }

    #[test]
    fn intervention_is_cheaper_than_memory_by_default() {
        let t = TimingConfig::default();
        let from_mem = t.transfer(32, DataSourceLatency::Memory, false);
        let from_cache = t.transfer(32, DataSourceLatency::Intervention, false);
        assert!(from_cache < from_mem);
        assert_eq!(from_mem - from_cache, 200);
    }

    #[test]
    fn address_only_transactions_move_no_data() {
        let t = TimingConfig::default();
        let cost = t.transaction(0, DataSourceLatency::Master, false);
        assert_eq!(cost, t.arbitration_ns + t.address_cycle_ns);
    }

    #[test]
    fn full_transaction_sums_phases() {
        let t = TimingConfig::default();
        let cost = t.transaction(16, DataSourceLatency::Memory, true);
        assert_eq!(
            cost,
            50 + 100 + 300 + 4 * 125,
            "arb + addr + mem latency + 4 broadcast beats"
        );
    }

    #[test]
    #[should_panic(expected = "bus width")]
    fn zero_width_bus_is_rejected() {
        let t = TimingConfig {
            bus_word_bytes: 0,
            ..TimingConfig::default()
        };
        let _ = t.beats_for(8);
    }
}
