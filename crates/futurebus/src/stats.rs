//! Bus activity counters.

use crate::timing::Nanos;
use std::fmt;
use std::ops::AddAssign;

/// Cumulative counts of everything the bus did.
///
/// All fields are public passive data: the struct exists to be read, summed
/// and printed by benchmarks.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Completed transactions (not counting aborted passes).
    pub transactions: u64,
    /// Read transactions.
    pub reads: u64,
    /// Write transactions (including pushes).
    pub writes: u64,
    /// Address-only (invalidate) transactions.
    pub address_only: u64,
    /// Transactions with BC asserted.
    pub broadcasts: u64,
    /// Reads served by an intervening cache instead of memory.
    pub interventions: u64,
    /// Reads served by main memory.
    pub memory_reads: u64,
    /// Writes absorbed by main memory (full or partial).
    pub memory_writes: u64,
    /// Writes captured by an intervening owner (memory preempted).
    pub captures: u64,
    /// Third-party SL connections delivered (snooper updates).
    pub sl_updates: u64,
    /// BS aborts observed.
    pub aborts: u64,
    /// Push write-backs executed on behalf of aborting modules.
    pub pushes: u64,
    /// Total bus-occupied time.
    pub busy_ns: Nanos,
    /// Total payload bytes moved (reads + writes + pushes).
    pub bytes_moved: u64,
    /// Retry rounds spent waiting out exponential backoff.
    pub retries: u64,
    /// Bus time spent in backoff between abort retries (included in
    /// `busy_ns`).
    pub backoff_ns: Nanos,
    /// Consistency-line glitches absorbed by the wired-OR settle window.
    pub glitches_filtered: u64,
    /// Extra settle time charged while filtering glitches (in `busy_ns`).
    pub settle_ns: Nanos,
    /// Snoopers retired by the watchdog after failing to respond.
    pub watchdog_retirements: u64,
    /// Dirty lines the watchdog salvaged from stalled modules into memory.
    pub salvaged_lines: u64,
    /// Dirty lines lost with killed modules (reported, not silent).
    pub lost_lines: u64,
    /// Soft-error corruptions injected into memory lines.
    pub corruptions: u64,
    /// Liveness-deadline violations: masters whose consecutive-failure run
    /// in the Abort/Backoff phase reached the configured deadline without
    /// any committed transaction in between. Kept out of the pinned `Debug`
    /// (like `phase_ns`): fixtures predate the liveness watchdog.
    pub liveness_violations: u64,
    /// The worst abort count any single transaction suffered before
    /// committing (or giving up). Merged with `max`, not summed.
    pub max_txn_aborts: u64,
    /// Aborted masters promoted past phantom interference by arbitration
    /// priority aging (see `RetryPolicy::aging_rounds`).
    pub aging_promotions: u64,
    /// `busy_ns` attributed to the pipeline phase that charged it, in
    /// [`Phase::PIPELINE`](crate::Phase::PIPELINE) order. Invariant: the six
    /// entries always sum to exactly `busy_ns` (sub-charges like
    /// `backoff_ns` and `settle_ns` are contained in their phase's entry).
    pub phase_ns: [Nanos; 6],
}

impl BusStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        BusStats::default()
    }

    /// Transactions per microsecond of bus-busy time.
    #[must_use]
    pub fn throughput_per_us(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.transactions as f64 * 1000.0 / self.busy_ns as f64
        }
    }

    /// Sum of the per-phase breakdown — always equal to `busy_ns`.
    #[must_use]
    pub fn phase_total_ns(&self) -> Nanos {
        self.phase_ns.iter().sum()
    }
}

// Hand-written to render exactly like the pre-observability derive: the
// golden-trace fixtures pin this output byte-for-byte, and `phase_ns` is a
// pure attribution of `busy_ns` (no new information), so it is reported via
// its own accessors instead of the pinned Debug line.
impl fmt::Debug for BusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BusStats")
            .field("transactions", &self.transactions)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .field("address_only", &self.address_only)
            .field("broadcasts", &self.broadcasts)
            .field("interventions", &self.interventions)
            .field("memory_reads", &self.memory_reads)
            .field("memory_writes", &self.memory_writes)
            .field("captures", &self.captures)
            .field("sl_updates", &self.sl_updates)
            .field("aborts", &self.aborts)
            .field("pushes", &self.pushes)
            .field("busy_ns", &self.busy_ns)
            .field("bytes_moved", &self.bytes_moved)
            .field("retries", &self.retries)
            .field("backoff_ns", &self.backoff_ns)
            .field("glitches_filtered", &self.glitches_filtered)
            .field("settle_ns", &self.settle_ns)
            .field("watchdog_retirements", &self.watchdog_retirements)
            .field("salvaged_lines", &self.salvaged_lines)
            .field("lost_lines", &self.lost_lines)
            .field("corruptions", &self.corruptions)
            .finish()
    }
}

impl AddAssign for BusStats {
    fn add_assign(&mut self, rhs: BusStats) {
        self.transactions += rhs.transactions;
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.address_only += rhs.address_only;
        self.broadcasts += rhs.broadcasts;
        self.interventions += rhs.interventions;
        self.memory_reads += rhs.memory_reads;
        self.memory_writes += rhs.memory_writes;
        self.captures += rhs.captures;
        self.sl_updates += rhs.sl_updates;
        self.aborts += rhs.aborts;
        self.pushes += rhs.pushes;
        self.busy_ns += rhs.busy_ns;
        self.bytes_moved += rhs.bytes_moved;
        self.retries += rhs.retries;
        self.backoff_ns += rhs.backoff_ns;
        self.glitches_filtered += rhs.glitches_filtered;
        self.settle_ns += rhs.settle_ns;
        self.watchdog_retirements += rhs.watchdog_retirements;
        self.salvaged_lines += rhs.salvaged_lines;
        self.lost_lines += rhs.lost_lines;
        self.corruptions += rhs.corruptions;
        self.liveness_violations += rhs.liveness_violations;
        self.max_txn_aborts = self.max_txn_aborts.max(rhs.max_txn_aborts);
        self.aging_promotions += rhs.aging_promotions;
        for (a, b) in self.phase_ns.iter_mut().zip(rhs.phase_ns) {
            *a += b;
        }
    }
}

impl fmt::Display for BusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bus: {} txns ({} R, {} W, {} inval, {} bcast) in {} ns",
            self.transactions,
            self.reads,
            self.writes,
            self.address_only,
            self.broadcasts,
            self.busy_ns
        )?;
        write!(
            f,
            "     {} interventions, {} captures, {} SL updates, {} mem R, {} mem W, {} aborts/{} pushes, {} B moved",
            self.interventions,
            self.captures,
            self.sl_updates,
            self.memory_reads,
            self.memory_writes,
            self.aborts,
            self.pushes,
            self.bytes_moved
        )?;
        let faulty = self.retries
            + self.glitches_filtered
            + self.watchdog_retirements
            + self.salvaged_lines
            + self.lost_lines
            + self.corruptions;
        if faulty > 0 {
            write!(
                f,
                "\n     {} retries ({} ns backoff), {} glitches filtered ({} ns settle), \
                 {} retired ({} salvaged/{} lost lines), {} corruptions",
                self.retries,
                self.backoff_ns,
                self.glitches_filtered,
                self.settle_ns,
                self.watchdog_retirements,
                self.salvaged_lines,
                self.lost_lines,
                self.corruptions
            )?;
        }
        if self.liveness_violations > 0 || self.aging_promotions > 0 {
            write!(
                f,
                "\n     liveness: {} violations, {} aging promotions, worst txn {} aborts",
                self.liveness_violations, self.aging_promotions, self.max_txn_aborts
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = BusStats {
            transactions: 2,
            reads: 1,
            busy_ns: 100,
            ..BusStats::new()
        };
        let b = BusStats {
            transactions: 3,
            writes: 2,
            busy_ns: 50,
            ..BusStats::new()
        };
        a += b;
        assert_eq!(a.transactions, 5);
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 2);
        assert_eq!(a.busy_ns, 150);
    }

    #[test]
    fn throughput_handles_zero_time() {
        assert_eq!(BusStats::new().throughput_per_us(), 0.0);
        let s = BusStats {
            transactions: 10,
            busy_ns: 1000,
            ..BusStats::new()
        };
        assert!((s.throughput_per_us() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn phase_breakdown_sums_and_adds() {
        let mut a = BusStats {
            busy_ns: 600,
            phase_ns: [100, 0, 25, 75, 400, 0],
            ..BusStats::new()
        };
        assert_eq!(a.phase_total_ns(), a.busy_ns);
        a += BusStats {
            busy_ns: 50,
            phase_ns: [0, 0, 0, 50, 0, 0],
            ..BusStats::new()
        };
        assert_eq!(a.phase_ns, [100, 0, 25, 125, 400, 0]);
        assert_eq!(a.phase_total_ns(), a.busy_ns);
    }

    #[test]
    fn debug_is_pinned_without_the_phase_breakdown() {
        // The golden-trace fixtures pin this rendering; `phase_ns` is pure
        // attribution of `busy_ns` and stays out of it.
        let s = BusStats {
            busy_ns: 450,
            phase_ns: [0, 0, 0, 0, 450, 0],
            ..BusStats::new()
        };
        let text = format!("{s:?}");
        assert!(text.starts_with("BusStats { transactions: 0"), "{text}");
        assert!(text.contains("busy_ns: 450"), "{text}");
        assert!(text.ends_with("corruptions: 0 }"), "{text}");
        assert!(!text.contains("phase_ns"), "{text}");
    }

    #[test]
    fn display_mentions_key_counts() {
        let s = BusStats {
            transactions: 7,
            aborts: 2,
            ..BusStats::new()
        };
        let text = s.to_string();
        assert!(text.contains("7 txns"));
        assert!(text.contains("2 aborts"));
        assert_eq!(text.lines().count(), 2, "fault line only when faults hit");
    }

    #[test]
    fn fault_counters_sum_and_display() {
        let mut a = BusStats {
            retries: 2,
            backoff_ns: 300,
            glitches_filtered: 1,
            settle_ns: 25,
            ..BusStats::new()
        };
        a += BusStats {
            retries: 1,
            backoff_ns: 100,
            watchdog_retirements: 1,
            salvaged_lines: 3,
            lost_lines: 1,
            corruptions: 2,
            ..BusStats::new()
        };
        assert_eq!(a.retries, 3);
        assert_eq!(a.backoff_ns, 400);
        assert_eq!(a.salvaged_lines, 3);
        let text = a.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("3 retries (400 ns backoff)"), "{text}");
        assert!(
            text.contains("1 retired (3 salvaged/1 lost lines)"),
            "{text}"
        );
        assert!(text.contains("2 corruptions"), "{text}");
    }

    #[test]
    fn liveness_counters_stay_out_of_the_pinned_debug() {
        let s = BusStats {
            liveness_violations: 2,
            max_txn_aborts: 9,
            aging_promotions: 4,
            ..BusStats::new()
        };
        let text = format!("{s:?}");
        assert!(!text.contains("liveness"), "{text}");
        assert!(!text.contains("aging"), "{text}");
        assert!(text.ends_with("corruptions: 0 }"), "{text}");
        let shown = s.to_string();
        assert!(
            shown.contains("2 violations, 4 aging promotions, worst txn 9 aborts"),
            "{shown}"
        );
    }

    #[test]
    fn max_txn_aborts_merges_with_max_not_sum() {
        let mut a = BusStats {
            max_txn_aborts: 5,
            liveness_violations: 1,
            aging_promotions: 2,
            ..BusStats::new()
        };
        a += BusStats {
            max_txn_aborts: 3,
            liveness_violations: 1,
            aging_promotions: 1,
            ..BusStats::new()
        };
        assert_eq!(a.max_txn_aborts, 5);
        assert_eq!(a.liveness_violations, 2);
        assert_eq!(a.aging_promotions, 3);
    }
}
