//! Policy synthesis: search the Sweazey–Smith compatibility class.
//!
//! The §3 class is a *space* of protocols — any choice of one permitted
//! action per (state, event) cell is a class member, and every member
//! coexists with every other on the same bus. The paper picks a handful of
//! named points in that space; this crate searches it.
//!
//! The search is a steepest-ascent hill climb per workload:
//!
//! 1. **Starting pool** — every shipped exact-table copy-back class member
//!    (the hand-written protocols are presumably good points; starting from
//!    them means the winner can never be worse than the best of them).
//! 2. **Neighbourhood** — [`PolicyTable::neighbors`]: all tables differing
//!    from the current one in exactly one cell, the replacement drawn from
//!    that cell's permitted set. Closure over the permitted sets keeps every
//!    candidate in-class *by construction*; the feasibility oracles
//!    ([`PolicyTable::class_violations`] structurally, [`verify::verify_table`]
//!    exhaustively for finalists) re-check rather than prune.
//! 3. **Fitness** — [`bench::sweep::table_fitness`]: the candidate table run
//!    under the contention-aware timed model on the target workload, scored
//!    as accesses per simulated second. Candidate evaluations shard over
//!    [`mpsim::campaign::run_jobs`], and every selection is index-ordered,
//!    so the result is byte-identical for any `jobs` value.
//!
//! Finalists are audited three ways: structural class membership, bounded
//! exhaustive exploration against a MOESI peer, and a fault-injection
//! campaign (loaded into the machines by name via
//! `CampaignConfig::tables`) that must report zero silent corruption.
//!
//! The §5.2-style sensitivity study re-scores each workload's winner and the
//! whole starting pool across a 27-point grid of bus/memory/cache cost
//! ratios and reports where the winner flips — the paper's point that the
//! best protocol is a function of the cost model, not just the workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use bench::sweep::{table_fitness, SweepConfig};
use futurebus::{Nanos, TimingConfig};
use moesi::json::{escape, JsonObject};
use moesi::{protocols, CacheKind, PolicyTable};
use mpsim::campaign::run_jobs;
use mpsim::{run_campaign, CampaignConfig};
use verify::Shape;

/// A neighbour must beat the incumbent by this much (accesses per simulated
/// second) to be taken — guards the climb against float noise on plateaus.
pub const IMPROVE_EPS: f64 = 1e-6;

/// The per-axis scale factors of the §5.2 sensitivity grid.
pub const SENSITIVITY_SCALES: [f64; 3] = [0.5, 1.0, 2.0];

/// Shape of a synthesis run.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Workloads to synthesize a table for (see `bench::WORKLOADS`).
    pub workloads: Vec<String>,
    /// Processors per fitness machine.
    pub cpus: usize,
    /// References per processor per fitness evaluation.
    pub steps: u64,
    /// Cache capacity per node in bytes.
    pub cache_bytes: usize,
    /// Hill-climb budget: maximum improving steps per workload.
    pub rounds: usize,
    /// Workload seed (drives the reference streams of every evaluation).
    pub seed: u64,
    /// Worker threads sharding candidate evaluations (1 = sequential; the
    /// output is byte-identical for any value).
    pub jobs: usize,
    /// When > 0, every fitness evaluation itself runs as a sharded sweep
    /// (address-interleaved regions, `shards` workers). The scores differ
    /// from the unsharded path — the regions are separate machines — but are
    /// byte-identical for any worker count, so a synthesis run is
    /// reproducible at every `shards` value independently.
    pub shards: usize,
    /// Cost model every fitness evaluation runs under; the sensitivity
    /// study scales a copy of this per grid point.
    pub timing: TimingConfig,
    /// Processor accesses per machine in the audit fault campaign.
    pub campaign_steps: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            workloads: bench::WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
            cpus: 4,
            steps: 2000,
            cache_bytes: 2048,
            rounds: 4,
            seed: 7,
            jobs: mpsim::campaign::default_jobs(),
            shards: 0,
            timing: TimingConfig::default(),
            campaign_steps: 2500,
        }
    }
}

/// One workload's synthesis outcome, audits included.
#[derive(Clone, Debug)]
pub struct WorkloadOutcome {
    /// The workload searched.
    pub workload: String,
    /// Best starting table (the hand-written baseline the winner must meet).
    pub baseline: String,
    /// The baseline's fitness (accesses per simulated second).
    pub baseline_score: f64,
    /// The synthesized winner (renamed `synth-<workload>`).
    pub winner: PolicyTable,
    /// The winner's fitness; ≥ [`WorkloadOutcome::baseline_score`] by
    /// construction.
    pub winner_score: f64,
    /// Improving hill-climb steps taken.
    pub steps_taken: usize,
    /// Candidate tables scored (pool + every neighbour evaluated).
    pub evaluated: usize,
    /// True when no neighbour improved on the best starting table — the
    /// hand-written optimum is the reported fixed point.
    pub fixed_point: bool,
    /// Structural class violations of the winner (must be empty).
    pub structural_violations: usize,
    /// States admitted by the bounded exhaustive exploration of the winner
    /// against a MOESI peer.
    pub explored_states: usize,
    /// True when that exploration finished with no counterexample.
    pub exhaustive_clean: bool,
}

/// A whole synthesis run: one [`WorkloadOutcome`] per workload plus the
/// shared fault-campaign audit over all winners.
#[derive(Clone, Debug)]
pub struct SynthReport {
    /// Names of the starting pool, in evaluation order.
    pub pool: Vec<String>,
    /// Per-workload outcomes, in configuration order.
    pub outcomes: Vec<WorkloadOutcome>,
    /// Faults injected across the winners' audit campaign.
    pub faults_injected: u64,
    /// Silent corruptions observed (a synthesis run with any fails).
    pub faults_silent: u64,
}

/// One cell of the sensitivity grid: a workload's best candidate under one
/// bus/memory/cache cost ratio.
#[derive(Clone, Debug, PartialEq)]
pub struct SensitivityRow {
    /// The workload re-scored.
    pub workload: String,
    /// Scale on the bus transfer costs (data beat + broadcast penalty).
    pub bus_scale: f64,
    /// Scale on main-memory latency.
    pub memory_scale: f64,
    /// Scale on cache intervention latency.
    pub cache_scale: f64,
    /// Best candidate (winner or pool table) at this grid point.
    pub best: String,
    /// The best candidate's fitness at this grid point.
    pub best_score: f64,
    /// True when the default-cost winner is *not* best here.
    pub flipped: bool,
}

/// The static name a workload's winner is published under (policy tables
/// carry `&'static str` names so they stay `Copy`).
#[must_use]
pub fn winner_name(workload: &str) -> &'static str {
    match workload {
        "general" => "synth-general",
        "ping-pong" => "synth-ping-pong",
        "read-mostly" => "synth-read-mostly",
        "migratory" => "synth-migratory",
        "producer-consumer" => "synth-producer-consumer",
        "false-sharing" => "synth-false-sharing",
        _ => "synth",
    }
}

/// The starting pool: every shipped exact-table copy-back class member.
#[must_use]
pub fn starting_pool(seed: u64) -> Vec<PolicyTable> {
    protocols::all_protocols(seed)
        .iter()
        .filter(|p| p.table_is_exact() && p.kind() == CacheKind::CopyBack)
        .filter_map(|p| p.policy_table().copied())
        .filter(PolicyTable::is_class_member)
        .collect()
}

fn fitness_config(cfg: &SynthConfig, timing: TimingConfig) -> SweepConfig {
    SweepConfig {
        cpus: cfg.cpus,
        steps: cfg.steps,
        cache_bytes: cfg.cache_bytes,
        seed: cfg.seed,
        jobs: 1,
        shards: cfg.shards,
        timing,
        ..SweepConfig::default()
    }
}

/// First index of the maximum (ties keep the earliest candidate, making the
/// search independent of evaluation concurrency).
fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, s) in scores.iter().enumerate().skip(1) {
        if *s > scores[best] {
            best = i;
        }
    }
    best
}

/// Scores every table on `workload`, sharded over the worker pool; results
/// come back in table order.
fn score_all(
    cfg: &SynthConfig,
    timing: TimingConfig,
    tables: &[PolicyTable],
    workload: &str,
) -> Result<Vec<f64>, String> {
    let sweep = fitness_config(cfg, timing);
    run_jobs(tables.to_vec(), cfg.jobs, |t| {
        table_fitness(&sweep, t, workload).map(|row| row.accesses_per_sec)
    })
    .into_iter()
    .collect()
}

fn validate(cfg: &SynthConfig) -> Result<(), String> {
    if cfg.workloads.is_empty() {
        return Err("nothing to synthesize: empty workload list".into());
    }
    for w in &cfg.workloads {
        if !bench::WORKLOADS.contains(&w.as_str()) {
            return Err(format!("unknown workload `{w}`"));
        }
    }
    if cfg.cpus == 0 || cfg.steps == 0 {
        return Err("cpus and steps must be non-zero".into());
    }
    Ok(())
}

/// Runs the whole synthesis: per-workload hill climb, per-winner structural
/// and exhaustive audits, and one fault campaign over all winners.
///
/// # Errors
///
/// Returns a message for an unknown workload, unusable geometry, or an
/// audit campaign that cannot run.
pub fn synthesize(cfg: &SynthConfig) -> Result<SynthReport, String> {
    validate(cfg)?;
    let pool = starting_pool(cfg.seed);
    if pool.is_empty() {
        return Err("no in-class exact-table starting protocols found".into());
    }
    let pool_names: Vec<String> = pool.iter().map(|t| t.name().to_string()).collect();

    let shape = Shape::default();
    let mut outcomes = Vec::with_capacity(cfg.workloads.len());
    for workload in &cfg.workloads {
        // Seed the climb from the best hand-written point.
        let pool_scores = score_all(cfg, cfg.timing, &pool, workload)?;
        let base_idx = argmax(&pool_scores);
        let baseline = pool_names[base_idx].clone();
        let baseline_score = pool_scores[base_idx];
        let mut evaluated = pool.len();

        let mut current = pool[base_idx];
        let mut current_score = baseline_score;
        let mut steps_taken = 0;
        for _ in 0..cfg.rounds {
            let neighbors = current.neighbors();
            let scores = score_all(cfg, cfg.timing, &neighbors, workload)?;
            evaluated += neighbors.len();
            let best = argmax(&scores);
            if scores[best] <= current_score + IMPROVE_EPS {
                break; // local optimum (possibly the hand-written one)
            }
            current = neighbors[best];
            current_score = scores[best];
            steps_taken += 1;
        }

        let winner = current.renamed(winner_name(workload));
        let violations = winner.class_violations();
        let deep = verify::verify_table(winner, &shape);
        outcomes.push(WorkloadOutcome {
            workload: workload.clone(),
            baseline,
            baseline_score,
            winner,
            winner_score: current_score,
            steps_taken,
            evaluated,
            fixed_point: steps_taken == 0,
            structural_violations: violations.len(),
            explored_states: deep.explored,
            exhaustive_clean: deep.counterexample.is_none() && !deep.truncated,
        });
    }

    // One fault campaign over every winner, loaded by name as tables.
    let campaign = run_campaign(&CampaignConfig {
        protocols: outcomes
            .iter()
            .map(|o| o.winner.name().to_string())
            .collect(),
        tables: outcomes.iter().map(|o| o.winner).collect(),
        steps: cfg.campaign_steps,
        jobs: cfg.jobs,
        ..CampaignConfig::default()
    })?;

    Ok(SynthReport {
        pool: pool_names,
        outcomes,
        faults_injected: campaign.injected(),
        faults_silent: campaign.silent(),
    })
}

fn scaled_timing(base: TimingConfig, bus: f64, memory: f64, cache: f64) -> TimingConfig {
    fn scale(v: Nanos, f: f64) -> Nanos {
        ((v as f64 * f).round() as Nanos).max(1)
    }
    TimingConfig {
        data_beat_ns: scale(base.data_beat_ns, bus),
        broadcast_penalty_ns: scale(base.broadcast_penalty_ns, bus),
        memory_latency_ns: scale(base.memory_latency_ns, memory),
        intervention_latency_ns: scale(base.intervention_latency_ns, cache),
        ..base
    }
}

/// Runs the §5.2-style sensitivity study: re-scores each workload's winner
/// and the whole starting pool across the 27-point grid of bus × memory ×
/// cache cost scales, reporting the best candidate per point and whether
/// the default-cost winner flipped. Rows come back in (workload, bus,
/// memory, cache) order, byte-identical for any `jobs` value.
///
/// # Errors
///
/// Returns a message for an unknown workload or unusable geometry.
pub fn sensitivity(cfg: &SynthConfig, report: &SynthReport) -> Result<Vec<SensitivityRow>, String> {
    validate(cfg)?;
    let pool = starting_pool(cfg.seed);
    // Per (workload, grid point): the winner first, then the pool; the
    // winner keeps its crown on ties.
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for o in &report.outcomes {
        let mut candidates = vec![o.winner];
        candidates.extend(pool.iter().copied());
        for &bus in &SENSITIVITY_SCALES {
            for &memory in &SENSITIVITY_SCALES {
                for &cache in &SENSITIVITY_SCALES {
                    let timing = scaled_timing(cfg.timing, bus, memory, cache);
                    points.push((o.workload.clone(), bus, memory, cache, o.winner.name()));
                    for &table in &candidates {
                        cells.push((points.len() - 1, table, timing, o.workload.clone()));
                    }
                }
            }
        }
    }
    let per_point = 1 + pool.len();
    let scores: Vec<f64> = run_jobs(cells, cfg.jobs, |(_, table, timing, workload)| {
        let sweep = fitness_config(cfg, timing);
        table_fitness(&sweep, table, &workload).map(|row| row.accesses_per_sec)
    })
    .into_iter()
    .collect::<Result<_, String>>()?;

    let mut rows = Vec::with_capacity(points.len());
    for (i, (workload, bus, memory, cache, winner)) in points.into_iter().enumerate() {
        let slice = &scores[i * per_point..(i + 1) * per_point];
        let best = argmax(slice);
        let best_name = if best == 0 {
            winner.to_string()
        } else {
            pool[best - 1].name().to_string()
        };
        rows.push(SensitivityRow {
            workload,
            bus_scale: bus,
            memory_scale: memory,
            cache_scale: cache,
            flipped: best != 0,
            best: best_name,
            best_score: slice[best],
        });
    }
    Ok(rows)
}

/// Renders the synthesized winners as a parseable policy-table document
/// (the committed `tests/fixtures/synth/best_tables.txt` format): comment
/// header, then one table block per workload separated by blank lines.
/// `moesi::parse_member_tables` round-trips it.
#[must_use]
pub fn tables_document(report: &SynthReport) -> String {
    let mut out = String::from(
        "# Best-known in-class policy tables per workload, synthesized by the\n\
         # compatibility-class hill climb in crates/synth. Regenerate with:\n\
         #   moesi-sim synth --seed 7 --out tests/fixtures/synth/best_tables.txt \\\n\
         #     --json-out tests/fixtures/synth/best_tables.json\n",
    );
    for o in &report.outcomes {
        out.push('\n');
        out.push_str(&o.winner.render());
    }
    out
}

/// Renders the run as a human-readable summary.
#[must_use]
pub fn render_report(report: &SynthReport) -> String {
    let mut out = format!(
        "policy synthesis: {} workloads, pool of {} in-class starting tables\n",
        report.outcomes.len(),
        report.pool.len()
    );
    for o in &report.outcomes {
        out.push_str(&format!(
            "  {:<18} {} {:>12.0} acc/sec (baseline {} {:>12.0}), {}, {} candidates scored\n",
            o.workload,
            o.winner.name(),
            o.winner_score,
            o.baseline,
            o.baseline_score,
            if o.fixed_point {
                "hand-written optimum is the fixed point".to_string()
            } else {
                format!("improved in {} steps", o.steps_taken)
            },
            o.evaluated,
        ));
    }
    let audits_ok = report
        .outcomes
        .iter()
        .all(|o| o.structural_violations == 0 && o.exhaustive_clean);
    out.push_str(&format!(
        "audit: structural + exhaustive {}; fault campaign: {} faults injected, {} silent\n",
        if audits_ok { "clean" } else { "FAILED" },
        report.faults_injected,
        report.faults_silent,
    ));
    out
}

/// Renders the sensitivity study as a per-workload flip summary.
#[must_use]
pub fn render_sensitivity(rows: &[SensitivityRow]) -> String {
    let mut out = format!(
        "sensitivity: {}-point cost grid (x{}/x{}/x{} on bus beat, memory latency, intervention latency)\n",
        SENSITIVITY_SCALES.len().pow(3),
        SENSITIVITY_SCALES[0],
        SENSITIVITY_SCALES[1],
        SENSITIVITY_SCALES[2],
    );
    let mut workloads: Vec<&str> = Vec::new();
    for r in rows {
        if !workloads.contains(&r.workload.as_str()) {
            workloads.push(&r.workload);
        }
    }
    for w in workloads {
        let of_w: Vec<&SensitivityRow> = rows.iter().filter(|r| r.workload == w).collect();
        let flips: Vec<&&SensitivityRow> = of_w.iter().filter(|r| r.flipped).collect();
        out.push_str(&format!(
            "  {:<18} winner holds at {}/{} points",
            w,
            of_w.len() - flips.len(),
            of_w.len()
        ));
        if !flips.is_empty() {
            let detail: Vec<String> = flips
                .iter()
                .map(|r| {
                    format!(
                        "bus x{} mem x{} cache x{} -> {}",
                        r.bus_scale, r.memory_scale, r.cache_scale, r.best
                    )
                })
                .collect();
            out.push_str(&format!("; flips: {}", detail.join(", ")));
        }
        out.push('\n');
    }
    out
}

/// Renders the run (and optional sensitivity study) as a JSON document via
/// the shared hand-rolled writer, with fixed-precision floats so the bytes
/// are identical for any worker count.
#[must_use]
pub fn report_json(
    cfg: &SynthConfig,
    report: &SynthReport,
    sensitivity: Option<&[SensitivityRow]>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"seed\": {},\n  \"cpus\": {},\n  \"steps_per_cpu\": {},\n  \"cache_bytes\": {},\n  \"rounds\": {},\n",
        cfg.seed, cfg.cpus, cfg.steps, cfg.cache_bytes, cfg.rounds
    ));
    let pool: Vec<String> = report
        .pool
        .iter()
        .map(|n| format!("\"{}\"", escape(n)))
        .collect();
    out.push_str(&format!("  \"pool\": [{}],\n", pool.join(", ")));
    out.push_str("  \"results\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        let row = JsonObject::new()
            .string("workload", &o.workload)
            .string("baseline", &o.baseline)
            .fixed("baseline_accesses_per_sec", o.baseline_score, 3)
            .string("winner", o.winner.name())
            .fixed("winner_accesses_per_sec", o.winner_score, 3)
            .number("steps_taken", o.steps_taken)
            .number("evaluated", o.evaluated)
            .number("fixed_point", o.fixed_point)
            .number("structural_violations", o.structural_violations)
            .number("explored_states", o.explored_states)
            .number("exhaustive_clean", o.exhaustive_clean)
            .finish();
        out.push_str(&format!(
            "    {row}{}\n",
            if i + 1 == report.outcomes.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"faults_injected\": {},\n  \"faults_silent\": {}",
        report.faults_injected, report.faults_silent
    ));
    if let Some(rows) = sensitivity {
        out.push_str(",\n  \"sensitivity\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let row = JsonObject::new()
                .string("workload", &r.workload)
                .fixed("bus_scale", r.bus_scale, 1)
                .fixed("memory_scale", r.memory_scale, 1)
                .fixed("cache_scale", r.cache_scale, 1)
                .string("best", &r.best)
                .fixed("best_accesses_per_sec", r.best_score, 3)
                .number("flipped", r.flipped)
                .finish();
            out.push_str(&format!(
                "    {row}{}\n",
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n");
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SynthConfig {
        SynthConfig {
            workloads: vec!["ping-pong".into()],
            cpus: 2,
            steps: 60,
            rounds: 1,
            jobs: 1,
            campaign_steps: 200,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn pool_is_exact_copy_back_class_members() {
        let pool = starting_pool(0);
        // MOESI, MOESI-inv, Berkeley and Dragon qualify; Write-Once,
        // Illinois, Firefly and Synapse are exact tables but sit outside
        // the strict class (they need the BS busy-push compatibility hook).
        assert!(pool.len() >= 4, "expected a real pool, got {}", pool.len());
        for t in &pool {
            assert_eq!(t.kind(), CacheKind::CopyBack, "{}", t.name());
            assert!(t.is_class_member(), "{}", t.name());
        }
    }

    #[test]
    fn winners_meet_the_baseline_and_pass_audits() {
        let report = synthesize(&tiny()).unwrap();
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert_eq!(o.winner.name(), "synth-ping-pong");
        assert!(
            o.winner_score >= o.baseline_score,
            "winner {} below baseline {}",
            o.winner_score,
            o.baseline_score
        );
        assert_eq!(o.fixed_point, o.steps_taken == 0);
        assert_eq!(o.structural_violations, 0);
        assert!(o.exhaustive_clean, "winner failed exhaustive exploration");
        assert!(report.faults_injected > 0);
        assert_eq!(report.faults_silent, 0);
    }

    #[test]
    fn sharded_runs_are_byte_identical_to_sequential() {
        let seq_cfg = tiny();
        let par_cfg = SynthConfig {
            jobs: 4,
            ..seq_cfg.clone()
        };
        let seq = synthesize(&seq_cfg).unwrap();
        let par = synthesize(&par_cfg).unwrap();
        assert_eq!(
            report_json(&seq_cfg, &seq, None),
            report_json(&par_cfg, &par, None)
        );
        assert_eq!(tables_document(&seq), tables_document(&par));
        let sens_seq = sensitivity(&seq_cfg, &seq).unwrap();
        let sens_par = sensitivity(&par_cfg, &par).unwrap();
        assert_eq!(sens_seq, sens_par);
    }

    #[test]
    fn sharded_fitness_is_byte_identical_for_any_worker_count() {
        // `shards > 0` switches every fitness evaluation to the sharded
        // sweep; the worker count must never change the search outcome.
        let one = SynthConfig {
            shards: 1,
            ..tiny()
        };
        let four = SynthConfig {
            shards: 4,
            ..tiny()
        };
        let a = synthesize(&one).unwrap();
        let b = synthesize(&four).unwrap();
        assert_eq!(tables_document(&a), tables_document(&b));
        assert_eq!(a.outcomes[0].winner_score, b.outcomes[0].winner_score);
        assert_eq!(a.outcomes[0].evaluated, b.outcomes[0].evaluated);
    }

    #[test]
    fn winner_document_round_trips_through_the_member_parser() {
        let report = synthesize(&tiny()).unwrap();
        let doc = tables_document(&report);
        let parsed = moesi::parse_member_tables(&doc).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name(), "synth-ping-pong");
        assert_eq!(parsed[0].render(), report.outcomes[0].winner.render());
    }

    #[test]
    fn sensitivity_covers_the_grid_and_marks_flips_consistently() {
        let cfg = tiny();
        let report = synthesize(&cfg).unwrap();
        let rows = sensitivity(&cfg, &report).unwrap();
        assert_eq!(rows.len(), 27);
        let winner = report.outcomes[0].winner.name();
        for r in &rows {
            assert_eq!(r.flipped, r.best != winner);
            assert!(r.best_score > 0.0);
        }
        // The identity point scores the winner at least at its default
        // fitness rank: it can never flip to a strictly worse pool table.
        let id = rows
            .iter()
            .find(|r| r.bus_scale == 1.0 && r.memory_scale == 1.0 && r.cache_scale == 1.0)
            .unwrap();
        assert!(!id.flipped, "winner lost at the identity cost point");
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = tiny();
        cfg.workloads = vec!["zipfian".into()];
        assert!(synthesize(&cfg).unwrap_err().contains("zipfian"));
        let mut cfg = tiny();
        cfg.cpus = 0;
        assert!(synthesize(&cfg).unwrap_err().contains("non-zero"));
    }

    #[test]
    fn json_reports_are_wellformed_enough_to_eyeball() {
        let cfg = tiny();
        let report = synthesize(&cfg).unwrap();
        let rows = sensitivity(&cfg, &report).unwrap();
        let json = report_json(&cfg, &report, Some(&rows));
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"workload\"").count(), 1 + rows.len());
        assert!(json.contains("\"sensitivity\": ["));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
        let bare = report_json(&cfg, &report, None);
        assert!(!bare.contains("sensitivity"));
        assert!(bare.ends_with("\"faults_silent\": 0\n}\n"));
    }
}
