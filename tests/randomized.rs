//! Plain-harness ports of the highest-value property tests.
//!
//! The original proptest suites (`tests/properties.rs`,
//! `tests/hierarchy_properties.rs`) are feature-gated behind `proptest`,
//! which needs registry access to build. These ports keep the same
//! properties exercised offline: inputs come from the in-tree
//! `moesi::rng::SmallRng` instead of proptest strategies, with fixed seeds
//! for reproducibility and enough iterations to match the original case
//! counts.

use cache_array::{split_line_crossers, CacheConfig, ReplacementKind};
use moesi::protocols::{
    Berkeley, Dragon, MoesiInvalidating, MoesiPreferred, NonCaching, PuzakRefinement, RandomPolicy,
    WriteThrough,
};
use moesi::rng::SmallRng;
use moesi::{table, BusEvent, CacheKind, LineState, LocalEvent};
use mpsim::{System, SystemBuilder};

const LINE: usize = 32;

/// One scripted operation against the system.
#[derive(Clone, Debug)]
enum Op {
    Read {
        cpu: usize,
        line: u64,
        offset: u64,
        len: usize,
    },
    Write {
        cpu: usize,
        line: u64,
        offset: u64,
        val: u8,
        len: usize,
    },
    Flush {
        cpu: usize,
        line: u64,
    },
    Pass {
        cpu: usize,
        line: u64,
    },
}

fn random_op(rng: &mut SmallRng, cpus: usize, lines: u64) -> Op {
    let cpu = rng.gen_range(0..cpus);
    let line = rng.gen_range(0u64..lines);
    match rng.gen_range(0u32..4) {
        0 => Op::Read {
            cpu,
            line,
            offset: rng.gen_range(0u64..7) * 4,
            len: rng.gen_range(1usize..5),
        },
        1 => Op::Write {
            cpu,
            line,
            offset: rng.gen_range(0u64..7) * 4,
            val: rng.gen_range(0u32..256) as u8,
            len: rng.gen_range(1usize..5),
        },
        2 => Op::Flush { cpu, line },
        _ => Op::Pass { cpu, line },
    }
}

fn apply(sys: &mut System, op: &Op) {
    let base = 0x1000;
    match *op {
        Op::Read {
            cpu,
            line,
            offset,
            len,
        } => {
            let _ = sys.read(cpu, base + line * LINE as u64 + offset, len);
        }
        Op::Write {
            cpu,
            line,
            offset,
            val,
            len,
        } => {
            sys.write(cpu, base + line * LINE as u64 + offset, &vec![val; len]);
        }
        Op::Flush { cpu, line } => {
            sys.flush(cpu, base + line * LINE as u64);
        }
        Op::Pass { cpu, line } => {
            sys.pass(cpu, base + line * LINE as u64);
        }
    }
}

fn cfg() -> CacheConfig {
    CacheConfig::new(512, LINE, 2, ReplacementKind::Lru)
}

fn mixed_system(seed: u64) -> System {
    // Small caches force evictions; the checker is on, so every operation is
    // audited and reads are compared against the golden image.
    SystemBuilder::new(LINE)
        .checking(true)
        .seed(seed)
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .cache(Box::new(Berkeley::new()), cfg())
        .cache(Box::new(Dragon::new()), cfg())
        .cache(Box::new(PuzakRefinement::new()), cfg())
        .cache(Box::new(WriteThrough::new()), cfg())
        .cache(
            Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
            cfg(),
        )
        .uncached(Box::new(NonCaching::new()))
        .build()
}

#[test]
fn random_op_sequences_preserve_consistency() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9));
        let mut sys = mixed_system(rng.next_u64() % 1000);
        let steps = rng.gen_range(1usize..120);
        for _ in 0..steps {
            let op = random_op(&mut rng, 8, 6);
            apply(&mut sys, &op); // panics (fails the test) on any violation
        }
        assert!(sys.verify().is_ok());
    }
}

#[test]
fn last_write_wins_for_every_reader() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(case.wrapping_add(7));
        let mut sys = mixed_system(1);
        let addr = 0x1000;
        let mut last = None;
        for _ in 0..rng.gen_range(1usize..40) {
            let cpu = rng.gen_range(0usize..4);
            let val = rng.gen_range(0u32..256) as u8;
            sys.write(cpu, addr, &[val; 4]);
            last = Some(val);
        }
        let expected = vec![last.expect("non-empty"); 4];
        for cpu in 0..sys.nodes() {
            assert_eq!(sys.read(cpu, addr, 4), expected);
        }
    }
}

#[test]
fn line_crosser_pieces_partition_any_access() {
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..500 {
        let addr = rng.gen_range(0u64..10_000);
        let size = rng.gen_range(0usize..400);
        let line = 1usize << rng.gen_range(3u32..9);
        let pieces = split_line_crossers(addr, size, line);
        let total: usize = pieces.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, size);
        let mut cursor = addr;
        for (a, l) in pieces {
            assert_eq!(a, cursor);
            assert!(l > 0);
            // Each piece fits within one line.
            assert_eq!(a / line as u64, (a + l as u64 - 1) / line as u64);
            cursor += l as u64;
        }
    }
}

#[test]
fn permitted_bus_results_never_create_second_owners_from_nothing() {
    for state in LineState::ALL {
        for event in BusEvent::ALL {
            for ch in [false, true] {
                for reaction in table::permitted_bus(state, event) {
                    if reaction.busy.is_some() {
                        continue;
                    }
                    let result = reaction.result.resolve(ch);
                    // Ownership cannot be conjured by snooping.
                    if !state.is_owned() {
                        assert!(!result.is_owned(), "({state}, {event}): {reaction}");
                    }
                    // Validity cannot be conjured by snooping either.
                    if !state.is_valid() {
                        assert!(!result.is_valid(), "({state}, {event}): {reaction}");
                    }
                }
            }
        }
    }
}

#[test]
fn permitted_local_never_silently_modifies_shared_data() {
    for state in LineState::ALL {
        for kind in CacheKind::ALL {
            for action in table::permitted_local(state, LocalEvent::Write, kind) {
                if state.is_non_exclusive() {
                    assert!(
                        action.bus_op.uses_bus(),
                        "silent write to non-exclusive {state} under {kind:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn random_policy_is_always_in_class() {
    let mut rng = SmallRng::seed_from_u64(0xFACE);
    for _ in 0..16 {
        let seed = rng.next_u64();
        for kind in CacheKind::ALL {
            let mut p = RandomPolicy::new(kind, seed);
            let report = moesi::compat::check_protocol(&mut p);
            assert!(report.is_class_member(), "{report}");
        }
    }
}

#[test]
fn sector_cache_valid_subsectors_never_exceed_capacity() {
    use cache_array::SectorCache;
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..40 {
        let mut sc: SectorCache<u8> = SectorCache::new(4, 64, 16);
        for _ in 0..rng.gen_range(1usize..80) {
            let addr = rng.gen_range(0u64..2_048);
            let state = rng.gen_range(0usize..3);
            sc.install(addr * 4, state as u8);
            assert!(sc.valid_subsectors() <= 4 * 4);
        }
    }
}

/// A depth-3 fabric tree (2 root subtrees x 2 leaf clusters x 2 caches),
/// protocols cycling, with the bridges' inclusion snoop filters on or off —
/// the plain-harness port of the deep-tree hierarchy properties.
fn deep_tree(filter: bool) -> mpsim::hierarchy::HierarchicalSystem {
    let mut k = 0usize;
    mpsim::hierarchy::TreeBuilder::uniform(LINE, 2, 3, 2, 2, |_, _| {
        let p: Box<dyn moesi::Protocol + Send> = match k % 4 {
            0 => Box::new(MoesiPreferred::new()),
            1 => Box::new(MoesiInvalidating::new()),
            2 => Box::new(Dragon::new()),
            _ => Box::new(WriteThrough::new()),
        };
        k += 1;
        (p, Some(cfg()))
    })
    .snoop_filter(filter)
    .checking(true)
    .build()
}

#[test]
fn deep_tree_snoop_filter_is_invisible_and_inclusion_holds() {
    // The same random program runs on two depth-3 trees differing only in
    // the snoop filter: every read must observe identical bytes, and both
    // trees must pass the inclusion audit (`verify` rejects any copy cached
    // below an Invalid bridge tag).
    for case in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(case.wrapping_mul(0xD1FF));
        let mut filtered = deep_tree(true);
        let mut flooded = deep_tree(false);
        let paths = filtered.leaf_paths();
        for _ in 0..rng.gen_range(1usize..80) {
            let node = rng.gen_range(0usize..8);
            let (leaf, cpu) = (node / 2, node % 2);
            let addr = 0x1000 + rng.gen_range(0u64..6) * LINE as u64 + rng.gen_range(0u64..7) * 4;
            if rng.gen_range(0u32..2) == 0 {
                let v = rng.gen_range(0u32..256) as u8;
                filtered.write_at(&paths[leaf], cpu, addr, &[v; 4]);
                flooded.write_at(&paths[leaf], cpu, addr, &[v; 4]);
            } else {
                let a = filtered.read_at(&paths[leaf], cpu, addr, 4);
                let b = flooded.read_at(&paths[leaf], cpu, addr, 4);
                assert_eq!(a, b, "snoop filter changed a read at {addr:#x}");
            }
        }
        assert!(
            filtered.verify().is_ok(),
            "inclusion violated with filter on"
        );
        assert!(
            flooded.verify().is_ok(),
            "inclusion violated with filter off"
        );
        // Every bridge's ledger conserves: a snoop is forwarded or
        // suppressed, never both, never dropped.
        for (sys, filter) in [(&filtered, true), (&flooded, false)] {
            for bridge in sys.bridges_preorder() {
                let s = bridge.stats();
                assert_eq!(
                    s.forwarded + s.suppressed,
                    s.snooped,
                    "ledger leaked a snoop"
                );
                assert!(s.filter_hits <= s.forwarded);
                if !filter {
                    assert_eq!(s.suppressed, 0, "disabled filter must forward everything");
                }
            }
        }
    }
}
