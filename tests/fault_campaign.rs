//! The graceful-degradation campaign: thousands of injected hardware faults
//! across several class members, every one audited by the consistency oracle.
//!
//! This is the robustness claim of the paper made executable. The §2.2 settle
//! window must mask every consistency-line glitch; the watchdog must retire
//! stalled and killed boards with any data loss *reported*; bounded retry
//! must drain abort storms; and the scrubber must catch every soft error.
//! Zero faults may be silent.

use futurebus::fault::{FaultConfig, FaultKind};
use mpsim::{run_campaign, CampaignConfig, FaultClass};

fn campaign() -> CampaignConfig {
    // The default config: moesi, dragon, write-through and berkeley machines
    // under all five fault kinds, fixed seed.
    CampaignConfig::default()
}

#[test]
fn the_class_degrades_gracefully_under_a_thousand_faults() {
    let cfg = campaign();
    assert!(cfg.protocols.len() >= 3, "campaign spans the class");
    let report = run_campaign(&cfg).expect("campaign runs");

    assert!(
        report.injected() >= 1000,
        "campaign must be substantial: only {} faults injected",
        report.injected()
    );
    assert_eq!(report.silent(), 0, "silent corruption observed:\n{report}");

    // Glitches are *always* masked: the wired-OR settle window absorbs them
    // before any protocol logic sees the lines.
    let glitches = report.count(FaultKind::Glitch, FaultClass::Masked);
    assert!(glitches > 100, "glitches must land in volume");
    assert_eq!(
        report.count(FaultKind::Glitch, FaultClass::Detected)
            + report.count(FaultKind::Glitch, FaultClass::Silent),
        0,
        "no glitch may escape the filter"
    );

    // Corruption is *never* masked-as-correct: every soft error is detected
    // by the scrubber (and recovered), or the campaign fails.
    let corrupt_detected = report.count(FaultKind::CorruptMemory, FaultClass::Detected);
    assert!(corrupt_detected > 100, "soft errors must land in volume");
    assert_eq!(
        report.count(FaultKind::CorruptMemory, FaultClass::Masked),
        0,
        "a corruption classified as masked would be an unaudited lie"
    );
    assert_eq!(
        report.count(FaultKind::CorruptMemory, FaultClass::Silent),
        0
    );

    // Abort storms drain through bounded retry.
    assert!(report.count(FaultKind::AbortStorm, FaultClass::Detected) > 20);
    assert_eq!(report.count(FaultKind::AbortStorm, FaultClass::Silent), 0);
}

#[test]
fn watchdog_retirements_keep_the_survivors_coherent() {
    // Crank stall/kill rates so retirements actually happen in volume, with
    // the other fault kinds off to isolate the watchdog path.
    let cfg = CampaignConfig {
        faults: FaultConfig {
            stall_rate: 0.01,
            kill_rate: 0.01,
            ..FaultConfig::default()
        },
        ..campaign()
    };
    let report = run_campaign(&cfg).expect("campaign runs");
    assert!(
        report.retirements() >= 3,
        "retirements must actually occur, got {}",
        report.retirements()
    );
    assert_eq!(
        report.silent(),
        0,
        "retirement broke an invariant:\n{report}"
    );
    assert_eq!(report.count(FaultKind::Stall, FaultClass::Silent), 0);
    assert_eq!(report.count(FaultKind::Kill, FaultClass::Silent), 0);
    // Stalls salvage; kills report losses; neither is ever masked (the
    // retirement itself is an observable event).
    assert_eq!(report.count(FaultKind::Stall, FaultClass::Masked), 0);
    assert_eq!(report.count(FaultKind::Kill, FaultClass::Masked), 0);
    for run in &report.runs {
        assert_eq!(
            run.retired.len() as u64,
            run.bus_stats.watchdog_retirements,
            "{}: retired set and stats must agree",
            run.protocol
        );
    }
}

#[test]
fn campaigns_reproduce_exactly_from_their_seed() {
    let cfg = CampaignConfig {
        steps: 600,
        ..campaign()
    };
    let a = run_campaign(&cfg).expect("first run");
    let b = run_campaign(&cfg).expect("second run");
    assert_eq!(a.injected(), b.injected());
    assert_eq!(a.retirements(), b.retirements());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.bus_stats, rb.bus_stats, "{} diverged", ra.protocol);
        assert_eq!(ra.retired, rb.retired);
        assert_eq!(ra.verdicts.len(), rb.verdicts.len());
    }
}
