//! The graceful-degradation campaign: thousands of injected hardware faults
//! across several class members, every one audited by the consistency oracle.
//!
//! This is the robustness claim of the paper made executable. The §2.2 settle
//! window must mask every consistency-line glitch; the watchdog must retire
//! stalled and killed boards with any data loss *reported*; bounded retry
//! must drain abort storms; and the scrubber must catch every soft error.
//! Zero faults may be silent.

use futurebus::fault::{FaultConfig, FaultKind};
use futurebus::RetryPolicy;
use mpsim::{
    run_campaign, run_hierarchy_campaign, run_liveness_probe, CampaignConfig, FaultClass,
    HierarchyCampaignConfig,
};

fn campaign() -> CampaignConfig {
    // The default config: moesi, dragon, write-through and berkeley machines
    // under all five fault kinds, fixed seed.
    CampaignConfig::default()
}

#[test]
fn the_class_degrades_gracefully_under_a_thousand_faults() {
    let cfg = campaign();
    assert!(cfg.protocols.len() >= 3, "campaign spans the class");
    let report = run_campaign(&cfg).expect("campaign runs");

    assert!(
        report.injected() >= 1000,
        "campaign must be substantial: only {} faults injected",
        report.injected()
    );
    assert_eq!(report.silent(), 0, "silent corruption observed:\n{report}");

    // Glitches are *always* masked: the wired-OR settle window absorbs them
    // before any protocol logic sees the lines.
    let glitches = report.count(FaultKind::Glitch, FaultClass::Masked);
    assert!(glitches > 100, "glitches must land in volume");
    assert_eq!(
        report.count(FaultKind::Glitch, FaultClass::Detected)
            + report.count(FaultKind::Glitch, FaultClass::Silent),
        0,
        "no glitch may escape the filter"
    );

    // Corruption is *never* masked-as-correct: every soft error is detected
    // by the scrubber (and recovered), or the campaign fails.
    let corrupt_detected = report.count(FaultKind::CorruptMemory, FaultClass::Detected);
    assert!(corrupt_detected > 100, "soft errors must land in volume");
    assert_eq!(
        report.count(FaultKind::CorruptMemory, FaultClass::Masked),
        0,
        "a corruption classified as masked would be an unaudited lie"
    );
    assert_eq!(
        report.count(FaultKind::CorruptMemory, FaultClass::Silent),
        0
    );

    // Abort storms drain through bounded retry.
    assert!(report.count(FaultKind::AbortStorm, FaultClass::Detected) > 20);
    assert_eq!(report.count(FaultKind::AbortStorm, FaultClass::Silent), 0);
}

#[test]
fn watchdog_retirements_keep_the_survivors_coherent() {
    // Crank stall/kill rates so retirements actually happen in volume, with
    // the other fault kinds off to isolate the watchdog path.
    let cfg = CampaignConfig {
        faults: FaultConfig {
            stall_rate: 0.01,
            kill_rate: 0.01,
            ..FaultConfig::default()
        },
        ..campaign()
    };
    let report = run_campaign(&cfg).expect("campaign runs");
    assert!(
        report.retirements() >= 3,
        "retirements must actually occur, got {}",
        report.retirements()
    );
    assert_eq!(
        report.silent(),
        0,
        "retirement broke an invariant:\n{report}"
    );
    assert_eq!(report.count(FaultKind::Stall, FaultClass::Silent), 0);
    assert_eq!(report.count(FaultKind::Kill, FaultClass::Silent), 0);
    // Stalls salvage; kills report losses; neither is ever masked (the
    // retirement itself is an observable event).
    assert_eq!(report.count(FaultKind::Stall, FaultClass::Masked), 0);
    assert_eq!(report.count(FaultKind::Kill, FaultClass::Masked), 0);
    for run in &report.runs {
        assert_eq!(
            run.retired.len() as u64,
            run.bus_stats.watchdog_retirements,
            "{}: retired set and stats must agree",
            run.protocol
        );
    }
}

#[test]
fn campaigns_reproduce_exactly_from_their_seed() {
    let cfg = CampaignConfig {
        steps: 600,
        ..campaign()
    };
    let a = run_campaign(&cfg).expect("first run");
    let b = run_campaign(&cfg).expect("second run");
    assert_eq!(a.injected(), b.injected());
    assert_eq!(a.retirements(), b.retirements());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.bus_stats, rb.bus_stats, "{} diverged", ra.protocol);
        assert_eq!(ra.retired, rb.retired);
        assert_eq!(ra.verdicts.len(), rb.verdicts.len());
    }
}

#[test]
fn abort_storms_stay_within_the_retry_budget_for_every_protocol() {
    // The bounded-retry pin: a BS abort storm shorter than the retry budget
    // must drain for *every* shipped protocol — no transaction may abort
    // more than the policy's bound, and none may fail. A regression here
    // means the backoff ladder or the storm accounting broke.
    let protocols = [
        "moesi",
        "moesi-invalidating",
        "puzak",
        "hybrid",
        "write-through",
        "non-caching",
        "berkeley",
        "dragon",
        "write-once",
        "illinois",
        "firefly",
        "synapse",
        "random",
    ];
    let cfg = CampaignConfig {
        protocols: protocols.iter().map(|s| s.to_string()).collect(),
        steps: 400,
        faults: FaultConfig {
            storm_rate: 0.3,
            max_storm_rounds: 4,
            ..FaultConfig::default()
        },
        ..campaign()
    };
    let report = run_campaign(&cfg).expect("campaign runs");
    assert!(
        report.count(FaultKind::AbortStorm, FaultClass::Detected) > protocols.len() as u64,
        "storms must land in volume on every machine"
    );
    assert_eq!(report.silent(), 0, "{report}");
    let bound = u64::from(RetryPolicy::default().abort_bound());
    for run in &report.runs {
        assert!(
            run.bus_stats.max_txn_aborts <= bound,
            "{}: a transaction aborted {} times, budget is {bound}",
            run.protocol,
            run.bus_stats.max_txn_aborts
        );
        assert!(
            run.bus_errors.is_empty(),
            "{}: an in-budget storm must drain, not fail: {:?}",
            run.protocol,
            run.bus_errors
        );
        assert!(
            run.bus_stats.retries > 0,
            "{}: storms must actually force retries",
            run.protocol
        );
    }
}

#[test]
fn hierarchy_campaign_degrades_gracefully_and_balances_the_ledger() {
    // The two-level acceptance bar: >= 1000 bridge-targeted faults across
    // >= 4 protocols x 2 clusters with zero silent corruption, every dirty
    // line at a bridge kill either salvaged or reported lost, and zero
    // liveness violations on in-budget (non-adversarial) storms.
    let cfg = HierarchyCampaignConfig::default();
    let report = run_hierarchy_campaign(&cfg).expect("campaign runs");
    assert!(cfg.protocols.len() >= 4 && cfg.clusters >= 2);
    assert!(
        report.injected() >= 1000,
        "only {} faults injected",
        report.injected()
    );
    assert_eq!(report.silent(), 0, "silent corruption observed:\n{report}");
    assert!(
        report.retirements() > 0,
        "bridge retirements must actually occur"
    );
    assert_eq!(report.liveness_violations(), 0, "{report}");
    for run in &report.runs {
        assert_eq!(
            run.salvaged_lines + run.lost_lines,
            run.dirty_at_retire,
            "{}: salvaged + lost must equal the dirty lines owned at kill time",
            run.protocol
        );
    }
}

#[test]
fn the_liveness_probe_separates_the_three_retry_policies() {
    // The seeded adversarial scenario: a 32-round phantom-BS storm against a
    // 16-retry budget. Naive flat retry provably livelocks (zero commits,
    // watchdog violations); capped backoff bounds the waste per transaction;
    // priority aging recovers every master with zero violations.
    let probe = run_liveness_probe(7, 24).expect("probe runs");
    assert!(probe.demonstrates_recovery(), "{probe}");
    let flat = &probe.outcomes[0];
    assert_eq!(flat.committed, 0, "{probe}");
    assert!(flat.liveness_violations > 0, "{probe}");
    let aged = &probe.outcomes[2];
    assert_eq!(aged.liveness_violations, 0, "{probe}");
    assert!(aged.aging_promotions > 0, "{probe}");
}
