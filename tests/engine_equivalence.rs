//! Engine equivalence: the cycle-stamped event-queue engine must be
//! observably indistinguishable from the legacy per-access accounting loop.
//!
//! Every named protocol (the compared set plus the non-caching and random
//! clients) runs every workload at three seeds on both engines; the
//! [`mpsim::TimedReport`] (simulated time, bus occupancy, phase histograms)
//! and the [`mpsim::MachineReport`] (bus counters, per-node counters, the
//! rendered bus trace) must compare equal byte for byte. This is the
//! contract that lets the `--engine legacy` escape hatch be deleted next
//! PR.

use bench::{COMPARED_PROTOCOLS, LINE, WORKLOADS};
use cache_array::{CacheConfig, ReplacementKind};
use futurebus::TimingConfig;
use moesi::protocols::by_name;
use mpsim::{EngineKind, MachineReport, System, SystemBuilder, TimedReport};

const CPUS: usize = 3;
const STEPS: u64 = 60;
const CPU_WORK_NS: u64 = 50;
const SEEDS: [u64; 3] = [1, 7, 42];

/// The full named-protocol roster: the benchmarked set plus the two bus
/// clients the sweep omits (no cache to measure, but still bus masters the
/// engines must order identically).
fn all_protocols() -> Vec<&'static str> {
    let mut names = COMPARED_PROTOCOLS.to_vec();
    names.push("non-caching");
    names.push("random");
    names
}

fn build(engine: EngineKind, protocol: &str, seed: u64) -> System {
    let cfg = CacheConfig::new(1024, LINE, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(LINE)
        .timing(TimingConfig::default())
        .checking(false)
        .engine(engine);
    for i in 0..CPUS {
        let p = by_name(protocol, seed.wrapping_add(i as u64)).expect("known protocol");
        b = if p.kind() == moesi::CacheKind::NonCaching {
            b.uncached(p)
        } else {
            b.cache(p, cfg)
        };
    }
    b.build()
}

fn observe(
    engine: EngineKind,
    protocol: &str,
    workload: &str,
    seed: u64,
) -> (TimedReport, MachineReport) {
    let mut sys = build(engine, protocol, seed);
    sys.enable_trace(64);
    let mut streams = bench::workload_streams(workload, CPUS, LINE, seed);
    let timed = sys.run_timed(&mut streams, STEPS, CPU_WORK_NS);
    (timed, sys.machine_report())
}

#[test]
fn event_engine_matches_legacy_on_every_protocol_workload_and_seed() {
    for protocol in all_protocols() {
        for workload in WORKLOADS {
            for seed in SEEDS {
                let (legacy_timed, legacy_report) =
                    observe(EngineKind::Legacy, protocol, workload, seed);
                let (event_timed, event_report) =
                    observe(EngineKind::Event, protocol, workload, seed);
                assert_eq!(
                    legacy_timed, event_timed,
                    "{protocol} on {workload} (seed {seed}): timed reports diverged"
                );
                assert_eq!(
                    legacy_report, event_report,
                    "{protocol} on {workload} (seed {seed}): machine reports diverged"
                );
            }
        }
    }
}

#[test]
fn the_comparison_is_not_vacuous() {
    // The roster covers 13 protocols and the trace actually records traffic
    // — an empty trace would make the report equality trivially true.
    assert_eq!(all_protocols().len(), 13);
    let (_, report) = observe(EngineKind::Event, "moesi", "ping-pong", 7);
    assert!(
        report.trace.lines().count() > 10,
        "expected a populated bus trace, got:\n{}",
        report.trace
    );
    assert!(report.bus.transactions > 0);
}
