//! Gate on the committed best-known synthesized tables.
//!
//! `tests/fixtures/synth/best_tables.txt` is the output of
//! `moesi-sim synth --seed 7` (see the fixture's header for the exact
//! regeneration command). These tests hold the fixture to the claims the
//! synthesis run makes: every table parses as a strict class member,
//! round-trips byte-identically through the serializer, and survives a
//! fault-injection campaign — loaded into the machines by name through
//! `CampaignConfig::tables` — with over a thousand injected faults and
//! zero silent corruption.

use mpsim::{run_campaign, CampaignConfig};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "fixtures",
        "synth",
        name,
    ]
    .iter()
    .collect();
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn best_tables_parse_as_class_members_and_round_trip() {
    let doc = fixture("best_tables.txt");
    let tables = moesi::parse_member_tables(&doc).expect("fixture parses as class members");
    assert_eq!(tables.len(), 6, "one winner per workload");
    let names: Vec<&str> = tables.iter().map(|t| t.name()).collect();
    for workload in bench::WORKLOADS {
        assert!(
            names.contains(&format!("synth-{workload}").as_str()),
            "no winner for {workload} in {names:?}"
        );
    }
    for t in &tables {
        assert!(t.is_class_member(), "{} drifted out of class", t.name());
        let rendered = t.render();
        let back = moesi::parse_table(&rendered).expect("re-parses");
        assert_eq!(back.render(), rendered, "{} render unstable", t.name());
    }
}

#[test]
fn best_tables_json_report_matches_the_text_fixture() {
    let json = fixture("best_tables.json");
    let doc = fixture("best_tables.txt");
    let tables = moesi::parse_member_tables(&doc).expect("fixture parses");
    for t in &tables {
        assert!(
            json.contains(&format!("\"winner\": \"{}\"", t.name())),
            "JSON report missing {}",
            t.name()
        );
    }
    assert!(
        json.contains("\"faults_silent\": 0"),
        "fixture run saw silent corruption"
    );
    assert!(
        json.contains("\"seed\": 7"),
        "fixture not generated with --seed 7"
    );
}

#[test]
fn best_tables_survive_a_thousand_fault_campaign() {
    let doc = fixture("best_tables.txt");
    let tables = moesi::parse_member_tables(&doc).expect("fixture parses");
    let report = run_campaign(&CampaignConfig {
        protocols: tables.iter().map(|t| t.name().to_string()).collect(),
        tables,
        ..CampaignConfig::default()
    })
    .expect("campaign runs");
    assert!(
        report.injected() >= 1000,
        "only {} faults injected; the gate needs >= 1000",
        report.injected()
    );
    assert_eq!(
        report.silent(),
        0,
        "synthesized tables corrupted silently under faults"
    );
}
