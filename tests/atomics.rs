//! Atomic read-modify-write on top of the serialised bus: no increment may
//! ever be lost, whatever mixture of protocols performs them.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::by_name;
use mpsim::{System, SystemBuilder};

const LINE: usize = 32;

fn mixed(protocols: &[&str]) -> System {
    let cfg = CacheConfig::new(1024, LINE, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(LINE).checking(true);
    for (i, p) in protocols.iter().enumerate() {
        b = b.cache(by_name(p, i as u64).expect("known"), cfg);
    }
    b.build()
}

#[test]
fn fetch_add_never_loses_updates_across_protocols() {
    for protocols in [
        &["moesi", "moesi-invalidating", "dragon"][..],
        &["berkeley", "write-through", "moesi"][..],
        &["illinois", "illinois", "illinois"][..],
        &["synapse", "synapse"][..],
    ] {
        let mut sys = mixed(protocols);
        let addr = 0x1000;
        let mut expected = 0u32;
        for round in 0..100u32 {
            let cpu = (round as usize) % sys.nodes();
            let old = sys.fetch_add_u32(cpu, addr, round);
            assert_eq!(old, expected, "{protocols:?} lost an update");
            expected = expected.wrapping_add(round);
        }
        let fin = u32::from_le_bytes(sys.read(0, addr, 4).try_into().unwrap());
        assert_eq!(fin, expected);
        sys.verify().expect("consistent");
    }
}

#[test]
fn test_and_set_is_mutually_exclusive() {
    let mut sys = mixed(&["moesi", "dragon"]);
    let lock = 0x2000;
    assert_eq!(sys.test_and_set(0, lock), 0, "first acquisition wins");
    assert_eq!(sys.test_and_set(1, lock), 1, "second sees it held");
    assert_eq!(sys.test_and_set(0, lock), 1, "even the holder re-reads 1");
    sys.clear_lock(0, lock);
    assert_eq!(sys.test_and_set(1, lock), 0, "released lock is takeable");
}

#[test]
fn rmw_returns_old_bytes_and_applies_new() {
    let mut sys = mixed(&["moesi"]);
    sys.write(0, 0x100, &[1, 2, 3, 4]);
    let old = sys.atomic_rmw(0, 0x100, 4, |b| b.iter().map(|x| x * 2).collect());
    assert_eq!(old, vec![1, 2, 3, 4]);
    assert_eq!(sys.read(0, 0x100, 4), vec![2, 4, 6, 8]);
}

#[test]
#[should_panic(expected = "must not cross a line")]
fn line_crossing_rmw_is_rejected() {
    let mut sys = mixed(&["moesi"]);
    let _ = sys.atomic_rmw(0, LINE as u64 - 2, 4, |b| b.to_vec());
}

#[test]
#[should_panic(expected = "preserve the operand size")]
fn size_changing_rmw_is_rejected() {
    let mut sys = mixed(&["moesi"]);
    let _ = sys.atomic_rmw(0, 0x100, 4, |_| vec![0; 2]);
}
