//! §6: "Proper mechanisms must also be defined for issuing commands across
//! the bus to cause other caches to become consistent with main memory."
//! These tests exercise `System::make_memory_consistent` /
//! `make_all_consistent` — the DMA-preparation commands — and the bus trace.

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::TraceKind;
use moesi::protocols::{MoesiInvalidating, MoesiPreferred};
use moesi::LineState::{Exclusive, Owned, Shareable};
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, System, SystemBuilder};

const LINE: usize = 32;

fn cfg() -> CacheConfig {
    CacheConfig::new(2048, LINE, 2, ReplacementKind::Lru)
}

fn sys(n: usize) -> System {
    let mut b = SystemBuilder::new(LINE).checking(true);
    for _ in 0..n {
        b = b.cache(Box::new(MoesiPreferred::new()), cfg());
    }
    b.build()
}

#[test]
fn make_memory_consistent_pushes_the_owner() {
    let mut sys = sys(2);
    sys.write(0, 0x100, &[7; 4]); // cpu0: M, memory stale
    let mem_writes = sys.bus_stats().memory_writes;
    assert!(sys.make_memory_consistent(0x100));
    assert_eq!(sys.bus_stats().memory_writes, mem_writes + 1);
    // The copy is retained, now unowned and clean.
    assert_eq!(sys.state_of(0, 0x100), Exclusive);
    assert!(!sys.make_memory_consistent(0x100), "already consistent");
    sys.verify().expect("consistent");
}

#[test]
fn make_memory_consistent_handles_owned_with_sharers() {
    let mut sys = sys(3);
    sys.write(0, 0x100, &[1; 4]);
    sys.read(1, 0x100, 4); // cpu0: O, cpu1: S
    assert_eq!(sys.state_of(0, 0x100), Owned);
    assert!(sys.make_memory_consistent(0x100));
    // Pass with CH from cpu1 resolves CH:S/E to S.
    assert_eq!(sys.state_of(0, 0x100), Shareable);
    assert_eq!(sys.state_of(1, 0x100), Shareable);
    sys.verify().expect("consistent");
}

#[test]
fn make_all_consistent_sweeps_every_owned_line() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .build();
    // Dirty a handful of lines from both CPUs.
    for i in 0..6u64 {
        sys.write((i % 2) as usize, 0x1000 + i * LINE as u64, &[i as u8; 4]);
    }
    let pushed = sys.make_all_consistent();
    assert_eq!(pushed, 6);
    // No owned lines remain anywhere.
    for cpu in 0..sys.nodes() {
        if let Some(cache) = sys.controller(cpu).cache() {
            assert!(cache.iter().all(|(_, e)| !e.state.is_owned()));
        }
    }
    assert_eq!(sys.make_all_consistent(), 0, "idempotent");
    sys.verify().expect("consistent");
}

#[test]
fn make_all_consistent_enables_uncached_dma_style_reads() {
    // The use case §6 gestures at: an I/O device that reads memory directly
    // (no snooping at all) sees current data after the sweep.
    let mut sys = sys(2);
    sys.write(0, 0x100, &[9; 4]);
    sys.write(1, 0x200, &[8; 4]);
    sys.make_all_consistent();
    // Peek memory directly — this bypasses coherence entirely.
    let m1 = sys.memory_peek(0x100, 4);
    let m2 = sys.memory_peek(0x200, 4);
    assert_eq!(m1, vec![9; 4]);
    assert_eq!(m2, vec![8; 4]);
}

#[test]
fn trace_records_the_transaction_stream() {
    let mut sys = sys(2);
    sys.enable_trace(64);
    sys.read(0, 0x100, 4); // READ
    sys.write(0, 0x100, &[1; 4]); // silent (no record)
    sys.read(1, 0x100, 4); // READ served by intervention
    sys.write(1, 0x100, &[2; 4]); // broadcast WRITE
    let kinds: Vec<TraceKind> = sys.trace().records().map(|r| r.kind).collect();
    assert_eq!(
        kinds,
        vec![TraceKind::Read, TraceKind::Read, TraceKind::Write]
    );
    let rendered = sys.trace().render();
    assert!(rendered.contains("READ"));
    assert!(rendered.contains("WRITE"));
    assert!(
        rendered.contains("CA,IM,BC"),
        "broadcast signals visible:\n{rendered}"
    );
    // The second read was served by cpu0's cache.
    let second = sys.trace().records().nth(1).unwrap();
    assert_eq!(second.source, futurebus::DataSource::Intervention(0));
    assert!(second.responses.di && second.responses.ch);
}

#[test]
fn trace_captures_bs_pushes() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(moesi::protocols::by_name("illinois", 0).unwrap(), cfg())
        .cache(moesi::protocols::by_name("illinois", 1).unwrap(), cfg())
        .build();
    sys.enable_trace(64);
    sys.write(0, 0x100, &[1; 4]);
    sys.read(1, 0x100, 4); // aborts, pushes, retries
    let kinds: Vec<TraceKind> = sys.trace().records().map(|r| r.kind).collect();
    assert!(kinds.contains(&TraceKind::Push), "{kinds:?}");
    let read = sys
        .trace()
        .records()
        .filter(|r| r.kind == TraceKind::Read)
        .last()
        .unwrap();
    assert_eq!(read.aborts, 1, "the retried read records its abort");
}

#[test]
fn long_run_with_commands_interleaved_stays_consistent() {
    let mut sys = sys(4);
    let model = SharingModel {
        line_size: LINE as u64,
        ..SharingModel::default()
    };
    for round in 0..10 {
        let mut streams: Vec<Box<dyn RefStream + Send>> = (0..4)
            .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, round)) as _)
            .collect();
        sys.run(&mut streams, 50);
        sys.make_all_consistent();
        sys.verify().expect("consistent after sweep");
    }
}
