//! Phase-accounting invariant: the per-phase breakdown is a *partition* of
//! bus occupancy, never an estimate.
//!
//! Every nanosecond of `busy_ns` is charged to exactly one pipeline phase —
//! including the §2.2 settle windows glitches force into snoop-resolve and
//! the backoff/push time abort storms force into abort-backoff — so the sum
//! of the breakdown must equal `busy_ns` exactly, for every protocol in the
//! compared set, clean or faulted, and the histograms must agree with the
//! counters they shadow.

use futurebus::fault::FaultConfig;
use futurebus::Phase;
use mpsim::{run_campaign, CampaignConfig};

/// The ten protocols the benchmark sweep compares.
const PROTOCOLS: &[&str] = bench::COMPARED_PROTOCOLS;

fn campaign(faults: FaultConfig, steps: u64, seed: u64) -> CampaignConfig {
    CampaignConfig {
        protocols: PROTOCOLS.iter().map(|s| (*s).to_string()).collect(),
        steps,
        seed,
        faults,
        ..CampaignConfig::default()
    }
}

fn assert_partition(report: &mpsim::CampaignReport) {
    for run in &report.runs {
        let stats = &run.bus_stats;
        assert_eq!(
            stats.phase_total_ns(),
            stats.busy_ns,
            "{}: phase breakdown must sum to busy_ns exactly\n{stats:?}",
            run.protocol
        );
        let observed: u64 = run.phase_hist.sums().iter().sum();
        assert_eq!(
            observed, stats.busy_ns,
            "{}: histograms must account for every busy nanosecond",
            run.protocol
        );
        assert!(
            run.phase_hist.phase(Phase::DataTransfer).samples() > 0,
            "{}: the campaign must actually drive bus traffic",
            run.protocol
        );
    }
}

#[test]
fn clean_runs_partition_busy_ns_across_all_protocols() {
    let report = run_campaign(&campaign(FaultConfig::default(), 400, 0xCA_FE)).expect("campaign");
    assert_partition(&report);
    for run in &report.runs {
        // Settle windows only ever come from injected glitches; genuine BS
        // aborts (and their backoff) can occur in a clean run and must still
        // sit inside the partition, which assert_partition already checked.
        assert_eq!(run.bus_stats.settle_ns, 0, "{}: no faults", run.protocol);
    }
}

#[test]
fn faulted_runs_still_partition_busy_ns_across_all_protocols() {
    // Glitches charge settle windows into snoop-resolve; storms charge
    // aborted cycles and exponential backoff into abort-backoff. Both must
    // land inside the partition, not beside it.
    let faults = FaultConfig {
        seed: 0xFA_017,
        glitch_rate: 0.25,
        storm_rate: 0.10,
        corrupt_rate: 0.05,
        max_storm_rounds: 4,
        ..FaultConfig::default()
    };
    let report = run_campaign(&campaign(faults, 400, 0xCA_FE)).expect("campaign");
    assert_partition(&report);

    let snoop = Phase::SnoopResolve as usize;
    let backoff = Phase::AbortBackoff as usize;
    let mut settled = 0u64;
    let mut backed_off = 0u64;
    for run in &report.runs {
        let stats = &run.bus_stats;
        assert!(
            stats.phase_ns[snoop] >= stats.settle_ns,
            "{}: settle windows must be charged to snoop-resolve",
            run.protocol
        );
        assert!(
            stats.phase_ns[backoff] >= stats.backoff_ns,
            "{}: backoff must be charged to abort-backoff",
            run.protocol
        );
        settled += stats.settle_ns;
        backed_off += stats.backoff_ns;
    }
    assert!(settled > 0, "glitches must land somewhere in the campaign");
    assert!(backed_off > 0, "storms must land somewhere in the campaign");
}

#[test]
fn the_partition_holds_across_seeds() {
    for seed in [1u64, 7, 42, 0xDEAD] {
        let faults = FaultConfig {
            seed: seed ^ 0xFA_017,
            glitch_rate: 0.30,
            storm_rate: 0.08,
            ..FaultConfig::default()
        };
        let report = run_campaign(&CampaignConfig {
            protocols: vec!["moesi".into(), "dragon".into(), "write-through".into()],
            steps: 250,
            seed,
            faults,
            ..CampaignConfig::default()
        })
        .expect("campaign");
        assert_partition(&report);
    }
}
