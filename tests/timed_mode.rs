//! The contention-aware timed mode (`System::run_timed`) must obey basic
//! queueing identities: single-CPU wall time decomposes exactly, utilisation
//! is bounded, and adding processors never reduces aggregate throughput of a
//! bus-free workload.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::{MoesiPreferred, NonCaching};
use mpsim::workload::{Access, Sequential, TraceReplay};
use mpsim::{RefStream, System, SystemBuilder};

const LINE: usize = 32;

fn cfg() -> CacheConfig {
    CacheConfig::new(4096, LINE, 2, ReplacementKind::Lru)
}

fn moesi_system(n: usize) -> System {
    let mut b = SystemBuilder::new(LINE).checking(true);
    for _ in 0..n {
        b = b.cache(Box::new(MoesiPreferred::new()), cfg());
    }
    b.build()
}

#[test]
fn single_cpu_wall_time_decomposes_exactly() {
    let mut sys = moesi_system(1);
    // One line, repeatedly read: 1 miss then all hits.
    let trace = TraceReplay::new(vec![Access::read(0x1000, 4)]);
    let mut streams: Vec<Box<dyn RefStream + Send>> = vec![Box::new(trace)];
    let refs = 50;
    let work = 100;
    let report = sys.run_timed(&mut streams, refs, work);
    assert_eq!(report.total_refs, refs);
    // wall = refs * work + the single miss's bus time.
    assert_eq!(report.wall_ns, refs * work + report.bus_busy_ns);
    assert_eq!(report.bus_wait_ns, 0, "nobody to contend with");
    assert!(
        report.bus_utilization() <= 0.25,
        "one cold miss only: {report}"
    );
}

#[test]
fn utilization_is_bounded_and_waiting_appears_under_contention() {
    // Four uncached processors: every access needs the bus.
    let mut b = SystemBuilder::new(LINE).checking(true);
    for _ in 0..4 {
        b = b.uncached(Box::new(NonCaching::new()));
    }
    let mut sys = b.build();
    let trace = TraceReplay::new(vec![Access::read(0x1000, 4), Access::write(0x1000, 4)]);
    let mut streams: Vec<Box<dyn RefStream + Send>> =
        (0..4).map(|_| Box::new(trace.clone()) as _).collect();
    let report = sys.run_timed(&mut streams, 40, 10);
    assert!(report.bus_utilization() > 0.95, "{report}");
    assert!(report.bus_utilization() <= 1.0 + f64::EPSILON);
    assert!(report.bus_wait_ns > 0, "queueing must show up: {report}");
    assert_eq!(report.total_refs, 160);
}

#[test]
fn private_workloads_scale_nearly_linearly() {
    // Disjoint private working sets: after warm-up, no bus traffic at all.
    let run = |n: usize| {
        let mut sys = moesi_system(n);
        let mut streams: Vec<Box<dyn RefStream + Send>> = (0..n)
            .map(|cpu| Box::new(Sequential::new(cpu, 4, 256, 0.3, 3)) as _)
            .collect();
        sys.run_timed(&mut streams, 2_000, 50)
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four.refs_per_us() > 3.0 * one.refs_per_us(),
        "private work must scale: {} vs {}",
        four.refs_per_us(),
        one.refs_per_us()
    );
}

#[test]
fn timed_and_untimed_runs_agree_on_coherence_outcomes() {
    // The timed mode changes scheduling, not semantics: final bus statistics
    // categories stay sane and the oracle holds throughout.
    let mut sys = moesi_system(3);
    let trace = TraceReplay::new(vec![
        Access::read(0x1000, 4),
        Access::write(0x1000, 4),
        Access::read(0x1020, 4),
    ]);
    let mut streams: Vec<Box<dyn RefStream + Send>> =
        (0..3).map(|_| Box::new(trace.clone()) as _).collect();
    let report = sys.run_timed(&mut streams, 60, 25);
    assert_eq!(report.total_refs, 180);
    sys.verify().expect("oracle holds in timed mode");
    let t = sys.total_stats();
    assert_eq!(t.references(), 180);
    assert!(t.hits() > 0);
}
