//! Differential testing: every protocol — class member or adapted — must be
//! *functionally* identical. Protocols differ in traffic and states, never in
//! the values programs observe. The same deterministic workload is replayed
//! against homogeneous systems of each protocol and every read is compared.

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::{PriorityArbiter, RoundRobinArbiter};
use moesi::protocols::by_name;
use mpsim::workload::{Access, TraceReplay};
use mpsim::{RefStream, System, SystemBuilder};

const LINE: usize = 32;
const CPUS: usize = 3;

const ALL_PROTOCOLS: &[&str] = &[
    "moesi",
    "moesi-invalidating",
    "puzak",
    "berkeley",
    "dragon",
    "write-once",
    "illinois",
    "firefly",
    "synapse",
    "write-through",
];

fn homogeneous(protocol: &str) -> System {
    let cfg = CacheConfig::new(1024, LINE, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(LINE).checking(true);
    for i in 0..CPUS {
        b = b.cache(by_name(protocol, i as u64).expect("known"), cfg);
    }
    b.build()
}

/// A deterministic mixed script: (cpu, addr, write value or read marker).
fn script(seed: u64) -> Vec<(usize, u64, Option<u8>)> {
    // A simple LCG keeps the script reproducible without pulling in rand.
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    (0..300)
        .map(|i| {
            let cpu = (next() % CPUS as u64) as usize;
            let addr = 0x1000 + (next() % 8) * LINE as u64 + (next() % 8) * 4;
            let is_write = next() % 3 == 0;
            (cpu, addr, if is_write { Some(i as u8) } else { None })
        })
        .collect()
}

/// Runs the script and collects every read result.
fn observe(protocol: &str, seed: u64) -> Vec<Vec<u8>> {
    let mut sys = homogeneous(protocol);
    let mut reads = Vec::new();
    for (cpu, addr, action) in script(seed) {
        match action {
            Some(v) => sys.write(cpu, addr, &[v; 4]),
            None => reads.push(sys.read(cpu, addr, 4)),
        }
    }
    sys.verify().expect("consistent");
    reads
}

#[test]
fn every_protocol_observes_identical_values() {
    for seed in 0..3u64 {
        let reference = observe("moesi", seed);
        for protocol in ALL_PROTOCOLS {
            let got = observe(protocol, seed);
            assert_eq!(
                got, reference,
                "{protocol} (seed {seed}) diverged from the reference observation"
            );
        }
    }
}

#[test]
fn protocols_differ_in_traffic_but_not_in_answers() {
    // Sanity check that the differential test is not vacuous: the protocols
    // really do take different bus actions on this script.
    let mut traffic = std::collections::BTreeMap::new();
    for protocol in ["moesi", "moesi-invalidating", "illinois", "write-through"] {
        let mut sys = homogeneous(protocol);
        for (cpu, addr, action) in script(1) {
            match action {
                Some(v) => sys.write(cpu, addr, &[v; 4]),
                None => {
                    let _ = sys.read(cpu, addr, 4);
                }
            }
        }
        traffic.insert(protocol, sys.bus_stats().transactions);
    }
    let distinct: std::collections::BTreeSet<u64> = traffic.values().copied().collect();
    assert!(
        distinct.len() >= 3,
        "expected diverse traffic profiles, got {traffic:?}"
    );
}

#[test]
fn arbitration_policy_changes_fairness_not_values() {
    // The same trace under priority vs round-robin arbitration: values are
    // checked by the oracle either way; fairness differs drastically.
    let trace: Vec<Access> = (0..40)
        .map(|i| {
            if i % 4 == 0 {
                Access::write(0x1000 + (i % 8) * 4, 4)
            } else {
                Access::read(0x1000 + (i % 8) * 4, 4)
            }
        })
        .collect();
    let make_streams = || -> Vec<Box<dyn RefStream + Send>> {
        (0..CPUS)
            .map(|_| Box::new(TraceReplay::new(trace.clone())) as _)
            .collect()
    };

    let mut sys = homogeneous("moesi");
    let mut priority = PriorityArbiter::new();
    let served = sys.run_arbitrated(&mut make_streams(), 60, &mut priority);
    assert_eq!(served[0], 60, "fixed priority serves only board 0");
    assert_eq!(served[1] + served[2], 0, "the rest starve");

    let mut sys = homogeneous("moesi");
    let mut rr = RoundRobinArbiter::new();
    let served = sys.run_arbitrated(&mut make_streams(), 60, &mut rr);
    assert_eq!(served, vec![20, 20, 20], "round robin is fair");
    sys.verify().expect("consistent under arbitration");
}
