//! Homogeneous systems of the adapted protocols (Write-Once, Illinois,
//! Firefly, §4.3–4.5): each relies on the BS abort-push-restart mechanism and
//! must keep its own invariants — notably that their S/E states are
//! consistent with main memory, which plain MOESI does not promise.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::by_name;
use moesi::LineState::{Exclusive, Invalid, Modified, Shareable};
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, System, SystemBuilder};

const LINE: usize = 32;

fn homogeneous(protocol: &str, n: usize) -> System {
    let cfg = CacheConfig::new(2048, LINE, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(LINE).checking(true);
    for i in 0..n {
        b = b.cache(by_name(protocol, i as u64).expect("known"), cfg);
    }
    b.build()
}

fn drive(sys: &mut System, steps: u64, seed: u64) {
    let model = SharingModel {
        shared_lines: 6,
        private_lines: 24,
        p_shared: 0.5,
        p_write: 0.4,
        p_rereference: 0.3,
        line_size: LINE as u64,
    };
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..sys.nodes())
        .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, seed)) as _)
        .collect();
    sys.run(&mut streams, steps);
    sys.verify()
        .expect("homogeneous adapted system must be consistent");
}

#[test]
fn write_once_first_write_goes_through_then_silently() {
    let mut sys = homogeneous("write-once", 2);
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4); // both S
    let w_before = sys.bus_stats().writes;
    sys.write(0, 0x100, &[1; 4]); // the eponymous write-once
    assert_eq!(sys.bus_stats().writes, w_before + 1, "written through");
    assert_eq!(sys.state_of(0, 0x100), Exclusive, "reserved");
    assert_eq!(sys.state_of(1, 0x100), Invalid, "invalidated by CA,IM");
    // Memory is current after the write-through: verify via a fresh reader.
    let txns = sys.bus_stats().writes;
    sys.write(0, 0x100, &[2; 4]); // second write: silent, E -> M
    assert_eq!(sys.bus_stats().writes, txns);
    assert_eq!(sys.state_of(0, 0x100), Modified);
}

#[test]
fn write_once_dirty_read_aborts_pushes_and_restarts() {
    let mut sys = homogeneous("write-once", 2);
    sys.write(0, 0x100, &[3; 4]); // M at cpu0 (RWITM)
    assert_eq!(sys.state_of(0, 0x100), Modified);
    let v = sys.read(1, 0x100, 4);
    assert_eq!(v, vec![3; 4]);
    // The abort-push-retry leaves both S and memory current.
    assert_eq!(sys.state_of(0, 0x100), Shareable);
    assert_eq!(sys.state_of(1, 0x100), Shareable);
    assert_eq!(sys.bus_stats().aborts, 1);
    assert_eq!(sys.bus_stats().pushes, 1);
    assert_eq!(sys.stats(0).pushes, 1);
    assert_eq!(sys.stats(1).aborts_suffered, 1);
}

#[test]
fn illinois_write_miss_on_dirty_line_pushes_too() {
    let mut sys = homogeneous("illinois", 2);
    sys.write(0, 0x100, &[4; 4]);
    sys.write(1, 0x100, &[5; 4]); // RWITM aborts, cpu0 pushes, retry
    assert!(sys.bus_stats().aborts >= 1);
    assert_eq!(sys.state_of(1, 0x100), Modified);
    assert_eq!(sys.state_of(0, 0x100), Invalid);
    assert_eq!(sys.read(1, 0x100, 4), vec![5; 4]);
}

#[test]
fn illinois_read_miss_picks_s_or_e_like_mesi() {
    let mut sys = homogeneous("illinois", 2);
    sys.read(0, 0x100, 4);
    assert_eq!(sys.state_of(0, 0x100), Exclusive);
    sys.read(1, 0x100, 4);
    assert_eq!(sys.state_of(0, 0x100), Shareable);
    assert_eq!(sys.state_of(1, 0x100), Shareable);
}

#[test]
fn firefly_shared_write_stays_clean() {
    let mut sys = homogeneous("firefly", 2);
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4);
    sys.write(0, 0x100, &[6; 4]); // broadcast; memory updated too
    assert_eq!(
        sys.state_of(0, 0x100),
        Shareable,
        "CH seen, stays shared-clean"
    );
    assert_eq!(sys.state_of(1, 0x100), Shareable);
    assert_eq!(sys.read(1, 0x100, 4), vec![6; 4]);
    // Both copies and memory agree: flushing both is silent.
    let writes = sys.bus_stats().writes;
    sys.flush(0, 0x100);
    sys.flush(1, 0x100);
    assert_eq!(sys.bus_stats().writes, writes, "clean copies drop silently");
    assert_eq!(sys.read(0, 0x100, 4), vec![6; 4], "memory had it");
}

#[test]
fn firefly_writer_regains_exclusivity_when_sharers_vanish() {
    let mut sys = homogeneous("firefly", 2);
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4);
    sys.flush(1, 0x100);
    sys.write(0, 0x100, &[7; 4]); // broadcast, no CH back -> E
    assert_eq!(sys.state_of(0, 0x100), Exclusive);
    sys.write(0, 0x100, &[8; 4]); // now silent E -> M
    assert_eq!(sys.state_of(0, 0x100), Modified);
}

#[test]
fn firefly_dirty_read_pushes_via_e() {
    let mut sys = homogeneous("firefly", 2);
    sys.read(0, 0x100, 4);
    sys.write(0, 0x100, &[9; 4]); // E -> M silently
    assert_eq!(sys.state_of(0, 0x100), Modified);
    let v = sys.read(1, 0x100, 4);
    assert_eq!(v, vec![9; 4]);
    // Table 7: BS;E,CA,W then the retried read demotes E -> S.
    assert_eq!(sys.state_of(0, 0x100), Shareable);
    assert_eq!(sys.state_of(1, 0x100), Shareable);
    assert_eq!(sys.bus_stats().aborts, 1);
}

#[test]
fn adapted_protocols_never_leave_memory_stale_in_s_or_e() {
    // The defining property of the adapted protocols: after any access, every
    // S or E copy matches main memory (their S/E are memory-consistent).
    for protocol in ["write-once", "illinois", "firefly", "synapse"] {
        let mut sys = homogeneous(protocol, 3);
        drive(&mut sys, 300, 17);
        // The oracle already checks E-vs-memory; additionally check S here.
        for cpu in 0..sys.nodes() {
            let shared_lines: Vec<(u64, Box<[u8]>)> = sys
                .controller(cpu)
                .cache()
                .map(|cache| {
                    cache
                        .iter()
                        .filter(|(_, e)| e.state == Shareable)
                        .map(|(addr, e)| (addr, e.data.clone()))
                        .collect()
                })
                .unwrap_or_default();
            for (addr, got) in shared_lines {
                let current = sys.read(cpu, addr, LINE);
                assert_eq!(&got[..], &current[..], "{protocol}: stale S at {addr:#x}");
            }
        }
    }
}

#[test]
fn homogeneous_adapted_systems_survive_random_workloads() {
    for protocol in ["write-once", "illinois", "firefly", "synapse"] {
        for seed in 0..4 {
            let mut sys = homogeneous(protocol, 4);
            drive(&mut sys, 250, seed);
            assert!(
                sys.bus_stats().transactions > 0,
                "{protocol} seed {seed}: no traffic?"
            );
        }
    }
}

#[test]
fn write_once_always_pushing_variant_works_too() {
    use moesi::protocols::WriteOnce;
    let cfg = CacheConfig::new(2048, LINE, 2, ReplacementKind::Lru);
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(WriteOnce::always_pushing()), cfg)
        .cache(Box::new(WriteOnce::always_pushing()), cfg)
        .build();
    sys.write(0, 0x100, &[1; 4]);
    sys.write(1, 0x100, &[2; 4]); // write miss on dirty: BS push, then retry
    assert!(sys.bus_stats().aborts >= 1);
    assert_eq!(sys.read(0, 0x100, 4), vec![2; 4]);
    drive(&mut sys, 200, 3);
}
