//! Golden-trace differential tests pinning the bus engine's behaviour.
//!
//! Each scenario runs a fixed-seed workload on a fixed machine with tracing
//! enabled and compares the *byte-exact* rendered `BusTrace`, the final
//! `BusStats`, and every node's `CpuStats` against a fixture recorded under
//! `tests/fixtures/golden/`. The fixtures were captured from the pre-phase
//! monolithic engine, so any refactor of the transaction pipeline (the
//! `Arbitrate → AddressBroadcast → SnoopResolve → Abort/Backoff →
//! DataTransfer → Commit` split) must reproduce the old engine's output to
//! the byte — ordering of trace records, nanosecond accounting, abort counts
//! and fault bookkeeping included.
//!
//! To re-record after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::fault::{FaultConfig, FaultPlan};
use moesi::protocols::by_name;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, System, SystemBuilder};
use std::fmt::Write as _;
use std::path::PathBuf;

const SEED: u64 = 7;
const CPUS: usize = 3;
const STEPS: u64 = 250;
const LINE: usize = 16;
const CACHE_BYTES: usize = 512;

/// The protocols whose engine interaction the fixtures pin: the four
/// campaign protocols plus two BS-using adapted ones (abort-push paths).
const PINNED_PROTOCOLS: &[&str] = &[
    "moesi",
    "dragon",
    "write-through",
    "berkeley",
    "illinois",
    "write-once",
];

fn build(protocol: &str) -> System {
    let cfg = CacheConfig::new(CACHE_BYTES, LINE, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(LINE).seed(SEED);
    for i in 0..CPUS {
        b = b.cache(
            by_name(protocol, SEED.wrapping_add(i as u64)).expect("known protocol"),
            cfg,
        );
    }
    b.build()
}

fn streams() -> Vec<Box<dyn RefStream + Send>> {
    (0..CPUS)
        .map(|cpu| -> Box<dyn RefStream + Send> {
            Box::new(DuboisBriggs::new(
                cpu,
                SharingModel {
                    line_size: LINE as u64,
                    ..SharingModel::default()
                },
                SEED,
            ))
        })
        .collect()
}

/// Renders everything the fixture pins: the full trace, the bus counters and
/// the per-node counters.
fn snapshot(sys: &System) -> String {
    let mut out = String::new();
    out.push_str(&sys.trace().render());
    let _ = writeln!(out, "bus_stats: {:?}", sys.bus_stats());
    for cpu in 0..sys.nodes() {
        let _ = writeln!(out, "cpu{cpu}: {:?}", sys.stats(cpu));
    }
    out
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(format!("{name}.txt"))
}

fn assert_matches_fixture(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        std::fs::write(&path, got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run GOLDEN_BLESS=1",
            path.display()
        )
    });
    if want != got {
        let first_diff = want
            .lines()
            .zip(got.lines())
            .position(|(w, g)| w != g)
            .unwrap_or_else(|| want.lines().count().min(got.lines().count()));
        panic!(
            "golden trace `{name}` diverged from {} at line {} —\n  fixture: {:?}\n  engine:  {:?}\n\
             (re-record with GOLDEN_BLESS=1 only for an intentional behaviour change)",
            path.display(),
            first_diff + 1,
            want.lines().nth(first_diff).unwrap_or("<eof>"),
            got.lines().nth(first_diff).unwrap_or("<eof>"),
        );
    }
}

fn run_clean(protocol: &str) -> String {
    let mut sys = build(protocol);
    sys.enable_trace(1 << 16);
    let mut streams = streams();
    sys.run(&mut streams, STEPS);
    snapshot(&sys)
}

#[test]
fn golden_traces_per_protocol_are_stable() {
    for protocol in PINNED_PROTOCOLS {
        let got = run_clean(protocol);
        assert!(
            got.contains("READ") || got.contains("WRITE"),
            "{protocol}: scenario produced no bus traffic"
        );
        assert_matches_fixture(&format!("clean_{protocol}"), &got);
    }
}

/// The faulty scenario pins the recovery paths too: glitch filtering, abort
/// storms under backoff, watchdog retirements (with their salvage pushes and
/// recovery invalidates) and soft-error corruption records.
#[test]
fn golden_trace_under_faults_is_stable() {
    let mut sys = build("moesi");
    sys.enable_trace(1 << 16);
    sys.fabric_mut()
        .bus_mut()
        .inject_faults(FaultPlan::new(FaultConfig {
            seed: 0xFA_017,
            glitch_rate: 0.25,
            stall_rate: 0.002,
            kill_rate: 0.002,
            storm_rate: 0.08,
            corrupt_rate: 0.10,
            max_storm_rounds: 3,
            ..FaultConfig::default()
        }));
    let mut streams = streams();
    sys.run(&mut streams, STEPS);
    let got = snapshot(&sys);
    for marker in ["GLTCH", "CORPT"] {
        assert!(got.contains(marker), "faulty scenario never hit {marker}");
    }
    assert_matches_fixture("faulty_moesi", &got);
}
