//! E1 — the paper's headline claim (§3.4): any mixture of protocols from the
//! compatible class maintains consistency, even a board that selects its
//! action at random from the permitted set on every event.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::{
    Berkeley, Dragon, MoesiInvalidating, MoesiPreferred, NonCaching, PuzakRefinement, RandomPolicy,
    WriteThrough,
};
use moesi::{CacheKind, Protocol};
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, System, SystemBuilder};

const LINE: usize = 32;

fn cfg() -> CacheConfig {
    CacheConfig::new(1024, LINE, 2, ReplacementKind::Lru)
}

fn class_member(i: usize, seed: u64) -> (Box<dyn Protocol + Send>, bool) {
    // Cycle deterministically through every class member; bool = caching.
    match i % 9 {
        0 => (Box::new(MoesiPreferred::new()), true),
        1 => (Box::new(MoesiInvalidating::new()), true),
        2 => (Box::new(Berkeley::new()), true),
        3 => (Box::new(Dragon::new()), true),
        4 => (Box::new(PuzakRefinement::new()), true),
        5 => (Box::new(WriteThrough::new()), true),
        6 => (Box::new(WriteThrough::non_broadcasting()), true),
        7 => (Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)), true),
        _ => (Box::new(NonCaching::new()), false),
    }
}

fn mixed_system(members: &[usize], seed: u64) -> System {
    let mut b = SystemBuilder::new(LINE).checking(true).seed(seed);
    for (slot, &i) in members.iter().enumerate() {
        let (p, caching) = class_member(i, seed.wrapping_add(slot as u64));
        b = if caching {
            b.cache(p, cfg())
        } else {
            b.uncached(p)
        };
    }
    b.build()
}

fn drive(sys: &mut System, steps: u64, seed: u64) {
    let model = SharingModel {
        shared_lines: 6,
        private_lines: 24,
        p_shared: 0.5,
        p_write: 0.4,
        p_rereference: 0.3,
        line_size: LINE as u64,
    };
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..sys.nodes())
        .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, seed)) as _)
        .collect();
    sys.run(&mut streams, steps);
    sys.verify().expect("class members must stay consistent");
}

#[test]
fn every_class_member_pair_coexists() {
    // All 9x9 ordered pairs of class members share a bus with heavy sharing.
    for a in 0..9usize {
        for b in 0..9usize {
            if a % 9 == 8 && b % 9 == 8 {
                continue; // two non-caching nodes exercise nothing cache-y
            }
            let mut sys = mixed_system(&[a, b], 42);
            drive(&mut sys, 150, (a * 9 + b) as u64);
        }
    }
}

#[test]
fn full_house_of_class_members_is_consistent() {
    let mut sys = mixed_system(&[0, 1, 2, 3, 4, 5, 6, 7, 8], 7);
    drive(&mut sys, 400, 7);
}

#[test]
fn all_random_policies_is_consistent() {
    // The extreme of the extreme case: every cache rolls dice on every event.
    let mut b = SystemBuilder::new(LINE).checking(true);
    for i in 0..5u64 {
        b = b.cache(
            Box::new(RandomPolicy::new(CacheKind::CopyBack, 100 + i)),
            cfg(),
        );
    }
    let mut sys = b.build();
    for seed in 0..3 {
        drive(&mut sys, 300, seed);
    }
}

#[test]
fn random_write_through_and_non_caching_randoms_mix() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(RandomPolicy::new(CacheKind::CopyBack, 1)), cfg())
        .cache(
            Box::new(RandomPolicy::new(CacheKind::WriteThrough, 2)),
            cfg(),
        )
        .uncached(Box::new(RandomPolicy::new(CacheKind::NonCaching, 3)))
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .build();
    drive(&mut sys, 400, 11);
}

#[test]
fn sequential_writes_are_observed_in_order_by_every_node() {
    let mut sys = mixed_system(&[0, 3, 5, 7, 8], 13);
    let addr = 0x1000;
    for round in 0..40u32 {
        let writer = (round as usize) % sys.nodes();
        sys.write(writer, addr, &round.to_le_bytes());
        for reader in 0..sys.nodes() {
            let got = sys.read(reader, addr, 4);
            assert_eq!(
                got,
                round.to_le_bytes().to_vec(),
                "round {round}, reader {reader}"
            );
        }
    }
}

#[test]
fn many_seeds_many_mixes() {
    // A broad randomized sweep: different mixes, seeds and sharing levels.
    for seed in 0..8u64 {
        let members: Vec<usize> = (0..4).map(|i| ((seed as usize) * 3 + i * 2) % 9).collect();
        let mut sys = mixed_system(&members, seed);
        drive(&mut sys, 200, seed * 31);
    }
}
