//! Fault injection: deliberately out-of-class boards must be *caught* by the
//! consistency oracle. A checker that never fires is worthless — these tests
//! prove each §3.1 invariant actually trips when a board misbehaves in the
//! corresponding way.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::MoesiPreferred;
use moesi::{
    BusEvent, BusReaction, CacheKind, LineState, LocalAction, LocalCtx, LocalEvent, Protocol,
    SnoopCtx,
};
use mpsim::{System, SystemBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};

const LINE: usize = 32;

fn cfg() -> CacheConfig {
    CacheConfig::new(1024, LINE, 2, ReplacementKind::Lru)
}

/// Wraps the preferred protocol, overriding one behaviour to break it.
struct Broken<F, G>
where
    F: FnMut(&mut MoesiPreferred, LineState, LocalEvent) -> LocalAction,
    G: FnMut(&mut MoesiPreferred, LineState, BusEvent) -> BusReaction,
{
    inner: MoesiPreferred,
    local: F,
    bus: G,
}

impl<F, G> Protocol for Broken<F, G>
where
    F: FnMut(&mut MoesiPreferred, LineState, LocalEvent) -> LocalAction,
    G: FnMut(&mut MoesiPreferred, LineState, BusEvent) -> BusReaction,
{
    fn name(&self) -> &str {
        "broken"
    }
    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }
    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        (self.local)(&mut self.inner, state, event)
    }
    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        (self.bus)(&mut self.inner, state, event)
    }
}

fn default_local(p: &mut MoesiPreferred, s: LineState, e: LocalEvent) -> LocalAction {
    p.on_local(s, e, &LocalCtx::default())
}

fn default_bus(p: &mut MoesiPreferred, s: LineState, e: BusEvent) -> BusReaction {
    p.on_bus(s, e, &SnoopCtx::default())
}

fn violation_of(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = catch_unwind(f).expect_err("the oracle must catch the fault");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn ignoring_invalidations_is_caught() {
    // The board refuses to invalidate on a snooped read-for-modify (col 6):
    // the writer then holds M next to a surviving (stale) copy, so the oracle
    // reports either the exclusivity breach or the stale copy — both correct.
    let broken = Broken {
        inner: MoesiPreferred::new(),
        local: default_local,
        bus: |p: &mut MoesiPreferred, s: LineState, e: BusEvent| {
            if e == BusEvent::CacheReadInvalidate && s.is_unowned_valid() {
                // "I keep my copy, thanks."
                BusReaction::hit(LineState::Shareable)
            } else {
                default_bus(p, s, e)
            }
        },
    };
    let msg = violation_of(AssertUnwindSafe(move || {
        let mut sys = SystemBuilder::new(LINE)
            .checking(true)
            .cache(Box::new(broken), cfg())
            .cache(Box::new(moesi::protocols::MoesiInvalidating::new()), cfg())
            .build();
        sys.read(0, 0x100, 4); // broken board caches the line
        sys.write(1, 0x100, &[9; 4]); // RWITM; broken board keeps its copy
        let _ = sys.read(0, 0x100, 4); // reads the stale value
    }));
    assert!(
        msg.contains("stale") || msg.contains("exclusivity") || msg.contains("claims"),
        "wrong violation: {msg}"
    );
}

#[test]
fn claiming_exclusivity_next_to_a_sharer_is_caught() {
    // The board answers a read miss with E even though CH was asserted.
    let broken = Broken {
        inner: MoesiPreferred::new(),
        local: |p: &mut MoesiPreferred, s: LineState, e: LocalEvent| {
            if s == LineState::Invalid && e == LocalEvent::Read {
                LocalAction::new(
                    LineState::Exclusive, // unconditionally E: wrong
                    moesi::MasterSignals::CA,
                    moesi::BusOp::Read,
                )
            } else {
                default_local(p, s, e)
            }
        },
        bus: default_bus,
    };
    let msg = violation_of(AssertUnwindSafe(move || {
        let mut sys = SystemBuilder::new(LINE)
            .checking(true)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(broken), cfg())
            .build();
        sys.read(0, 0x100, 4); // honest board holds the line
        sys.read(1, 0x100, 4); // broken board claims E next to it
    }));
    assert!(
        msg.contains("exclusivity") || msg.contains("claims"),
        "wrong violation: {msg}"
    );
}

#[test]
fn double_ownership_is_caught() {
    // The board grabs ownership on a read miss (result M instead of S/E)
    // while the previous owner legitimately keeps O.
    let broken = Broken {
        inner: MoesiPreferred::new(),
        local: |p: &mut MoesiPreferred, s: LineState, e: LocalEvent| {
            if s == LineState::Invalid && e == LocalEvent::Read {
                LocalAction::new(
                    LineState::Owned, // steals ownership without the right
                    moesi::MasterSignals::CA,
                    moesi::BusOp::Read,
                )
            } else {
                default_local(p, s, e)
            }
        },
        bus: default_bus,
    };
    let msg = violation_of(AssertUnwindSafe(move || {
        let mut sys = SystemBuilder::new(LINE)
            .checking(true)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(broken), cfg())
            .build();
        sys.write(0, 0x100, &[1; 4]); // cpu0: M
        sys.read(1, 0x100, 4); // cpu0 -> O (intervenes); broken claims O too
    }));
    assert!(
        msg.contains("multiple") || msg.contains("owned by"),
        "wrong violation: {msg}"
    );
}

#[test]
fn dropping_dirty_data_is_caught_as_stale_memory() {
    // The board silently discards a Modified line instead of writing back.
    let broken = Broken {
        inner: MoesiPreferred::new(),
        local: |p: &mut MoesiPreferred, s: LineState, e: LocalEvent| {
            if s == LineState::Modified && e == LocalEvent::Flush {
                LocalAction::silent(LineState::Invalid) // data loss!
            } else {
                default_local(p, s, e)
            }
        },
        bus: default_bus,
    };
    let msg = violation_of(AssertUnwindSafe(move || {
        let mut sys = SystemBuilder::new(LINE)
            .checking(true)
            .cache(Box::new(broken), cfg())
            .build();
        sys.write(0, 0x100, &[7; 4]);
        sys.flush(0, 0x100); // drops the only copy of the data
    }));
    assert!(
        msg.contains("memory is stale") || msg.contains("unowned"),
        "wrong violation: {msg}"
    );
}

#[test]
fn refusing_to_update_on_a_connected_broadcast_is_caught() {
    // The board asserts SL (so the writer believes it updated) but throws the
    // payload away and keeps its old data.
    struct KeepStale {
        inner: MoesiPreferred,
    }
    impl Protocol for KeepStale {
        fn name(&self) -> &str {
            "keep-stale"
        }
        fn kind(&self) -> CacheKind {
            CacheKind::CopyBack
        }
        fn on_local(&mut self, s: LineState, e: LocalEvent, c: &LocalCtx) -> LocalAction {
            self.inner.on_local(s, e, c)
        }
        fn on_bus(&mut self, s: LineState, e: BusEvent, c: &SnoopCtx) -> BusReaction {
            let r = self.inner.on_bus(s, e, c);
            if e == BusEvent::CacheBroadcastWrite && s == LineState::Shareable {
                // Keep the copy but do not connect: the data silently rots.
                BusReaction { sl: false, ..r }
            } else {
                r
            }
        }
    }
    let msg = violation_of(AssertUnwindSafe(move || {
        let mut sys = SystemBuilder::new(LINE)
            .checking(true)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(
                Box::new(KeepStale {
                    inner: MoesiPreferred::new(),
                }),
                cfg(),
            )
            .build();
        sys.read(0, 0x100, 4);
        sys.read(1, 0x100, 4); // both S
        sys.write(0, 0x100, &[5; 4]); // broadcast; board 1 keeps stale data
        let _ = sys.read(1, 0x100, 4);
    }));
    assert!(msg.contains("stale"), "wrong violation: {msg}");
}

#[test]
fn honest_systems_never_trip_these_alarms() {
    // Sanity: the identical scenarios with honest boards pass.
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .build();
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4);
    sys.write(1, 0x100, &[9; 4]);
    sys.write(0, 0x100, &[1; 4]);
    sys.flush(0, 0x100);
    let _ = sys.read(1, 0x100, 4);
    sys.verify().expect("honest boards are consistent");
}

/// Keep `System` in scope for rustdoc links in the module comment.
#[allow(dead_code)]
fn _ty(_: &System) {}
