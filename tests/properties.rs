//! Property-based tests (proptest) over the whole stack: random operation
//! sequences against mixed-protocol systems must preserve the shared memory
//! image, and the pure layers must uphold their structural invariants under
//! arbitrary inputs.

use cache_array::{split_line_crossers, CacheConfig, ReplacementKind};
use moesi::protocols::{
    Berkeley, Dragon, MoesiInvalidating, MoesiPreferred, NonCaching, PuzakRefinement, RandomPolicy,
    WriteThrough,
};
use moesi::{table, BusEvent, CacheKind, LineState, LocalEvent, Protocol};
use mpsim::{System, SystemBuilder};
use proptest::prelude::*;

const LINE: usize = 32;

/// One scripted operation against the system.
#[derive(Clone, Debug)]
enum Op {
    Read {
        cpu: usize,
        line: u64,
        offset: u64,
        len: usize,
    },
    Write {
        cpu: usize,
        line: u64,
        offset: u64,
        val: u8,
        len: usize,
    },
    Flush {
        cpu: usize,
        line: u64,
    },
    Pass {
        cpu: usize,
        line: u64,
    },
}

fn op_strategy(cpus: usize, lines: u64) -> impl Strategy<Value = Op> {
    let cpu = 0..cpus;
    let line = 0..lines;
    prop_oneof![
        (cpu.clone(), line.clone(), 0u64..7, 1usize..5).prop_map(|(cpu, line, offset, len)| {
            Op::Read {
                cpu,
                line,
                offset: offset * 4,
                len,
            }
        }),
        (cpu.clone(), line.clone(), 0u64..7, any::<u8>(), 1usize..5).prop_map(
            |(cpu, line, offset, val, len)| Op::Write {
                cpu,
                line,
                offset: offset * 4,
                val,
                len
            }
        ),
        (cpu.clone(), line.clone()).prop_map(|(cpu, line)| Op::Flush { cpu, line }),
        (cpu, line).prop_map(|(cpu, line)| Op::Pass { cpu, line }),
    ]
}

fn apply(sys: &mut System, op: &Op) {
    let base = 0x1000;
    match *op {
        Op::Read {
            cpu,
            line,
            offset,
            len,
        } => {
            let _ = sys.read(cpu, base + line * LINE as u64 + offset, len);
        }
        Op::Write {
            cpu,
            line,
            offset,
            val,
            len,
        } => {
            sys.write(cpu, base + line * LINE as u64 + offset, &vec![val; len]);
        }
        Op::Flush { cpu, line } => {
            sys.flush(cpu, base + line * LINE as u64);
        }
        Op::Pass { cpu, line } => {
            sys.pass(cpu, base + line * LINE as u64);
        }
    }
}

fn cfg() -> CacheConfig {
    CacheConfig::new(512, LINE, 2, ReplacementKind::Lru)
}

fn mixed_system(seed: u64) -> System {
    // Small caches force evictions; the checker is on, so every operation is
    // audited and reads are compared against the golden image.
    SystemBuilder::new(LINE)
        .checking(true)
        .seed(seed)
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .cache(Box::new(Berkeley::new()), cfg())
        .cache(Box::new(Dragon::new()), cfg())
        .cache(Box::new(PuzakRefinement::new()), cfg())
        .cache(Box::new(WriteThrough::new()), cfg())
        .cache(
            Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
            cfg(),
        )
        .uncached(Box::new(NonCaching::new()))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_op_sequences_preserve_consistency(
        ops in proptest::collection::vec(op_strategy(8, 6), 1..120),
        seed in 0u64..1000,
    ) {
        let mut sys = mixed_system(seed);
        for op in &ops {
            apply(&mut sys, op); // panics (fails the test) on any violation
        }
        prop_assert!(sys.verify().is_ok());
    }

    #[test]
    fn last_write_wins_for_every_reader(
        writes in proptest::collection::vec((0usize..4, any::<u8>()), 1..40),
    ) {
        let mut sys = mixed_system(1);
        let addr = 0x1000;
        let mut last = None;
        for (cpu, val) in writes {
            sys.write(cpu, addr, &[val; 4]);
            last = Some(val);
        }
        let expected = vec![last.expect("non-empty"); 4];
        for cpu in 0..sys.nodes() {
            prop_assert_eq!(sys.read(cpu, addr, 4), expected.clone());
        }
    }

    #[test]
    fn line_crosser_pieces_partition_any_access(
        addr in 0u64..10_000,
        size in 0usize..400,
        line_pow in 3u32..9,
    ) {
        let line = 1usize << line_pow;
        let pieces = split_line_crossers(addr, size, line);
        let total: usize = pieces.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, size);
        let mut cursor = addr;
        for (a, l) in pieces {
            prop_assert_eq!(a, cursor);
            prop_assert!(l > 0);
            // Each piece fits within one line.
            prop_assert_eq!(a / line as u64, (a + l as u64 - 1) / line as u64);
            cursor += l as u64;
        }
    }

    #[test]
    fn permitted_bus_results_never_create_second_owners_from_nothing(
        state_idx in 0usize..5,
        event_idx in 0usize..6,
        ch in any::<bool>(),
    ) {
        let state = LineState::ALL[state_idx];
        let event = BusEvent::ALL[event_idx];
        for reaction in table::permitted_bus(state, event) {
            if reaction.busy.is_some() {
                continue;
            }
            let result = reaction.result.resolve(ch);
            // Ownership cannot be conjured by snooping.
            if !state.is_owned() {
                prop_assert!(!result.is_owned());
            }
            // Validity cannot be conjured by snooping either.
            if !state.is_valid() {
                prop_assert!(!result.is_valid());
            }
        }
    }

    #[test]
    fn permitted_local_never_silently_modifies_shared_data(
        state_idx in 0usize..5,
        kind_idx in 0usize..3,
    ) {
        let state = LineState::ALL[state_idx];
        let kind = CacheKind::ALL[kind_idx];
        for action in table::permitted_local(state, LocalEvent::Write, kind) {
            if state.is_non_exclusive() {
                prop_assert!(
                    action.bus_op.uses_bus(),
                    "silent write to non-exclusive {} under {:?}", state, kind
                );
            }
        }
    }

    #[test]
    fn random_policy_is_always_in_class(seed in any::<u64>()) {
        for kind in CacheKind::ALL {
            let mut p = RandomPolicy::new(kind, seed);
            let report = moesi::compat::check_protocol(&mut p);
            prop_assert!(report.is_class_member(), "{}", report);
        }
    }

    #[test]
    fn sector_cache_valid_subsectors_never_exceed_capacity(
        installs in proptest::collection::vec((0u64..2_048, 0usize..3), 1..80),
    ) {
        use cache_array::SectorCache;
        let mut sc: SectorCache<u8> = SectorCache::new(4, 64, 16);
        for (addr, state) in installs {
            sc.install(addr * 4, state as u8);
            prop_assert!(sc.valid_subsectors() <= 4 * 4);
        }
    }
}

#[test]
fn protocol_trait_objects_are_usable_generically() {
    // C-OBJECT: the Protocol trait must work as a trait object.
    let mut protocols: Vec<Box<dyn Protocol + Send>> = vec![
        Box::new(MoesiPreferred::new()),
        Box::new(Dragon::new()),
        Box::new(WriteThrough::new()),
    ];
    for p in &mut protocols {
        let _ = p.name();
        let _ = p.kind();
        let a = p.on_local(
            LineState::Invalid,
            LocalEvent::Read,
            &moesi::LocalCtx::default(),
        );
        assert!(a.bus_op.uses_bus());
    }
}
