//! Cross-crate checks of the Futurebus data-path semantics that the paper's
//! protocol adaptations hinge on (§2, §4).

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::{TimingConfig, BROADCAST_PENALTY_NS};
use moesi::protocols::{MoesiInvalidating, MoesiPreferred, NonCaching, WriteThrough};
use mpsim::{System, SystemBuilder};

const LINE: usize = 32;

fn cfg() -> CacheConfig {
    CacheConfig::new(2048, LINE, 2, ReplacementKind::Lru)
}

fn sys2() -> System {
    SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .build()
}

#[test]
fn intervention_does_not_update_memory() {
    // The Futurebus limitation that forces the Write-Once/Illinois/Firefly
    // adaptations (§4.3): cache-to-cache transfers leave memory stale.
    let mut sys = sys2();
    sys.write(0, 0x100, &[1; 4]);
    let mem_writes_before = sys.bus_stats().memory_writes;
    sys.read(1, 0x100, 4); // served by intervention
    assert_eq!(sys.bus_stats().interventions, 1);
    assert_eq!(
        sys.bus_stats().memory_writes,
        mem_writes_before,
        "intervention must not update memory"
    );
    // The owner (O) is still responsible; the oracle confirms consistency.
    sys.verify().expect("owner covers the stale memory");
}

#[test]
fn broadcast_write_updates_memory_and_third_parties() {
    // §4.2: "when a broadcast write is done on the Futurebus, it affects all
    // caches holding the line and also main memory."
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .build();
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4);
    sys.read(2, 0x100, 4);
    let mem_w = sys.bus_stats().memory_writes;
    let sl = sys.bus_stats().sl_updates;
    sys.write(0, 0x100, &[9; 4]); // broadcast
    assert_eq!(sys.bus_stats().memory_writes, mem_w + 1);
    assert_eq!(
        sys.bus_stats().sl_updates,
        sl + 2,
        "both third parties connect"
    );
    assert_eq!(sys.stats(1).updates_received, 1);
    assert_eq!(sys.stats(2).updates_received, 1);
}

#[test]
fn non_broadcast_uncached_write_without_owner_reaches_memory() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .uncached(Box::new(NonCaching::new()))
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .build();
    sys.write(0, 0x100, &[4; 4]);
    assert_eq!(sys.bus_stats().memory_writes, 1);
    assert_eq!(sys.bus_stats().captures, 0);
    assert_eq!(sys.read(1, 0x100, 4), vec![4; 4]);
}

#[test]
fn non_broadcast_uncached_write_with_owner_is_captured() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .uncached(Box::new(NonCaching::new()))
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .build();
    sys.write(1, 0x100, &[5; 4]); // cache owns it (M)
    let mem_w = sys.bus_stats().memory_writes;
    sys.write(0, 0x100, &[6; 4]); // uncached write: captured, memory preempted
    assert_eq!(sys.bus_stats().captures, 1);
    assert_eq!(sys.bus_stats().memory_writes, mem_w);
    assert_eq!(sys.read(1, 0x100, 4), vec![6; 4]);
}

#[test]
fn address_only_invalidate_moves_no_data() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .build();
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4);
    let bytes = sys.bus_stats().bytes_moved;
    sys.write(0, 0x100, &[1; 4]); // S -> M via address-only invalidate
    assert_eq!(sys.bus_stats().address_only, 1);
    assert_eq!(sys.bus_stats().bytes_moved, bytes, "no data phase");
}

#[test]
fn broadcast_transactions_pay_the_25ns_penalty() {
    // Identical single-word writes, broadcast vs not: the difference per
    // transaction is exactly the wired-OR filter penalty.
    let mut bcast = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(WriteThrough::new()), cfg())
        .build();
    let mut plain = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(WriteThrough::non_broadcasting()), cfg())
        .build();
    bcast.read(0, 0x100, 4);
    plain.read(0, 0x100, 4);
    let b0 = bcast.bus_stats().busy_ns;
    let p0 = plain.bus_stats().busy_ns;
    bcast.write(0, 0x100, &[1; 4]);
    plain.write(0, 0x100, &[1; 4]);
    let b_cost = bcast.bus_stats().busy_ns - b0;
    let p_cost = plain.bus_stats().busy_ns - p0;
    assert_eq!(b_cost - p_cost, BROADCAST_PENALTY_NS);
}

#[test]
fn timing_config_scales_simulated_time_not_behaviour() {
    let fast = TimingConfig::default();
    let slow = TimingConfig {
        memory_latency_ns: 3000,
        data_beat_ns: 500,
        ..TimingConfig::default()
    };
    let run = |timing: TimingConfig| {
        let mut sys = SystemBuilder::new(LINE)
            .checking(true)
            .timing(timing)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .build();
        for i in 0..20u32 {
            sys.write(
                (i % 2) as usize,
                0x100 + u64::from(i % 4) * 32,
                &i.to_le_bytes(),
            );
            let _ = sys.read(((i + 1) % 2) as usize, 0x100 + u64::from(i % 4) * 32, 4);
        }
        (sys.bus_stats().transactions, sys.bus_stats().busy_ns)
    };
    let (txns_fast, ns_fast) = run(fast);
    let (txns_slow, ns_slow) = run(slow);
    assert_eq!(txns_fast, txns_slow, "timing must not change behaviour");
    assert!(
        ns_slow > ns_fast * 3,
        "slow memory must show up in the clock"
    );
}

#[test]
fn bus_stats_reconcile_with_cpu_stats() {
    let mut sys = sys2();
    for i in 0..30u32 {
        let cpu = (i % 2) as usize;
        if i % 3 == 0 {
            sys.write(cpu, 0x100 + u64::from(i % 5) * 32, &i.to_le_bytes());
        } else {
            let _ = sys.read(cpu, 0x100 + u64::from(i % 5) * 32, 4);
        }
    }
    let total = sys.total_stats();
    let bus = sys.bus_stats();
    // Every bus transaction was mastered by some CPU; pushes are initiated by
    // the bus on behalf of snoopers, and there are none in a MOESI system.
    assert_eq!(total.bus_transactions, bus.transactions);
    assert_eq!(bus.aborts, 0);
    assert_eq!(
        total.interventions_supplied, bus.interventions,
        "every intervention has a supplier"
    );
}
