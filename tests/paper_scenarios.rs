//! Scripted walk-throughs of the behaviours §3.3 enumerates, items 1–8,
//! plus the ownership-transfer chains the state model implies.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::{MoesiInvalidating, MoesiPreferred, NonCaching, WriteThrough};
use moesi::LineState::{Exclusive, Invalid, Modified, Owned, Shareable};
use mpsim::{System, SystemBuilder};

const LINE: usize = 32;

fn cfg() -> CacheConfig {
    CacheConfig::new(2048, LINE, 2, ReplacementKind::Lru)
}

fn moesi_system(n: usize) -> System {
    let mut b = SystemBuilder::new(LINE).checking(true);
    for _ in 0..n {
        b = b.cache(Box::new(MoesiPreferred::new()), cfg());
    }
    b.build()
}

// §3.3 item 1: "A cache with a read miss places the data in S or E states
// depending on whether anyone else has that information in its local cache
// (via CH)."
#[test]
fn item1_read_miss_chooses_s_or_e_via_ch() {
    let mut sys = moesi_system(3);
    sys.read(0, 0x100, 4);
    assert_eq!(sys.state_of(0, 0x100), Exclusive, "no CH: E");
    sys.read(1, 0x100, 4);
    assert_eq!(sys.state_of(1, 0x100), Shareable, "CH from cpu0: S");
    assert_eq!(sys.state_of(0, 0x100), Shareable, "cpu0 demotes E->S");
    sys.read(2, 0x100, 4);
    assert_eq!(sys.state_of(2, 0x100), Shareable);
}

// §3.3 item 2: a writer to O/S data either broadcasts (remaining O or going
// M by CH) or invalidates and goes M.
#[test]
fn item2_shared_write_broadcast_or_invalidate() {
    // Broadcast flavour.
    let mut sys = moesi_system(2);
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4);
    sys.write(0, 0x100, &[1; 4]);
    assert_eq!(sys.state_of(0, 0x100), Owned, "CH seen -> O");
    assert_eq!(sys.state_of(1, 0x100), Shareable);

    // Invalidate flavour.
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .build();
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4);
    sys.write(0, 0x100, &[1; 4]);
    assert_eq!(sys.state_of(0, 0x100), Modified);
    assert_eq!(sys.state_of(1, 0x100), Invalid);
}

// §3.3 item 2 corner: a broadcaster whose sharers all vanished goes M.
#[test]
fn item2_broadcast_with_no_listeners_goes_m() {
    let mut sys = moesi_system(2);
    sys.read(0, 0x100, 4);
    sys.read(1, 0x100, 4); // both S
    sys.flush(1, 0x100); // sharer evicts silently
    sys.write(0, 0x100, &[2; 4]); // broadcast, but no CH comes back
    assert_eq!(sys.state_of(0, 0x100), Modified);
}

// §3.3 item 3: a write miss is one RWITM transaction (or Read>Write).
#[test]
fn item3_write_miss_invalidates_in_one_transaction() {
    let mut sys = moesi_system(3);
    sys.read(1, 0x100, 4);
    sys.read(2, 0x100, 4);
    let txns_before = sys.bus_stats().transactions;
    sys.write(0, 0x100, &[3; 4]);
    assert_eq!(sys.bus_stats().transactions - txns_before, 1, "one RWITM");
    assert_eq!(sys.state_of(0, 0x100), Modified);
    assert_eq!(sys.state_of(1, 0x100), Invalid);
    assert_eq!(sys.state_of(2, 0x100), Invalid);
}

// §3.3 item 4: an intervenient cache supplies on read miss, captures
// non-caching writes, relinquishes on broadcast writes, and supplies +
// invalidates on write misses.
#[test]
fn item4_intervenient_duties() {
    // Supply on read miss.
    let mut sys = moesi_system(2);
    sys.write(0, 0x100, &[4; 4]);
    assert_eq!(sys.state_of(0, 0x100), Modified);
    let before = sys.bus_stats().memory_reads;
    assert_eq!(sys.read(1, 0x100, 4), vec![4; 4]);
    assert_eq!(sys.bus_stats().memory_reads, before, "memory preempted");
    assert_eq!(sys.state_of(0, 0x100), Owned);

    // Supply and invalidate on a write miss elsewhere.
    let mut sys = moesi_system(2);
    sys.write(0, 0x100, &[5; 4]);
    sys.write(1, 0x100, &[6; 4]); // RWITM
    assert_eq!(sys.state_of(0, 0x100), Invalid);
    assert_eq!(sys.state_of(1, 0x100), Modified);
    assert_eq!(sys.read(1, 0x100, 4), vec![6; 4]);
}

// §3.3 item 5: non-intervenient snoopers demote to S on reads, invalidate on
// non-broadcast writes.
#[test]
fn item5_non_intervenient_reactions() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .uncached(Box::new(NonCaching::new()))
        .build();
    sys.read(0, 0x100, 4);
    assert_eq!(sys.state_of(0, 0x100), Exclusive);
    // Uncached read: E holder remains E (col 7).
    sys.read(1, 0x100, 4);
    assert_eq!(sys.state_of(0, 0x100), Exclusive);
    // Uncached write: E holder must invalidate (col 9).
    sys.write(1, 0x100, &[9; 4]);
    assert_eq!(sys.state_of(0, 0x100), Invalid);
    assert_eq!(sys.read(0, 0x100, 4), vec![9; 4]);
}

// §3.3 items 6-8: write-through cache behaviour.
#[test]
fn items6_to_8_write_through() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(WriteThrough::new()), cfg())
        .cache(Box::new(MoesiPreferred::new()), cfg())
        .build();
    // Item 7: read miss asserts CA and enters V(=S).
    sys.read(0, 0x100, 4);
    assert_eq!(sys.state_of(0, 0x100), Shareable);
    // Item 6: every write goes through the bus.
    let before = sys.bus_stats().writes;
    sys.write(0, 0x100, &[1; 4]);
    sys.write(0, 0x100, &[2; 4]);
    assert_eq!(sys.bus_stats().writes - before, 2);
    // Memory is current: a cold copy-back read gets it from memory.
    assert_eq!(sys.read(1, 0x100, 4), vec![2; 4]);
    // Item 8 (update flavour): cpu1 holds the line S, so its write is a
    // broadcast (col 8) and the V copy may update itself instead of dying.
    sys.write(1, 0x104, &[3; 4]);
    assert_eq!(sys.state_of(0, 0x100), Shareable);
    assert_eq!(sys.read(0, 0x104, 4), vec![3; 4]);
}

// §3.3 item 8 (invalidate flavour): "On a non-broadcast write (cols. 6, 9),
// it must become invalid, since it is not capable of intervention or
// ownership."
#[test]
fn item8_non_broadcast_write_kills_the_v_copy() {
    let mut sys = SystemBuilder::new(LINE)
        .checking(true)
        .cache(Box::new(WriteThrough::new()), cfg())
        .cache(Box::new(MoesiInvalidating::new()), cfg())
        .build();
    sys.read(0, 0x100, 4);
    assert_eq!(sys.state_of(0, 0x100), Shareable);
    // The invalidating peer write-misses: RWITM, column 6.
    sys.write(1, 0x104, &[3; 4]);
    assert_eq!(sys.state_of(0, 0x100), Invalid);
    assert_eq!(
        sys.read(0, 0x104, 4),
        vec![3; 4],
        "re-fetched after invalidate"
    );
}

// Ownership transfer chain: M -> O -> (new writer) -> ... the line's owner
// is always unique and always holds the latest data.
#[test]
fn ownership_migrates_cleanly_around_the_ring() {
    let mut sys = moesi_system(4);
    let addr = 0x200;
    for round in 0..12u32 {
        let writer = (round as usize) % 4;
        sys.write(writer, addr, &round.to_le_bytes());
        // Everyone reads; all copies converge to the new value.
        for reader in 0..4 {
            assert_eq!(sys.read(reader, addr, 4), round.to_le_bytes().to_vec());
        }
        let owners = (0..4).filter(|&c| sys.state_of(c, addr).is_owned()).count();
        assert!(owners <= 1, "round {round}: {owners} owners");
    }
}

// Pass (note 3) makes memory current while retaining the copy; a subsequent
// eviction of the now-clean line is silent.
#[test]
fn pass_cleans_the_line() {
    let mut sys = moesi_system(2);
    sys.write(0, 0x100, &[7; 4]);
    let wb_before = sys.bus_stats().writes;
    assert!(sys.pass(0, 0x100));
    assert_eq!(sys.bus_stats().writes, wb_before + 1);
    assert_eq!(sys.state_of(0, 0x100), Exclusive);
    // Flushing an E line is silent: no further bus write.
    let wb = sys.bus_stats().writes;
    sys.flush(0, 0x100);
    assert_eq!(sys.bus_stats().writes, wb);
    // And memory serves the next reader correctly.
    assert_eq!(sys.read(1, 0x100, 4), vec![7; 4]);
}

// An O owner's eviction write-back leaves the remaining S copies consistent
// with (now-current) memory.
#[test]
fn owner_eviction_leaves_sharers_valid() {
    let mut sys = moesi_system(2);
    sys.write(0, 0x000, &[1; 4]);
    sys.read(1, 0x000, 4); // cpu0: O, cpu1: S
    assert_eq!(sys.state_of(0, 0x000), Owned);
    sys.flush(0, 0x000); // push + discard
    assert_eq!(sys.state_of(0, 0x000), Invalid);
    assert_eq!(sys.state_of(1, 0x000), Shareable);
    assert_eq!(sys.read(1, 0x000, 4), vec![1; 4]);
    sys.verify().expect("consistent");
}

// Line crossers (§5.1): a misaligned write spans two lines owned by two
// different caches.
#[test]
fn line_crosser_spanning_two_owners() {
    let mut sys = moesi_system(3);
    sys.write(0, 0x0E0, &[1; 4]); // cpu0 owns line 0x0E0
    sys.write(1, 0x100, &[2; 4]); // cpu1 owns line 0x100
                                  // cpu2 writes 8 bytes straddling the boundary at 0x100.
    let bytes: Vec<u8> = (10..18).collect();
    sys.write(2, 0x0FC, &bytes);
    assert_eq!(sys.read(0, 0x0FC, 8), bytes);
    assert_eq!(sys.read(1, 0x0FC, 8), bytes);
    sys.verify().expect("consistent");
}
