//! Sharded runs are the benchmark of record, so their determinism contract
//! is load-bearing: a fixed address-region partition means the worker count
//! can never change a simulated result. These tests pin `--shards K` ≡
//! `--shards 1` byte for byte across every sharded surface — the benchmark
//! sweep, the scaling sweep, the fault campaign and the synth fitness
//! function — over several seeds.

use bench::sweep::{
    shard_scaling, strip_host_fields, sweep, sweep_json, table_fitness, SweepConfig,
};
use moesi::Protocol;
use mpsim::{campaign_report_json, run_campaign, CampaignConfig};

const SEEDS: [u64; 3] = [1, 7, 42];

fn sharded_config(seed: u64, shards: usize) -> SweepConfig {
    SweepConfig {
        protocols: vec!["moesi".into(), "dragon".into(), "write-through".into()],
        workloads: vec!["general".into(), "ping-pong".into()],
        cpus: 2,
        steps: 200,
        seed,
        shards,
        jobs: 1,
        ..SweepConfig::default()
    }
}

#[test]
fn sharded_sweep_is_byte_identical_across_worker_counts() {
    for seed in SEEDS {
        let one = sweep(&sharded_config(seed, 1)).unwrap();
        let four = sweep(&sharded_config(seed, 4)).unwrap();
        assert_eq!(one, four, "seed {seed}: rows diverged");
        // The full JSON document, host-side measurements stripped, must
        // match to the byte — the same check ci.sh runs on the committed
        // baseline.
        let json_one = strip_host_fields(&sweep_json(&sharded_config(seed, 1), &one));
        let json_four = strip_host_fields(&sweep_json(&sharded_config(seed, 4), &four));
        assert_eq!(json_one, json_four, "seed {seed}: JSON diverged");
    }
}

#[test]
fn stripping_host_fields_removes_every_volatile_key() {
    let cfg = sharded_config(7, 2);
    let rows = sweep(&cfg).unwrap();
    let stripped = strip_host_fields(&sweep_json(&cfg, &rows));
    for key in [
        "host_wall_ns",
        "host_cpu_ns",
        "host_critical_ns",
        "host_elapsed_ns",
        "engine_accesses_per_sec",
        "\"speedup\"",
    ] {
        assert!(!stripped.contains(key), "{key} survived stripping");
    }
    assert!(stripped.contains("\"protocol\""), "rows were destroyed");
}

#[test]
fn scaling_sweep_agrees_with_the_plain_sharded_sweep() {
    for seed in SEEDS {
        let cfg = sharded_config(seed, 1);
        let (rows, scaling) = shard_scaling(&cfg, &[1, 2, 4]).unwrap();
        let direct = sweep(&cfg).unwrap();
        assert_eq!(rows, direct, "seed {seed}: baseline rows diverged");
        assert_eq!(scaling.len(), 3);
        // Simulated totals are identical at every worker count; only the
        // host-side schedule varies.
        for row in &scaling {
            assert_eq!(row.accesses, scaling[0].accesses, "seed {seed}");
            assert_eq!(row.wall_ns, scaling[0].wall_ns, "seed {seed}");
            assert_eq!(row.busy_ns, scaling[0].busy_ns, "seed {seed}");
            assert_eq!(row.wait_ns, scaling[0].wait_ns, "seed {seed}");
            assert!(row.speedup > 0.0, "seed {seed}: empty speedup column");
        }
        // One worker cannot beat its own serial schedule.
        assert!((scaling[0].speedup - 1.0).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn sharded_fault_campaign_is_byte_identical_across_worker_counts() {
    for seed in SEEDS {
        let base = CampaignConfig {
            protocols: vec!["moesi".into(), "berkeley".into()],
            steps: 300,
            seed,
            jobs: 1,
            ..CampaignConfig::default()
        };
        let one = run_campaign(&CampaignConfig {
            shards: 1,
            ..base.clone()
        })
        .unwrap();
        let four = run_campaign(&CampaignConfig { shards: 4, ..base }).unwrap();
        assert_eq!(
            campaign_report_json(&one),
            campaign_report_json(&four),
            "seed {seed}: campaign diverged"
        );
    }
}

#[test]
fn sharded_fitness_is_byte_identical_across_worker_counts() {
    let table = *moesi::protocols::MoesiPreferred::new()
        .policy_table()
        .expect("moesi ships a policy table");
    for seed in SEEDS {
        let one = table_fitness(&sharded_config(seed, 1), table, "ping-pong").unwrap();
        let four = table_fitness(&sharded_config(seed, 4), table, "ping-pong").unwrap();
        assert_eq!(one, four, "seed {seed}: fitness row diverged");
        assert_eq!(
            one.accesses, four.accesses,
            "seed {seed}: simulated work diverged"
        );
    }
}
