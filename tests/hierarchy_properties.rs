//! Property-based testing of the §6 hierarchy: random operation sequences
//! across random cluster shapes must preserve the global shared memory
//! image, the hierarchy must be observationally identical to a flat machine,
//! and on deeper fabric trees the bridges' inclusion snoop filters must be
//! invisible to programs while their ledgers conserve every snoop.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::{Dragon, MoesiInvalidating, MoesiPreferred, WriteThrough};
use moesi::Protocol;
use mpsim::hierarchy::{HierarchicalSystem, HierarchyBuilder, TreeBuilder};
use mpsim::{System, SystemBuilder};
use proptest::prelude::*;

const LINE: usize = 32;

fn cfg() -> CacheConfig {
    CacheConfig::new(512, LINE, 2, ReplacementKind::Lru)
}

fn protocol(i: usize) -> Box<dyn Protocol + Send> {
    match i % 4 {
        0 => Box::new(MoesiPreferred::new()),
        1 => Box::new(MoesiInvalidating::new()),
        2 => Box::new(Dragon::new()),
        _ => Box::new(WriteThrough::new()),
    }
}

/// Builds a hierarchy of `shape[c]` nodes per cluster, protocols cycling.
fn hierarchy(shape: &[usize]) -> HierarchicalSystem {
    let mut b = HierarchyBuilder::new(LINE).checking(true);
    let mut k = 0;
    for &nodes in shape {
        b = b.cluster();
        for _ in 0..nodes {
            b = b.cache(protocol(k), cfg());
            k += 1;
        }
    }
    b.build()
}

/// A depth-3 fabric tree: 2 root subtrees x 2 leaf clusters x 2 caches,
/// protocols cycling, snoop filters on or off.
fn deep(filter: bool) -> HierarchicalSystem {
    let mut k = 0;
    TreeBuilder::uniform(LINE, 2, 3, 2, 2, |_, _| {
        let p = protocol(k);
        k += 1;
        (p, Some(cfg()))
    })
    .snoop_filter(filter)
    .checking(true)
    .build()
}

/// A flat machine with the same nodes in the same order.
fn flat(shape: &[usize]) -> System {
    let mut b = SystemBuilder::new(LINE).checking(true);
    let total: usize = shape.iter().sum();
    for k in 0..total {
        b = b.cache(protocol(k), cfg());
    }
    b.build()
}

#[derive(Clone, Debug)]
struct Op {
    node: usize,
    line: u64,
    offset: u64,
    write: Option<u8>,
}

fn ops_strategy(nodes: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0..nodes,
            0u64..6,
            0u64..7,
            proptest::option::of(any::<u8>()),
        )
            .prop_map(|(node, line, offset, write)| Op {
                node,
                line,
                offset: offset * 4,
                write,
            }),
        1..80,
    )
}

/// Maps a flat node index to (cluster, cpu) under `shape`.
fn locate(shape: &[usize], node: usize) -> (usize, usize) {
    let mut remaining = node;
    for (cluster, &n) in shape.iter().enumerate() {
        if remaining < n {
            return (cluster, remaining);
        }
        remaining -= n;
    }
    unreachable!("node index within total");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hierarchy_and_flat_machine_observe_identical_values(
        shape_idx in 0usize..3,
        ops in ops_strategy(4),
    ) {
        let shape: &[usize] = match shape_idx {
            0 => &[2, 2],
            1 => &[1, 3],
            _ => &[2, 1, 1],
        };
        let mut hier = hierarchy(shape);
        let mut plain = flat(shape);
        for op in &ops {
            let addr = 0x1000 + op.line * LINE as u64 + op.offset;
            let (cluster, cpu) = locate(shape, op.node);
            match op.write {
                Some(v) => {
                    hier.write(cluster, cpu, addr, &[v; 4]);
                    plain.write(op.node, addr, &[v; 4]);
                }
                None => {
                    let h = hier.read(cluster, cpu, addr, 4);
                    let f = plain.read(op.node, addr, 4);
                    prop_assert_eq!(h, f, "observational divergence at {:#x}", addr);
                }
            }
        }
        prop_assert!(hier.verify().is_ok());
        prop_assert!(plain.verify().is_ok());
    }

    #[test]
    fn deep_tree_snoop_filter_is_invisible_and_inclusion_holds(
        ops in ops_strategy(8),
    ) {
        // Run the same random program on two depth-3 trees that differ only
        // in the snoop filter. The filter may only suppress snoops whose
        // subtree provably holds no copy, so every read must observe the
        // same bytes, and both trees must pass the full inclusion audit
        // (`verify` rejects any copy cached below an Invalid bridge tag).
        let mut filtered = deep(true);
        let mut flooded = deep(false);
        let paths = filtered.leaf_paths();
        for op in &ops {
            let addr = 0x1000 + op.line * LINE as u64 + op.offset;
            let (leaf, cpu) = (op.node / 2, op.node % 2);
            match op.write {
                Some(v) => {
                    filtered.write_at(&paths[leaf], cpu, addr, &[v; 4]);
                    flooded.write_at(&paths[leaf], cpu, addr, &[v; 4]);
                }
                None => {
                    let a = filtered.read_at(&paths[leaf], cpu, addr, 4);
                    let b = flooded.read_at(&paths[leaf], cpu, addr, 4);
                    prop_assert_eq!(a, b, "snoop filter changed a read at {:#x}", addr);
                }
            }
        }
        prop_assert!(filtered.verify().is_ok(), "inclusion violated with filter on");
        prop_assert!(flooded.verify().is_ok(), "inclusion violated with filter off");
    }

    #[test]
    fn deep_tree_filter_ledgers_conserve_every_snoop(
        ops in ops_strategy(8),
        filter in any::<bool>(),
    ) {
        let mut sys = deep(filter);
        let paths = sys.leaf_paths();
        for op in &ops {
            let addr = 0x1000 + op.line * LINE as u64 + op.offset;
            let (leaf, cpu) = (op.node / 2, op.node % 2);
            match op.write {
                Some(v) => sys.write_at(&paths[leaf], cpu, addr, &[v; 4]),
                None => {
                    let _ = sys.read_at(&paths[leaf], cpu, addr, 4);
                }
            }
        }
        for bridge in sys.bridges_preorder() {
            let s = bridge.stats();
            prop_assert_eq!(
                s.forwarded + s.suppressed,
                s.snooped,
                "bridge ledger leaked a snoop"
            );
            prop_assert!(s.filter_hits <= s.forwarded);
            if !filter {
                prop_assert_eq!(s.suppressed, 0, "disabled filter must forward everything");
            }
        }
    }

    #[test]
    fn random_ops_with_global_sync_stay_consistent(
        ops in ops_strategy(4),
        sync_every in 5usize..20,
    ) {
        let shape = &[2usize, 2];
        let mut sys = hierarchy(shape);
        for (i, op) in ops.iter().enumerate() {
            let addr = 0x1000 + op.line * LINE as u64 + op.offset;
            let (cluster, cpu) = locate(shape, op.node);
            match op.write {
                Some(v) => sys.write(cluster, cpu, addr, &[v; 4]),
                None => {
                    let _ = sys.read(cluster, cpu, addr, 4);
                }
            }
            if i % sync_every == 0 {
                sys.make_globally_consistent();
            }
        }
        prop_assert!(sys.verify().is_ok());
    }
}

#[test]
fn hierarchy_survives_eviction_pressure() {
    // Tiny caches force evictions inside clusters; write-backs land in the
    // mirror, ownership stays at cluster level, and everything stays golden.
    let shape = &[2usize, 2];
    let mut sys = hierarchy(shape);
    for i in 0..120u32 {
        let (cluster, cpu) = locate(shape, (i % 4) as usize);
        let addr = 0x1000 + u64::from(i % 24) * LINE as u64;
        if i % 3 == 0 {
            sys.write(cluster, cpu, addr, &i.to_le_bytes());
        } else {
            let _ = sys.read(cluster, cpu, addr, 4);
        }
    }
    sys.verify().expect("consistent under eviction pressure");
}
