//! Shared command-line plumbing for the `moesi-sim` subcommands.
//!
//! The `verify`, `faults`, `bench` and `table` subcommands all accept the
//! same trio of flags — `--seed`, `--jobs`, `--trace-out` — with identical
//! syntax, validation and error wording. [`CommonOpts`] parses them in one
//! place; each subcommand keeps its own loop for the flags only it
//! understands.

/// Parses a comma-separated list of positive counts (the `--shards`,
/// `--clusters`, `--depth` and `--fanout` flags). Rejects — with a named,
/// structured error rather than silently repairing — empty lists, empty
/// entries (stray commas), zeroes, non-numbers, and duplicates; a duplicate
/// count would silently run the same cell twice and skew any sweep built on
/// the list.
pub fn parse_count_list(name: &str, v: &str) -> Result<Vec<usize>, String> {
    if v.trim().is_empty() {
        return Err(format!("{name} list is empty"));
    }
    let mut out = Vec::new();
    for item in v.split(',') {
        let item = item.trim();
        if item.is_empty() {
            return Err(format!("{name} has an empty entry (stray comma?)"));
        }
        let n: usize = item
            .parse()
            .map_err(|_| format!("{name} expects a number, got `{item}`"))?;
        if n == 0 {
            return Err(format!("{name} must be at least 1"));
        }
        if out.contains(&n) {
            return Err(format!("{name} repeats `{n}`"));
        }
        out.push(n);
    }
    Ok(out)
}

/// The flags shared across `moesi-sim` subcommands, each `None` until seen.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommonOpts {
    /// `--seed N`: the RNG seed.
    pub seed: Option<u64>,
    /// `--jobs N`: worker threads; validated to be at least 1.
    pub jobs: Option<usize>,
    /// `--trace-out FILE`: Chrome-trace output path.
    pub trace_out: Option<String>,
}

impl CommonOpts {
    /// Tries to consume `arg` as one of the shared flags, pulling its value
    /// from `rest`. Returns `Ok(true)` when consumed and `Ok(false)` when
    /// the flag is not a shared one (the caller's own match handles it).
    pub fn try_consume<'a, I>(&mut self, arg: &str, rest: &mut I) -> Result<bool, String>
    where
        I: Iterator<Item = &'a String>,
    {
        let mut value = |name: &str| -> Result<&'a String, String> {
            rest.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg {
            "--seed" => {
                self.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects a number".to_string())?,
                );
            }
            "--jobs" => {
                let jobs: usize = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects a number".to_string())?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                self.jobs = Some(jobs);
            }
            "--trace-out" => self.trace_out = Some(value("--trace-out")?.clone()),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonOpts, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        let mut opts = CommonOpts::default();
        let mut it = owned.iter();
        while let Some(arg) = it.next() {
            if !opts.try_consume(arg, &mut it)? {
                return Err(format!("unknown option `{arg}`"));
            }
        }
        Ok(opts)
    }

    #[test]
    fn all_three_flags_parse() {
        let opts = parse(&["--seed", "9", "--jobs", "3", "--trace-out", "/tmp/t.json"]).unwrap();
        assert_eq!(opts.seed, Some(9));
        assert_eq!(opts.jobs, Some(3));
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/t.json"));
    }

    #[test]
    fn unshared_flags_are_left_to_the_caller() {
        assert!(parse(&["--protocol"]).unwrap_err().contains("unknown"));
    }

    #[test]
    fn count_lists_parse_and_reject_malformed_input() {
        assert_eq!(parse_count_list("--shards", "1,2,4"), Ok(vec![1, 2, 4]));
        assert_eq!(parse_count_list("--depth", " 3 , 2 "), Ok(vec![3, 2]));
        assert_eq!(parse_count_list("--fanout", "8"), Ok(vec![8]));

        let err = |v: &str| parse_count_list("--clusters", v).unwrap_err();
        assert!(err("").contains("list is empty"));
        assert!(err("   ").contains("list is empty"));
        assert!(err("1,,2").contains("empty entry"));
        assert!(err("1,2,").contains("empty entry"));
        assert!(err("1,0").contains("at least 1"));
        assert!(err("two").contains("expects a number, got `two`"));
        assert!(err("4,2,4").contains("repeats `4`"));
        assert!(err("x").starts_with("--clusters"), "errors name the flag");
    }

    #[test]
    fn validation_matches_the_subcommands() {
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["--jobs", "x"])
            .unwrap_err()
            .contains("expects a number"));
        assert!(parse(&["--seed"]).unwrap_err().contains("needs a value"));
    }
}
