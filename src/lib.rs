//! # moesi-futurebus
//!
//! A full reproduction of **Sweazey & Smith, "A Class of Compatible Cache
//! Consistency Protocols and their Support by the IEEE Futurebus"
//! (ISCA 1986)** — the paper that named the MOESI states.
//!
//! This crate is a facade over the workspace:
//!
//! * [`moesi`] — the five states, the signal lines, Tables 1–2 as data (the
//!   compatible class), and all the protocols: MOESI preferred/invalidating,
//!   write-through, non-caching, Berkeley, Dragon, Write-Once, Illinois,
//!   Firefly, the Puzak §5.2 refinement, and the §3.4 random policy.
//! * [`futurebus`] — wired-OR signalling, the broadcast address handshake,
//!   transactions with intervention and BS abort-push-restart, timing.
//! * [`cache_array`] — set-associative arrays, replacement policies, sector
//!   caches, line-crosser splitting.
//! * [`mpsim`] — the multiprocessor simulator with its consistency oracle and
//!   synthetic workloads.
//!
//! ## The headline claim, demonstrated
//!
//! Any mixture of class members — even a node choosing *randomly* among the
//! permitted actions on every event — preserves the shared memory image:
//!
//! ```
//! use cache_array::CacheConfig;
//! use moesi::protocols::{Dragon, MoesiPreferred, RandomPolicy, WriteThrough};
//! use moesi::CacheKind;
//! use moesi_futurebus::mpsim::SystemBuilder;
//!
//! let mut sys = SystemBuilder::new(32)
//!     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
//!     .cache(Box::new(Dragon::new()), CacheConfig::small())
//!     .cache(Box::new(WriteThrough::new()), CacheConfig::small())
//!     .cache(Box::new(RandomPolicy::new(CacheKind::CopyBack, 7)), CacheConfig::small())
//!     .checking(true) // the oracle panics on any inconsistency
//!     .build();
//!
//! for i in 0..100u64 {
//!     let cpu = (i % 4) as usize;
//!     let addr = 0x1000 + (i % 8) * 32;
//!     if i % 3 == 0 {
//!         sys.write(cpu, addr, &[i as u8; 4]);
//!     } else {
//!         let _ = sys.read(cpu, addr, 4);
//!     }
//! }
//! sys.verify().expect("the class is compatible");
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use cache_array;
pub use futurebus;
pub use moesi;
pub use mpsim;
