//! The shared Chrome-trace writer behind every subcommand's `--trace-out`.

/// Runs the exemplar trace described by `cfg` and writes the Chrome trace
/// JSON (chrome://tracing / Perfetto format) to `path`.
pub(crate) fn write_chrome_trace(path: &str, cfg: &mpsim::TraceRunConfig) -> Result<(), String> {
    let json = mpsim::trace_run(cfg)?;
    std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path} (load it in chrome://tracing or Perfetto)");
    Ok(())
}
