//! The `verify` subcommand: exhaustive model checking of small
//! configurations, the pairwise compatibility matrix and table mutations.

use crate::chrome::write_chrome_trace;
use moesi_futurebus::cli::CommonOpts;

pub(crate) const VERIFY_USAGE: &str = "\
moesi-sim verify: exhaustively model-check small configurations

Explores EVERY reachable global state of an abstract machine where each
module branches over every permitted Table 1/2 entry (or over one concrete
protocol's choices), checking the five shared-image invariants at every
state. A clean run is a proof over the modelled configuration; a violation
prints a minimal counterexample schedule that the concrete simulator
replays deterministically.

USAGE:
    moesi-sim verify [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocol mix, one module per entry
                      (a single name is replicated to --caches). Accepts the
                      simulator names plus full-table / full-table-wt /
                      full-table-nc (branch over the whole permitted set of
                      that client kind). [default: full-table]
    --caches N        modules for a single-name mix [default: 2]
    --lines N         lines modelled [default: 1]
    --values N        write-value domain size [default: 2]
    --max-states N    truncate after N distinct states (0 = unbounded)
    --matrix          verify every protocol pair instead, printing one row
                      per pair; exits nonzero if any result contradicts the
                      documented compatibility claims
    --mutate          corrupt the preferred copy-back table one cell at a
                      time instead, printing the structural verdict and any
                      concrete counterexample per mutation; exits nonzero if
                      a mutation passes the structural check but breaks an
                      invariant
    --table FILE      with --mutate: read the mutation base from FILE (any
                      parseable policy table, e.g. a synthesized winner)
                      instead of the preferred copy-back table
    --jobs N          worker threads sharding the --matrix pairs; the output
                      is identical for any N [default: available cores]
    --seed N          seed for the --trace-out exemplar run [default: its
                      built-in seed]
    --trace-out FILE  also write a Chrome trace (chrome://tracing JSON) of an
                      exemplar concrete run of the first named protocol
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct VerifyConfig {
    pub(crate) protocols: Vec<String>,
    pub(crate) caches: usize,
    pub(crate) lines: usize,
    pub(crate) values: u8,
    pub(crate) max_states: Option<usize>,
    pub(crate) matrix: bool,
    pub(crate) mutate: bool,
    pub(crate) table: Option<String>,
    pub(crate) jobs: usize,
    pub(crate) seed: Option<u64>,
    pub(crate) trace_out: Option<String>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            protocols: vec!["full-table".to_string()],
            caches: 2,
            lines: 1,
            values: 2,
            max_states: None,
            matrix: false,
            mutate: false,
            table: None,
            jobs: mpsim::default_jobs(),
            seed: None,
            trace_out: None,
        }
    }
}

pub(crate) fn parse_verify_args(args: &[String]) -> Result<VerifyConfig, String> {
    let mut cfg = VerifyConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--caches" => {
                cfg.caches = value("--caches")?
                    .parse()
                    .map_err(|_| "--caches expects a number".to_string())?;
                if cfg.caches == 0 {
                    return Err("--caches must be at least 1".to_string());
                }
            }
            "--lines" => {
                cfg.lines = value("--lines")?
                    .parse()
                    .map_err(|_| "--lines expects a number".to_string())?;
                if cfg.lines == 0 {
                    return Err("--lines must be at least 1".to_string());
                }
            }
            "--values" => {
                cfg.values = value("--values")?
                    .parse()
                    .map_err(|_| "--values expects a number".to_string())?;
                if cfg.values == 0 {
                    return Err("--values must be at least 1".to_string());
                }
            }
            "--max-states" => {
                cfg.max_states = Some(
                    value("--max-states")?
                        .parse()
                        .map_err(|_| "--max-states expects a number".to_string())?,
                );
            }
            "--matrix" => cfg.matrix = true,
            "--mutate" => cfg.mutate = true,
            "--table" => cfg.table = Some(value("--table")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if cfg.table.is_some() && !cfg.mutate {
        return Err("--table requires --mutate".to_string());
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    cfg.seed = common.seed;
    cfg.trace_out = common.trace_out;
    Ok(cfg)
}

fn verify_shape(cfg: &VerifyConfig) -> verify::Shape {
    let mut shape = verify::Shape {
        lines: cfg.lines,
        values: cfg.values,
        ..verify::Shape::default()
    };
    if let Some(max) = cfg.max_states {
        shape.limits.max_states = max;
    }
    shape
}

fn run_verify_matrix(shape: &verify::Shape, jobs: usize) -> Result<(), String> {
    println!(
        "pair-wise compatibility matrix: 2 modules x {} line(s) x {} values\n",
        shape.lines, shape.values
    );
    let mut surprises = 0usize;
    for (a, b, report) in verify::verify_matrix_jobs(&verify::MATRIX_PROTOCOLS, shape, jobs) {
        let expected_clean = verify::class_compatible(&a, &b);
        let (tag, detail) = match (&report.counterexample, expected_clean) {
            (None, true) => ("ok", format!("{} states", report.explored)),
            (Some(cx), false) => ("incompatible (expected)", cx.defect.to_string()),
            (None, false) => {
                surprises += 1;
                ("UNEXPECTEDLY CLEAN", format!("{} states", report.explored))
            }
            (Some(cx), true) => {
                surprises += 1;
                ("VIOLATION", format!("{}\n{}", cx.defect, cx.trace))
            }
        };
        println!("{a:>20} + {b:<20} {tag:<24} {detail}");
    }
    if surprises > 0 {
        return Err(format!(
            "{surprises} pair(s) contradict the documented compatibility claims"
        ));
    }
    println!("\nall pairs match the documented compatibility claims");
    Ok(())
}

fn run_verify_mutations(shape: &verify::Shape, table: Option<&str>) -> Result<(), String> {
    let rows = match table {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let base = moesi::parse_table(&text).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "single-cell mutations of `{}` (from {path}), next to a clean MOESI module\n",
                base.name()
            );
            verify::mutation_sweep_of(base, shape)
        }
        None => {
            println!(
                "single-cell mutations of the preferred copy-back table, next to a clean MOESI module\n"
            );
            verify::mutation_sweep(shape)
        }
    };
    let mut missed = 0usize;
    for row in &rows {
        let structural = if row.structural {
            "rejected"
        } else {
            "in-class"
        };
        let dynamic = match &row.defect {
            Some(defect) => format!("counterexample: {defect}"),
            None => format!("clean ({} states)", row.explored),
        };
        if !row.structural && row.defect.is_some() {
            missed += 1;
        }
        println!("{:<20} {structural:<10} {dynamic}", row.cell);
    }
    let caught = rows.iter().filter(|r| r.defect.is_some()).count();
    println!(
        "\n{} mutations: {caught} produce concrete counterexamples; every in-class one verifies clean",
        rows.len(),
    );
    if missed > 0 {
        return Err(format!(
            "{missed} mutation(s) passed the structural check but broke an invariant"
        ));
    }
    Ok(())
}

pub(crate) fn run_verify(cfg: &VerifyConfig) -> Result<(), String> {
    if let Some(path) = &cfg.trace_out {
        // The model checker is abstract; the trace shows an exemplar
        // *concrete* run of the first named protocol (full-table mixes have
        // no concrete counterpart, so MOESI stands in).
        let protocol = match cfg.protocols.first().map(String::as_str) {
            None | Some("full-table") | Some("full-table-wt") | Some("full-table-nc") => "moesi",
            Some(name) => name,
        };
        let mut trace_cfg = mpsim::TraceRunConfig {
            protocol: protocol.to_string(),
            ..mpsim::TraceRunConfig::default()
        };
        if let Some(seed) = cfg.seed {
            trace_cfg.seed = seed;
        }
        write_chrome_trace(path, &trace_cfg)?;
    }
    let shape = verify_shape(cfg);
    if cfg.mutate {
        return run_verify_mutations(&shape, cfg.table.as_deref());
    }
    if cfg.matrix {
        return run_verify_matrix(&shape, cfg.jobs);
    }
    let names: Vec<&str> = if cfg.protocols.len() == 1 {
        vec![cfg.protocols[0].as_str(); cfg.caches]
    } else {
        cfg.protocols.iter().map(String::as_str).collect()
    };
    println!(
        "exhaustive exploration: [{}] x {} line(s) x {} values",
        names.join(", "),
        shape.lines,
        shape.values
    );
    let report = verify::verify_mix(&names, &shape)
        .ok_or_else(|| format!("unknown protocol in `{}`", cfg.protocols.join(",")))?;
    println!("{report}");
    match &report.counterexample {
        None if report.truncated => Err(format!(
            "state cap hit after {} states; raise --max-states for a full proof",
            report.explored
        )),
        None => Ok(()),
        Some(cx) => {
            let outcome = mpsim::replay::replay(&cx.trace, false);
            match &outcome.violation {
                Some((step, violation)) => {
                    println!("concrete replay reproduces it at step {step}: {violation}")
                }
                None => println!("concrete replay did NOT reproduce it (abstraction gap?)"),
            }
            Err(format!("invariant violated: {}", cx.defect))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::args;
    use moesi::protocols::by_name;

    #[test]
    fn verify_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_verify_args(&[]).expect("empty"),
            VerifyConfig::default()
        );
        let cfg = parse_verify_args(&args(
            "--protocol moesi,dragon --lines 2 --values 3 --max-states 500 \
             --trace-out /tmp/v.json",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, vec!["moesi", "dragon"]);
        assert_eq!((cfg.lines, cfg.values), (2, 3));
        assert_eq!(cfg.max_states, Some(500));
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/v.json"));
        assert!(parse_verify_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_verify_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_verify_args(&args("--values 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn verify_smoke_runs() {
        // Homogeneous per-protocol mode.
        run_verify(&VerifyConfig {
            protocols: vec!["moesi".to_string()],
            ..VerifyConfig::default()
        })
        .expect("moesi pair verifies");
        // Mixed mode with an explicit list.
        run_verify(&VerifyConfig {
            protocols: vec!["dragon".to_string(), "write-through".to_string()],
            ..VerifyConfig::default()
        })
        .expect("mixed pair verifies");
        // Unknown names are reported.
        let err = run_verify(&VerifyConfig {
            protocols: vec!["mesif".to_string()],
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"));
        // A state cap that bites is an error, not a silent pass.
        let err = run_verify(&VerifyConfig {
            max_states: Some(3),
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("state cap"), "{err}");
    }

    #[test]
    fn verify_detects_the_write_once_clash() {
        let err = run_verify(&VerifyConfig {
            protocols: vec!["moesi".to_string(), "write-once".to_string()],
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("invariant violated"), "{err}");
    }

    #[test]
    fn verify_matrix_matches_the_claims() {
        run_verify(&VerifyConfig {
            matrix: true,
            ..VerifyConfig::default()
        })
        .expect("matrix matches documented compatibility");
    }

    #[test]
    fn verify_mutate_mode_runs_clean() {
        run_verify(&VerifyConfig {
            mutate: true,
            ..VerifyConfig::default()
        })
        .expect("every in-class mutation verifies clean");
    }

    #[test]
    fn verify_mutate_accepts_a_loaded_table() {
        let path = std::env::temp_dir().join("moesi_sim_verify_table_smoke.txt");
        let berkeley = by_name("berkeley", 0).unwrap();
        std::fs::write(&path, berkeley.policy_table().unwrap().render()).unwrap();
        let cfg = parse_verify_args(&args(&format!(
            "--mutate --table {}",
            path.to_string_lossy()
        )))
        .expect("valid");
        assert!(cfg.mutate);
        run_verify(&cfg).expect("Berkeley-based mutation sweep runs clean");
        let _ = std::fs::remove_file(&path);
        // --table without --mutate is a usage error, caught at parse time.
        assert!(parse_verify_args(&args("--table foo.txt"))
            .unwrap_err()
            .contains("requires --mutate"));
        // An unreadable file is a run-time error.
        let err = run_verify(&VerifyConfig {
            mutate: true,
            table: Some("/nonexistent/table.txt".to_string()),
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
