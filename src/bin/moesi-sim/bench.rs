//! The `bench` subcommand: the protocol x workload benchmark sweep.

use crate::chrome::write_chrome_trace;
use moesi_futurebus::cli::CommonOpts;

pub(crate) const BENCH_USAGE: &str = "\
moesi-sim bench: run the protocol x workload benchmark sweep

Runs one homogeneous machine per (protocol, workload) cell under the
contention-aware timed model and reports simulated throughput (accesses per
simulated second), bus occupancy and miss ratios. Cells shard across a
worker pool; the output is byte-identical for any --jobs value.

USAGE:
    moesi-sim bench [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocols, one machine per entry
                      [default: the full compared set]
    --workload LIST   comma-separated workloads [default: all six]
    --cpus N          processors per machine [default: 4]
    --steps N         references per processor [default: 2000]
    --cache-bytes N   per-node cache capacity [default: 4096]
    --seed N          workload seed [default: 7]
    --shards LIST     split every cell's reference stream over fixed address
                      regions and run the regions on a worker pool. A single
                      count (`--shards 4`) runs the sharded sweep on that
                      many workers; a comma list (`--shards 1,2,4,8`) runs a
                      scaling sweep, one row per count, with a host-speedup
                      column. The partition is fixed, so the simulated rows
                      are byte-identical for every count [default: off]
    --jobs N          worker threads sharding the cells of an unsharded
                      sweep [default: available cores]
    --json            also write the rows as JSON to --out
    --out PATH        JSON output path [default: BENCH_protocols.json, or
                      BENCH_shards.json for a scaling sweep]
    --trace-out FILE  also write a Chrome trace (chrome://tracing JSON) of
                      one exemplar run of the first benched protocol; the
                      file is identical for any --jobs value
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct BenchCliConfig {
    pub(crate) protocols: Option<Vec<String>>,
    pub(crate) workloads: Option<Vec<String>>,
    pub(crate) cpus: usize,
    pub(crate) steps: u64,
    pub(crate) cache_bytes: usize,
    pub(crate) seed: u64,
    /// Shard worker counts: empty = unsharded, one entry = sharded sweep,
    /// several = scaling sweep over the counts.
    pub(crate) shards: Vec<usize>,
    pub(crate) jobs: usize,
    pub(crate) json: bool,
    pub(crate) out: Option<String>,
    pub(crate) trace_out: Option<String>,
}

impl Default for BenchCliConfig {
    fn default() -> Self {
        let base = bench::sweep::SweepConfig::default();
        BenchCliConfig {
            protocols: None,
            workloads: None,
            cpus: base.cpus,
            steps: base.steps,
            cache_bytes: base.cache_bytes,
            seed: base.seed,
            shards: Vec::new(),
            jobs: base.jobs,
            json: false,
            out: None,
            trace_out: None,
        }
    }
}

impl BenchCliConfig {
    /// True when `--shards` named more than one worker count.
    pub(crate) fn is_scaling(&self) -> bool {
        self.shards.len() > 1
    }

    /// The JSON output path, defaulting per mode.
    pub(crate) fn out_path(&self) -> &str {
        self.out.as_deref().unwrap_or(if self.is_scaling() {
            "BENCH_shards.json"
        } else {
            "BENCH_protocols.json"
        })
    }
}

pub(crate) fn parse_bench_args(args: &[String]) -> Result<BenchCliConfig, String> {
    let mut cfg = BenchCliConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let number = |name: &str, v: &str| -> Result<u64, String> {
            let n: u64 = v.parse().map_err(|_| format!("{name} expects a number"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        let list = |name: &str, v: &str| -> Result<Vec<String>, String> {
            let items: Vec<String> = v
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if items.is_empty() {
                return Err(format!("{name} list is empty"));
            }
            Ok(items)
        };
        match arg.as_str() {
            "--protocol" => cfg.protocols = Some(list("--protocol", value("--protocol")?)?),
            "--workload" => cfg.workloads = Some(list("--workload", value("--workload")?)?),
            "--cpus" => cfg.cpus = number("--cpus", value("--cpus")?)? as usize,
            "--steps" => cfg.steps = number("--steps", value("--steps")?)?,
            "--cache-bytes" => {
                cfg.cache_bytes = number("--cache-bytes", value("--cache-bytes")?)? as usize;
            }
            "--shards" => {
                cfg.shards = list("--shards", value("--shards")?)?
                    .iter()
                    .map(|v| number("--shards", v).map(|n| n as usize))
                    .collect::<Result<_, _>>()?;
            }
            "--json" => cfg.json = true,
            "--out" => cfg.out = Some(value("--out")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    cfg.trace_out = common.trace_out;
    Ok(cfg)
}

fn sweep_config(cfg: &BenchCliConfig) -> bench::sweep::SweepConfig {
    let base = bench::sweep::SweepConfig::default();
    bench::sweep::SweepConfig {
        protocols: cfg.protocols.clone().unwrap_or(base.protocols),
        workloads: cfg.workloads.clone().unwrap_or(base.workloads),
        cpus: cfg.cpus,
        steps: cfg.steps,
        cache_bytes: cfg.cache_bytes,
        seed: cfg.seed,
        shards: cfg.shards.first().copied().unwrap_or(0),
        jobs: cfg.jobs,
        timing: base.timing,
    }
}

pub(crate) fn run_bench(cfg: &BenchCliConfig) -> Result<(), String> {
    let sweep_cfg = sweep_config(cfg);
    if cfg.is_scaling() {
        let (rows, scaling) = bench::sweep::shard_scaling(&sweep_cfg, &cfg.shards)?;
        print!("{}", bench::sweep::render_sweep(&rows));
        println!();
        print!("{}", bench::sweep::render_scaling(&scaling));
        if cfg.json {
            let json = bench::sweep::scaling_json(&sweep_cfg, &scaling);
            let out = cfg.out_path();
            std::fs::write(out, json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            println!("wrote {out}");
        }
    } else {
        let rows = bench::sweep::sweep(&sweep_cfg)?;
        print!("{}", bench::sweep::render_sweep(&rows));
        let total: u64 = rows.iter().map(|r| r.accesses).sum();
        println!(
            "\ntotal {total} accesses across {} cells ({} protocols x {} workloads, jobs={})",
            rows.len(),
            sweep_cfg.protocols.len(),
            sweep_cfg.workloads.len(),
            sweep_cfg.jobs,
        );
        if cfg.json {
            let json = bench::sweep::sweep_json(&sweep_cfg, &rows);
            let out = cfg.out_path();
            std::fs::write(out, json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            println!("wrote {out}");
        }
    }
    if let Some(path) = &cfg.trace_out {
        write_chrome_trace(
            path,
            &mpsim::TraceRunConfig {
                protocol: sweep_cfg.protocols[0].clone(),
                cpus: sweep_cfg.cpus,
                line_size: bench::LINE,
                cache_bytes: sweep_cfg.cache_bytes,
                steps: sweep_cfg.steps,
                seed: sweep_cfg.seed,
                ..mpsim::TraceRunConfig::default()
            },
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::args;

    #[test]
    fn bench_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_bench_args(&[]).expect("empty"),
            BenchCliConfig::default()
        );
        let cfg = parse_bench_args(&args(
            "--protocol moesi,dragon --workload general,ping-pong --cpus 2 \
             --steps 100 --cache-bytes 2048 --seed 3 --jobs 2 --json --out /tmp/b.json \
             --trace-out /tmp/b-trace.json",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, Some(vec!["moesi".into(), "dragon".into()]));
        assert_eq!(
            cfg.workloads,
            Some(vec!["general".into(), "ping-pong".into()])
        );
        assert_eq!((cfg.cpus, cfg.steps, cfg.cache_bytes), (2, 100, 2048));
        assert_eq!((cfg.seed, cfg.jobs), (3, 2));
        assert!(cfg.json);
        assert_eq!(cfg.out_path(), "/tmp/b.json");
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/b-trace.json"));
        assert!(parse_bench_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_bench_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_bench_args(&args("--jobs 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn shard_flags_parse_and_pick_the_mode() {
        let cfg = parse_bench_args(&[]).expect("empty");
        assert!(cfg.shards.is_empty(), "sharding stays off unless asked for");
        assert!(!cfg.is_scaling());
        assert_eq!(cfg.out_path(), "BENCH_protocols.json");

        let cfg = parse_bench_args(&args("--shards 3")).expect("valid");
        assert_eq!(cfg.shards, vec![3]);
        assert!(!cfg.is_scaling());

        let cfg = parse_bench_args(&args("--shards 1,2,4,8")).expect("valid");
        assert_eq!(cfg.shards, vec![1, 2, 4, 8]);
        assert!(cfg.is_scaling());
        assert_eq!(cfg.out_path(), "BENCH_shards.json");

        assert!(parse_bench_args(&args("--shards 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_bench_args(&args("--shards 1,0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_bench_args(&args("--shards four"))
            .unwrap_err()
            .contains("expects a number"));
    }

    #[test]
    fn bench_smoke_run_writes_json() {
        let out = std::env::temp_dir().join("moesi_sim_bench_smoke.json");
        let trace_out = std::env::temp_dir().join("moesi_sim_bench_smoke_trace.json");
        let cfg = BenchCliConfig {
            protocols: Some(vec!["moesi".into()]),
            workloads: Some(vec!["ping-pong".into()]),
            cpus: 2,
            steps: 50,
            json: true,
            out: Some(out.to_string_lossy().into_owned()),
            trace_out: Some(trace_out.to_string_lossy().into_owned()),
            ..BenchCliConfig::default()
        };
        run_bench(&cfg).expect("bench smoke succeeds");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"protocol\": \"moesi\""), "{json}");
        assert!(json.contains("\"phase_p50_ns\": ["), "{json}");
        assert!(json.contains("\"host_wall_ns\": "), "{json}");
        let trace = std::fs::read_to_string(&trace_out).expect("trace written");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("\"ph\": \"X\""), "{trace}");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&trace_out);
        // Unknown names are reported.
        let err = run_bench(&BenchCliConfig {
            protocols: Some(vec!["mesif".into()]),
            json: false,
            ..cfg
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    #[test]
    fn scaling_smoke_run_writes_speedup_json() {
        let out = std::env::temp_dir().join("moesi_sim_bench_scaling_smoke.json");
        let cfg = BenchCliConfig {
            protocols: Some(vec!["moesi".into()]),
            workloads: Some(vec!["ping-pong".into()]),
            cpus: 2,
            steps: 50,
            shards: vec![1, 2],
            json: true,
            out: Some(out.to_string_lossy().into_owned()),
            ..BenchCliConfig::default()
        };
        run_bench(&cfg).expect("scaling smoke succeeds");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"shard_regions\": 4"), "{json}");
        assert!(json.contains("\"shards\": 1"), "{json}");
        assert!(json.contains("\"shards\": 2"), "{json}");
        assert!(json.contains("\"speedup\": "), "{json}");
        let _ = std::fs::remove_file(&out);
    }
}
