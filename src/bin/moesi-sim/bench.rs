//! The `bench` subcommand: the protocol x workload benchmark sweep.

use crate::chrome::write_chrome_trace;
use futurebus::Discipline;
use moesi_futurebus::cli::{parse_count_list, CommonOpts};

pub(crate) const BENCH_USAGE: &str = "\
moesi-sim bench: run the protocol x workload benchmark sweep

Runs one homogeneous machine per (protocol, workload) cell under the
contention-aware timed model and reports simulated throughput (accesses per
simulated second), bus occupancy and miss ratios. Cells shard across a
worker pool; the output is byte-identical for any --jobs value.

With --hierarchy the sweep becomes the fabric-tree saturation study: one
uniform tree per (protocol, clusters, depth, fanout, discipline) cell, all
leaves driving the Dubois-&-Briggs sharing workload, reporting root-bus
pressure, per-phase latency percentiles and the bridges' snoop-filter
ledger. Grid axes take comma lists; the fan-out axis collapses at depth 2.

USAGE:
    moesi-sim bench [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocols, one machine per entry
                      [default: the full compared set]
    --workload LIST   comma-separated workloads [default: all six]
    --cpus N          processors per machine [default: 4]
    --steps N         references per processor [default: 2000]
    --cache-bytes N   per-node cache capacity [default: 4096]
    --seed N          workload seed [default: 7]
    --shards LIST     split every cell's reference stream over fixed address
                      regions and run the regions on a worker pool. A single
                      count (`--shards 4`) runs the sharded sweep on that
                      many workers; a comma list (`--shards 1,2,4,8`) runs a
                      scaling sweep, one row per count, with a host-speedup
                      column. The partition is fixed, so the simulated rows
                      are byte-identical for every count [default: off]
    --jobs N          worker threads sharding the cells of an unsharded
                      sweep [default: available cores]
    --json            also write the rows as JSON to --out
    --out PATH        JSON output path [default: BENCH_protocols.json, or
                      BENCH_shards.json for a scaling sweep]
    --trace-out FILE  also write a Chrome trace (chrome://tracing JSON) of
                      one exemplar run of the first benched protocol; the
                      file is identical for any --jobs value
    --help            print this help

HIERARCHY OPTIONS (require --hierarchy; incompatible with --workload,
--shards and --trace-out):
    --hierarchy       run the fabric-tree saturation study instead of the
                      flat sweep [default protocols: moesi, dragon,
                      berkeley, write-through]
    --clusters LIST   root-level cluster counts to sweep [default: 4]
    --depth LIST      tree depths (bus levels) to sweep [default: 2,3]
    --fanout LIST     interior fan-outs to sweep [default: 4]
    --discipline LIST arbitration disciplines (priority, round-robin, fcfs)
                      [default: all three]
";

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct BenchCliConfig {
    pub(crate) protocols: Option<Vec<String>>,
    pub(crate) workloads: Option<Vec<String>>,
    /// `None` = the mode's own default (the flat sweep and the saturation
    /// study size their baselines differently).
    pub(crate) cpus: Option<usize>,
    pub(crate) steps: Option<u64>,
    pub(crate) cache_bytes: Option<usize>,
    pub(crate) seed: u64,
    /// Shard worker counts: empty = unsharded, one entry = sharded sweep,
    /// several = scaling sweep over the counts.
    pub(crate) shards: Vec<usize>,
    pub(crate) jobs: usize,
    pub(crate) json: bool,
    pub(crate) out: Option<String>,
    pub(crate) trace_out: Option<String>,
    /// `--hierarchy`: run the fabric-tree saturation study.
    pub(crate) hierarchy: bool,
    pub(crate) clusters: Option<Vec<usize>>,
    pub(crate) depths: Option<Vec<usize>>,
    pub(crate) fanouts: Option<Vec<usize>>,
    pub(crate) disciplines: Option<Vec<Discipline>>,
}

impl Default for BenchCliConfig {
    fn default() -> Self {
        let base = bench::sweep::SweepConfig::default();
        BenchCliConfig {
            protocols: None,
            workloads: None,
            cpus: None,
            steps: None,
            cache_bytes: None,
            seed: base.seed,
            shards: Vec::new(),
            jobs: base.jobs,
            json: false,
            out: None,
            trace_out: None,
            hierarchy: false,
            clusters: None,
            depths: None,
            fanouts: None,
            disciplines: None,
        }
    }
}

impl BenchCliConfig {
    /// True when `--shards` named more than one worker count.
    pub(crate) fn is_scaling(&self) -> bool {
        self.shards.len() > 1
    }

    /// The JSON output path, defaulting per mode.
    pub(crate) fn out_path(&self) -> &str {
        self.out.as_deref().unwrap_or(if self.hierarchy {
            "BENCH_hierarchy.json"
        } else if self.is_scaling() {
            "BENCH_shards.json"
        } else {
            "BENCH_protocols.json"
        })
    }
}

pub(crate) fn parse_bench_args(args: &[String]) -> Result<BenchCliConfig, String> {
    let mut cfg = BenchCliConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let number = |name: &str, v: &str| -> Result<u64, String> {
            let n: u64 = v.parse().map_err(|_| format!("{name} expects a number"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        let list = |name: &str, v: &str| -> Result<Vec<String>, String> {
            let items: Vec<String> = v
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if items.is_empty() {
                return Err(format!("{name} list is empty"));
            }
            Ok(items)
        };
        match arg.as_str() {
            "--protocol" => cfg.protocols = Some(list("--protocol", value("--protocol")?)?),
            "--workload" => cfg.workloads = Some(list("--workload", value("--workload")?)?),
            "--cpus" => cfg.cpus = Some(number("--cpus", value("--cpus")?)? as usize),
            "--steps" => cfg.steps = Some(number("--steps", value("--steps")?)?),
            "--cache-bytes" => {
                cfg.cache_bytes = Some(number("--cache-bytes", value("--cache-bytes")?)? as usize);
            }
            "--shards" => cfg.shards = parse_count_list("--shards", value("--shards")?)?,
            "--hierarchy" => cfg.hierarchy = true,
            "--clusters" => {
                cfg.clusters = Some(parse_count_list("--clusters", value("--clusters")?)?);
            }
            "--depth" => cfg.depths = Some(parse_count_list("--depth", value("--depth")?)?),
            "--fanout" => cfg.fanouts = Some(parse_count_list("--fanout", value("--fanout")?)?),
            "--discipline" => {
                let mut ds = Vec::new();
                for item in value("--discipline")?.split(',') {
                    let item = item.trim();
                    if item.is_empty() {
                        return Err("--discipline has an empty entry (stray comma?)".into());
                    }
                    let d: Discipline = item.parse().map_err(|e| format!("--discipline: {e}"))?;
                    if ds.contains(&d) {
                        return Err(format!("--discipline repeats `{d}`"));
                    }
                    ds.push(d);
                }
                cfg.disciplines = Some(ds);
            }
            "--json" => cfg.json = true,
            "--out" => cfg.out = Some(value("--out")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    cfg.trace_out = common.trace_out;
    if !cfg.hierarchy
        && (cfg.clusters.is_some()
            || cfg.depths.is_some()
            || cfg.fanouts.is_some()
            || cfg.disciplines.is_some())
    {
        return Err(
            "--clusters/--depth/--fanout/--discipline shape the saturation study; \
             add --hierarchy"
                .into(),
        );
    }
    if cfg.hierarchy {
        if cfg.workloads.is_some() {
            return Err("--hierarchy runs the sharing workload; drop --workload".into());
        }
        if !cfg.shards.is_empty() {
            return Err("--hierarchy cells are whole machines; use --jobs, not --shards".into());
        }
        if cfg.trace_out.is_some() {
            return Err("--trace-out traces the flat sweep; drop it with --hierarchy".into());
        }
    }
    Ok(cfg)
}

fn sweep_config(cfg: &BenchCliConfig) -> bench::sweep::SweepConfig {
    let base = bench::sweep::SweepConfig::default();
    bench::sweep::SweepConfig {
        protocols: cfg.protocols.clone().unwrap_or(base.protocols),
        workloads: cfg.workloads.clone().unwrap_or(base.workloads),
        cpus: cfg.cpus.unwrap_or(base.cpus),
        steps: cfg.steps.unwrap_or(base.steps),
        cache_bytes: cfg.cache_bytes.unwrap_or(base.cache_bytes),
        seed: cfg.seed,
        shards: cfg.shards.first().copied().unwrap_or(0),
        jobs: cfg.jobs,
        timing: base.timing,
    }
}

fn hierarchy_config(cfg: &BenchCliConfig) -> bench::hierarchy::HierarchyBenchConfig {
    let base = bench::hierarchy::HierarchyBenchConfig::default();
    bench::hierarchy::HierarchyBenchConfig {
        protocols: cfg.protocols.clone().unwrap_or(base.protocols),
        clusters: cfg.clusters.clone().unwrap_or(base.clusters),
        depths: cfg.depths.clone().unwrap_or(base.depths),
        fanouts: cfg.fanouts.clone().unwrap_or(base.fanouts),
        disciplines: cfg.disciplines.clone().unwrap_or(base.disciplines),
        cpus: cfg.cpus.unwrap_or(base.cpus),
        steps: cfg.steps.unwrap_or(base.steps),
        cache_bytes: cfg.cache_bytes.unwrap_or(base.cache_bytes),
        seed: cfg.seed,
        jobs: cfg.jobs,
    }
}

fn run_hierarchy_bench(cfg: &BenchCliConfig) -> Result<(), String> {
    let hier_cfg = hierarchy_config(cfg);
    let rows = bench::hierarchy::hierarchy_sweep(&hier_cfg)?;
    print!("{}", bench::hierarchy::render_hierarchy(&rows));
    let total: u64 = rows.iter().map(|r| r.accesses).sum();
    let peak = rows.iter().map(|r| r.caches).max().unwrap_or(0);
    println!(
        "\ntotal {total} accesses across {} cells (peak machine {peak} caches, jobs={})",
        rows.len(),
        hier_cfg.jobs,
    );
    if cfg.json {
        let json = bench::hierarchy::hierarchy_json(&hier_cfg, &rows);
        let out = cfg.out_path();
        std::fs::write(out, json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

pub(crate) fn run_bench(cfg: &BenchCliConfig) -> Result<(), String> {
    if cfg.hierarchy {
        return run_hierarchy_bench(cfg);
    }
    let sweep_cfg = sweep_config(cfg);
    if cfg.is_scaling() {
        let (rows, scaling) = bench::sweep::shard_scaling(&sweep_cfg, &cfg.shards)?;
        print!("{}", bench::sweep::render_sweep(&rows));
        println!();
        print!("{}", bench::sweep::render_scaling(&scaling));
        if cfg.json {
            let json = bench::sweep::scaling_json(&sweep_cfg, &scaling);
            let out = cfg.out_path();
            std::fs::write(out, json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            println!("wrote {out}");
        }
    } else {
        let rows = bench::sweep::sweep(&sweep_cfg)?;
        print!("{}", bench::sweep::render_sweep(&rows));
        let total: u64 = rows.iter().map(|r| r.accesses).sum();
        println!(
            "\ntotal {total} accesses across {} cells ({} protocols x {} workloads, jobs={})",
            rows.len(),
            sweep_cfg.protocols.len(),
            sweep_cfg.workloads.len(),
            sweep_cfg.jobs,
        );
        if cfg.json {
            let json = bench::sweep::sweep_json(&sweep_cfg, &rows);
            let out = cfg.out_path();
            std::fs::write(out, json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            println!("wrote {out}");
        }
    }
    if let Some(path) = &cfg.trace_out {
        write_chrome_trace(
            path,
            &mpsim::TraceRunConfig {
                protocol: sweep_cfg.protocols[0].clone(),
                cpus: sweep_cfg.cpus,
                line_size: bench::LINE,
                cache_bytes: sweep_cfg.cache_bytes,
                steps: sweep_cfg.steps,
                seed: sweep_cfg.seed,
                ..mpsim::TraceRunConfig::default()
            },
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::args;

    #[test]
    fn bench_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_bench_args(&[]).expect("empty"),
            BenchCliConfig::default()
        );
        let cfg = parse_bench_args(&args(
            "--protocol moesi,dragon --workload general,ping-pong --cpus 2 \
             --steps 100 --cache-bytes 2048 --seed 3 --jobs 2 --json --out /tmp/b.json \
             --trace-out /tmp/b-trace.json",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, Some(vec!["moesi".into(), "dragon".into()]));
        assert_eq!(
            cfg.workloads,
            Some(vec!["general".into(), "ping-pong".into()])
        );
        assert_eq!(
            (cfg.cpus, cfg.steps, cfg.cache_bytes),
            (Some(2), Some(100), Some(2048))
        );
        assert_eq!((cfg.seed, cfg.jobs), (3, 2));
        assert!(cfg.json);
        assert_eq!(cfg.out_path(), "/tmp/b.json");
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/b-trace.json"));
        assert!(parse_bench_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_bench_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_bench_args(&args("--jobs 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn shard_flags_parse_and_pick_the_mode() {
        let cfg = parse_bench_args(&[]).expect("empty");
        assert!(cfg.shards.is_empty(), "sharding stays off unless asked for");
        assert!(!cfg.is_scaling());
        assert_eq!(cfg.out_path(), "BENCH_protocols.json");

        let cfg = parse_bench_args(&args("--shards 3")).expect("valid");
        assert_eq!(cfg.shards, vec![3]);
        assert!(!cfg.is_scaling());

        let cfg = parse_bench_args(&args("--shards 1,2,4,8")).expect("valid");
        assert_eq!(cfg.shards, vec![1, 2, 4, 8]);
        assert!(cfg.is_scaling());
        assert_eq!(cfg.out_path(), "BENCH_shards.json");

        assert!(parse_bench_args(&args("--shards 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_bench_args(&args("--shards 1,0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_bench_args(&args("--shards four"))
            .unwrap_err()
            .contains("expects a number"));
        assert!(parse_bench_args(&args("--shards 1,2,2"))
            .unwrap_err()
            .contains("repeats `2`"));
        assert!(parse_bench_args(&args("--shards 1,,2"))
            .unwrap_err()
            .contains("empty entry"));
    }

    #[test]
    fn hierarchy_flags_parse_and_guard_their_mode() {
        let cfg = parse_bench_args(&args(
            "--hierarchy --clusters 2,4 --depth 2,3 --fanout 2 \
             --discipline priority,fcfs --cpus 2 --steps 60",
        ))
        .expect("valid");
        assert!(cfg.hierarchy);
        assert_eq!(cfg.clusters, Some(vec![2, 4]));
        assert_eq!(cfg.depths, Some(vec![2, 3]));
        assert_eq!(cfg.fanouts, Some(vec![2]));
        assert_eq!(
            cfg.disciplines,
            Some(vec![Discipline::Priority, Discipline::Fcfs])
        );
        assert_eq!(cfg.out_path(), "BENCH_hierarchy.json");

        // Hierarchy flags demand the mode, and the mode rejects flat-sweep
        // flags that have no meaning on a tree.
        assert!(parse_bench_args(&args("--depth 3"))
            .unwrap_err()
            .contains("add --hierarchy"));
        assert!(parse_bench_args(&args("--hierarchy --workload general"))
            .unwrap_err()
            .contains("drop --workload"));
        assert!(parse_bench_args(&args("--hierarchy --shards 2"))
            .unwrap_err()
            .contains("not --shards"));
        assert!(
            parse_bench_args(&args("--hierarchy --trace-out /tmp/t.json"))
                .unwrap_err()
                .contains("drop it with --hierarchy")
        );
        // The hardened list parser screens every grid axis.
        assert!(parse_bench_args(&args("--hierarchy --depth 3,3"))
            .unwrap_err()
            .contains("repeats `3`"));
        assert!(parse_bench_args(&args("--hierarchy --clusters 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_bench_args(&args("--hierarchy --fanout 2,"))
            .unwrap_err()
            .contains("empty entry"));
        assert!(
            parse_bench_args(&args("--hierarchy --discipline priority,priority"))
                .unwrap_err()
                .contains("repeats `priority`")
        );
        assert!(parse_bench_args(&args("--hierarchy --discipline lottery"))
            .unwrap_err()
            .contains("unknown discipline"));
    }

    #[test]
    fn hierarchy_smoke_run_writes_json() {
        let out = std::env::temp_dir().join("moesi_sim_bench_hierarchy_smoke.json");
        let cfg = parse_bench_args(&args(
            "--hierarchy --protocol moesi --clusters 2 --depth 3 --fanout 2 \
             --discipline priority --cpus 2 --steps 40 --jobs 2 --json",
        ))
        .expect("valid");
        let cfg = BenchCliConfig {
            out: Some(out.to_string_lossy().into_owned()),
            ..cfg
        };
        run_bench(&cfg).expect("hierarchy smoke succeeds");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"depth\": 3"), "{json}");
        assert!(json.contains("\"discipline\": \"priority\""), "{json}");
        assert!(json.contains("\"suppressed\": "), "{json}");
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn bench_smoke_run_writes_json() {
        let out = std::env::temp_dir().join("moesi_sim_bench_smoke.json");
        let trace_out = std::env::temp_dir().join("moesi_sim_bench_smoke_trace.json");
        let cfg = BenchCliConfig {
            protocols: Some(vec!["moesi".into()]),
            workloads: Some(vec!["ping-pong".into()]),
            cpus: Some(2),
            steps: Some(50),
            json: true,
            out: Some(out.to_string_lossy().into_owned()),
            trace_out: Some(trace_out.to_string_lossy().into_owned()),
            ..BenchCliConfig::default()
        };
        run_bench(&cfg).expect("bench smoke succeeds");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"protocol\": \"moesi\""), "{json}");
        assert!(json.contains("\"phase_p50_ns\": ["), "{json}");
        assert!(json.contains("\"host_wall_ns\": "), "{json}");
        let trace = std::fs::read_to_string(&trace_out).expect("trace written");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("\"ph\": \"X\""), "{trace}");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&trace_out);
        // Unknown names are reported.
        let err = run_bench(&BenchCliConfig {
            protocols: Some(vec!["mesif".into()]),
            json: false,
            ..cfg
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    #[test]
    fn scaling_smoke_run_writes_speedup_json() {
        let out = std::env::temp_dir().join("moesi_sim_bench_scaling_smoke.json");
        let cfg = BenchCliConfig {
            protocols: Some(vec!["moesi".into()]),
            workloads: Some(vec!["ping-pong".into()]),
            cpus: Some(2),
            steps: Some(50),
            shards: vec![1, 2],
            json: true,
            out: Some(out.to_string_lossy().into_owned()),
            ..BenchCliConfig::default()
        };
        run_bench(&cfg).expect("scaling smoke succeeds");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"shard_regions\": 4"), "{json}");
        assert!(json.contains("\"shards\": 1"), "{json}");
        assert!(json.contains("\"shards\": 2"), "{json}");
        assert!(json.contains("\"speedup\": "), "{json}");
        let _ = std::fs::remove_file(&out);
    }
}
