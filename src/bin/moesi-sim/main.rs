//! `moesi-sim` — a command-line driver for the MOESI/Futurebus simulator.
//!
//! ```text
//! moesi-sim --protocol moesi,dragon,write-through --workload ping-pong --steps 2000 --check
//! moesi-sim --cpus 8 --workload general --census --trace 10
//! moesi-sim --trace-file trace.txt --protocol berkeley --check
//! moesi-sim verify --protocol moesi --caches 3
//! moesi-sim verify --matrix --jobs 4
//! moesi-sim faults --rate 0.2 --seed 7
//! moesi-sim bench --seed 7 --json
//! ```
//!
//! Run `moesi-sim --help` (or `moesi-sim verify --help`,
//! `moesi-sim faults --help`, `moesi-sim bench --help`) for the full
//! option list.
//!
//! Each subcommand lives in its own module — config struct, argument
//! parser, usage text and runner together: [`simulate`] (the default,
//! flag-driven simulation), [`verify`], [`faults`], [`bench`], [`synth`]
//! and [`table`]. [`chrome`] holds the shared Chrome-trace writer.

mod bench;
mod chrome;
mod faults;
mod simulate;
mod synth;
mod table;
mod verify;

use std::process::ExitCode;

/// Parses `args` with `parse` and hands the config to `run`, mapping the
/// three outcomes every subcommand shares onto exit codes: success, a
/// runtime error (1), the `--help` sentinel (print usage, success) and a
/// usage error (2).
fn dispatch<C>(
    args: &[String],
    usage: &str,
    parse: impl FnOnce(&[String]) -> Result<C, String>,
    run: impl FnOnce(&C) -> Result<(), String>,
) -> ExitCode {
    match parse(args) {
        Ok(cfg) => match run(&cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg.is_empty() => {
            print!("{usage}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{usage}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("table") => dispatch(
            &args[1..],
            table::TABLE_USAGE,
            table::parse_table_args,
            table::run_table,
        ),
        Some("faults") => dispatch(
            &args[1..],
            faults::FAULTS_USAGE,
            faults::parse_faults_args,
            faults::run_faults,
        ),
        Some("bench") => dispatch(
            &args[1..],
            bench::BENCH_USAGE,
            bench::parse_bench_args,
            bench::run_bench,
        ),
        Some("synth") => dispatch(
            &args[1..],
            synth::SYNTH_USAGE,
            synth::parse_synth_args,
            synth::run_synth,
        ),
        Some("verify") => dispatch(
            &args[1..],
            verify::VERIFY_USAGE,
            verify::parse_verify_args,
            verify::run_verify,
        ),
        _ => dispatch(&args, simulate::USAGE, simulate::parse_args, simulate::run),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    /// Splits a flat option string into owned argv words for parser tests.
    pub(crate) fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::args;

    #[test]
    fn shared_flags_parse_identically_across_subcommands() {
        let shared = "--seed 11 --jobs 3 --trace-out /tmp/t.json";
        let v = crate::verify::parse_verify_args(&args(shared)).expect("verify");
        let f = crate::faults::parse_faults_args(&args(shared)).expect("faults");
        let b = crate::bench::parse_bench_args(&args(shared)).expect("bench");
        assert_eq!((v.jobs, f.jobs, b.jobs), (3, 3, 3));
        assert_eq!((v.seed, f.seed, b.seed), (Some(11), 11, 11));
        assert_eq!(v.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(f.trace_out, b.trace_out);
        assert_eq!(v.trace_out, f.trace_out);
        for err in [
            crate::verify::parse_verify_args(&args("--jobs 0")).unwrap_err(),
            crate::faults::parse_faults_args(&args("--jobs 0")).unwrap_err(),
            crate::bench::parse_bench_args(&args("--jobs 0")).unwrap_err(),
        ] {
            assert!(err.contains("at least 1"), "{err}");
        }
    }
}
