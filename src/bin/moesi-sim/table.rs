//! The `table` subcommand: print protocol policy tables (Tables 3-7).

use moesi::protocols::by_name;
use moesi_futurebus::cli::CommonOpts;

pub(crate) const TABLE_USAGE: &str = "\
moesi-sim table: print protocol policy tables (the paper's Tables 3-7)

Renders the chosen action per (state, event) cell straight from each
protocol's PolicyTable — the same data the engine interprets — with `-` for
error-condition cells, plus the structural class-membership verdict.

USAGE:
    moesi-sim table [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocols to render
                      [default: berkeley,dragon,write-once,illinois,firefly]
    --seed N          seed for seeded protocols such as random [default: 42]
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct TableConfig {
    pub(crate) protocols: Vec<String>,
    pub(crate) seed: u64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            // The paper's protocol examples, in table order (Tables 3-7).
            protocols: ["berkeley", "dragon", "write-once", "illinois", "firefly"]
                .map(str::to_string)
                .to_vec(),
            seed: 42,
        }
    }
}

pub(crate) fn parse_table_args(args: &[String]) -> Result<TableConfig, String> {
    let mut cfg = TableConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if common.jobs.is_some() || common.trace_out.is_some() {
        return Err("`table` accepts only --protocol and --seed".to_string());
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    Ok(cfg)
}

pub(crate) fn run_table(cfg: &TableConfig) -> Result<(), String> {
    for name in &cfg.protocols {
        let p = by_name(name, cfg.seed).ok_or_else(|| format!("unknown protocol `{name}`"))?;
        let table = p
            .policy_table()
            .ok_or_else(|| format!("`{name}` exposes no policy table"))?;
        print!("{}", table.render());
        if !p.table_is_exact() {
            println!("note: base table only — a stateful hook refines the choice per line");
        }
        let violations = table.class_violations();
        if violations.is_empty() {
            println!("class membership: IN the MOESI compatible class");
        } else {
            println!(
                "class membership: ADAPTED ({} out-of-class entries)",
                violations.len()
            );
        }
        println!();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::args;

    #[test]
    fn table_args_parse_and_render() {
        assert_eq!(
            parse_table_args(&[]).expect("empty"),
            TableConfig::default()
        );
        let cfg = parse_table_args(&args("--protocol hybrid,moesi --seed 9")).expect("valid");
        assert_eq!(cfg.protocols, vec!["hybrid", "moesi"]);
        assert_eq!(cfg.seed, 9);
        assert!(parse_table_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_table_args(&args("--jobs 2"))
            .unwrap_err()
            .contains("only --protocol and --seed"));
        run_table(&TableConfig::default()).expect("default tables render");
        run_table(&cfg).expect("hybrid and moesi tables render");
        let err = run_table(&TableConfig {
            protocols: vec!["mesif".to_string()],
            seed: 0,
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }
}
