//! The `synth` subcommand: search the compatibility class for
//! workload-tuned policy tables.

use moesi_futurebus::cli::CommonOpts;

pub(crate) const SYNTH_USAGE: &str = "\
moesi-sim synth: search the compatibility class for workload-tuned tables

Hill-climbs over the permitted sets per (state, event) cell of the class,
one search per workload: the starting pool is every shipped exact-table
copy-back class member, candidate fitness is timed-model throughput on the
target workload, and each winner is audited structurally, by bounded
exhaustive exploration against a MOESI peer, and by a fault-injection
campaign that must report zero silent corruption. Candidate evaluations
shard across a worker pool; all output is byte-identical for any --jobs
value.

USAGE:
    moesi-sim synth [OPTIONS]

OPTIONS:
    --workload LIST   comma-separated workloads to synthesize for
                      [default: all six]
    --cpus N          processors per fitness machine [default: 4]
    --steps N         references per processor per evaluation [default: 2000]
    --cache-bytes N   per-node cache capacity [default: 2048]
    --rounds N        maximum improving hill-climb steps per workload
                      (0 = just pick the best starting table) [default: 4]
    --campaign-steps N
                      accesses per machine in the audit fault campaign
                      [default: 2500]
    --sensitivity     also run the section 5.2 cost-ratio study: re-score
                      each winner and the pool across a 27-point grid of
                      bus/memory/cache cost scales and report where the
                      winner flips
    --seed N          workload seed for every evaluation [default: 7]
    --jobs N          worker threads sharding evaluations [default:
                      available cores]
    --shards N        run every fitness evaluation as a sharded sweep
                      (fixed address regions on N workers); the search is
                      byte-identical for any N [default: off]
    --out PATH        write the winners as a parseable policy-table document
    --json-out PATH   write the full report as JSON
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SynthCliConfig {
    pub(crate) workloads: Option<Vec<String>>,
    pub(crate) cpus: usize,
    pub(crate) steps: u64,
    pub(crate) cache_bytes: usize,
    pub(crate) rounds: usize,
    pub(crate) campaign_steps: u64,
    pub(crate) sensitivity: bool,
    pub(crate) seed: u64,
    pub(crate) jobs: usize,
    pub(crate) shards: usize,
    pub(crate) out: Option<String>,
    pub(crate) json_out: Option<String>,
}

impl Default for SynthCliConfig {
    fn default() -> Self {
        let base = synth::SynthConfig::default();
        SynthCliConfig {
            workloads: None,
            cpus: base.cpus,
            steps: base.steps,
            cache_bytes: base.cache_bytes,
            rounds: base.rounds,
            campaign_steps: base.campaign_steps,
            sensitivity: false,
            seed: base.seed,
            jobs: base.jobs,
            shards: base.shards,
            out: None,
            json_out: None,
        }
    }
}

pub(crate) fn parse_synth_args(args: &[String]) -> Result<SynthCliConfig, String> {
    let mut cfg = SynthCliConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let number = |name: &str, v: &str| -> Result<u64, String> {
            let n: u64 = v.parse().map_err(|_| format!("{name} expects a number"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--workload" => {
                let items: Vec<String> = value("--workload")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if items.is_empty() {
                    return Err("--workload list is empty".to_string());
                }
                cfg.workloads = Some(items);
            }
            "--cpus" => cfg.cpus = number("--cpus", value("--cpus")?)? as usize,
            "--steps" => cfg.steps = number("--steps", value("--steps")?)?,
            "--cache-bytes" => {
                cfg.cache_bytes = number("--cache-bytes", value("--cache-bytes")?)? as usize;
            }
            "--rounds" => {
                // 0 is meaningful: no climbing, just pick the best start.
                cfg.rounds = value("--rounds")?
                    .parse()
                    .map_err(|_| "--rounds expects a number".to_string())?;
            }
            "--campaign-steps" => {
                cfg.campaign_steps = number("--campaign-steps", value("--campaign-steps")?)?;
            }
            "--shards" => cfg.shards = number("--shards", value("--shards")?)? as usize,
            "--sensitivity" => cfg.sensitivity = true,
            "--out" => cfg.out = Some(value("--out")?.clone()),
            "--json-out" => cfg.json_out = Some(value("--json-out")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if common.trace_out.is_some() {
        return Err("--trace-out is not supported by synth".to_string());
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    Ok(cfg)
}

fn synth_config(cfg: &SynthCliConfig) -> synth::SynthConfig {
    let base = synth::SynthConfig::default();
    synth::SynthConfig {
        workloads: cfg.workloads.clone().unwrap_or(base.workloads),
        cpus: cfg.cpus,
        steps: cfg.steps,
        cache_bytes: cfg.cache_bytes,
        rounds: cfg.rounds,
        seed: cfg.seed,
        jobs: cfg.jobs,
        shards: cfg.shards,
        timing: base.timing,
        campaign_steps: cfg.campaign_steps,
    }
}

pub(crate) fn run_synth(cfg: &SynthCliConfig) -> Result<(), String> {
    let synth_cfg = synth_config(cfg);
    let report = synth::synthesize(&synth_cfg)?;
    print!("{}", synth::render_report(&report));
    let sens = if cfg.sensitivity {
        let rows = synth::sensitivity(&synth_cfg, &report)?;
        print!("{}", synth::render_sensitivity(&rows));
        Some(rows)
    } else {
        None
    };
    if let Some(path) = &cfg.out {
        std::fs::write(path, synth::tables_document(&report))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &cfg.json_out {
        let json = synth::report_json(&synth_cfg, &report, sens.as_deref());
        std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(bad) = report
        .outcomes
        .iter()
        .find(|o| o.structural_violations > 0 || !o.exhaustive_clean)
    {
        return Err(format!("winner `{}` failed its audit", bad.winner.name()));
    }
    if report.faults_silent > 0 {
        return Err(format!(
            "fault campaign observed {} silent corruption(s)",
            report.faults_silent
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::args;

    #[test]
    fn synth_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_synth_args(&[]).expect("empty"),
            SynthCliConfig::default()
        );
        let cfg = parse_synth_args(&args(
            "--workload ping-pong,general --cpus 2 --steps 80 --cache-bytes 1024 \
             --rounds 0 --campaign-steps 300 --sensitivity --seed 5 --jobs 2 \
             --out /tmp/s.txt --json-out /tmp/s.json",
        ))
        .expect("valid");
        assert_eq!(
            cfg.workloads,
            Some(vec!["ping-pong".into(), "general".into()])
        );
        assert_eq!((cfg.cpus, cfg.steps, cfg.cache_bytes), (2, 80, 1024));
        assert_eq!((cfg.rounds, cfg.campaign_steps), (0, 300));
        assert!(cfg.sensitivity);
        assert_eq!((cfg.seed, cfg.jobs), (5, 2));
        assert_eq!(cfg.out.as_deref(), Some("/tmp/s.txt"));
        assert_eq!(cfg.json_out.as_deref(), Some("/tmp/s.json"));
        assert!(parse_synth_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_synth_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_synth_args(&args("--steps 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_synth_args(&args("--trace-out /tmp/t.json"))
            .unwrap_err()
            .contains("not supported"));
        let cfg = parse_synth_args(&args("--shards 2")).expect("valid");
        assert_eq!(cfg.shards, 2);
        assert_eq!(synth_config(&cfg).shards, 2);
        assert_eq!(
            parse_synth_args(&[]).expect("empty").shards,
            0,
            "sharding stays off unless asked for"
        );
        assert!(parse_synth_args(&args("--shards 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn synth_smoke_run_writes_outputs() {
        let out = std::env::temp_dir().join("moesi_sim_synth_smoke.txt");
        let json_out = std::env::temp_dir().join("moesi_sim_synth_smoke.json");
        let cfg = SynthCliConfig {
            workloads: Some(vec!["ping-pong".into()]),
            cpus: 2,
            steps: 40,
            rounds: 0,
            campaign_steps: 150,
            out: Some(out.to_string_lossy().into_owned()),
            json_out: Some(json_out.to_string_lossy().into_owned()),
            ..SynthCliConfig::default()
        };
        run_synth(&cfg).expect("synth smoke succeeds");
        let doc = std::fs::read_to_string(&out).expect("tables written");
        let tables = moesi::parse_member_tables(&doc).expect("document parses in-class");
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name(), "synth-ping-pong");
        let json = std::fs::read_to_string(&json_out).expect("json written");
        assert!(json.contains("\"winner\": \"synth-ping-pong\""), "{json}");
        assert!(json.contains("\"faults_silent\": 0"), "{json}");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&json_out);
        // Unknown workloads are reported.
        let err = run_synth(&SynthCliConfig {
            workloads: Some(vec!["zipfian".into()]),
            out: None,
            json_out: None,
            ..cfg
        })
        .unwrap_err();
        assert!(err.contains("zipfian"), "{err}");
    }
}
