//! The default (no-subcommand) mode: build a machine from flags, drive it
//! with a synthetic workload or a replayed trace, and print the per-node
//! statistics.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::by_name;
use mpsim::workload::{
    DuboisBriggs, FalseSharing, Migratory, PingPong, ProducerConsumer, ReadMostly, SharingModel,
};
use mpsim::{RefStream, System, SystemBuilder, TraceReplay};

pub(crate) const USAGE: &str = "\
moesi-sim: simulate MOESI-class cache consistency protocols on a Futurebus

USAGE:
    moesi-sim [OPTIONS]

SUBCOMMANDS:
    verify            exhaustively model-check small configurations
                      (see `moesi-sim verify --help`)
    faults            run a seeded fault-injection campaign and audit the
                      recovery (see `moesi-sim faults --help`)
    bench             run the protocol x workload benchmark sweep
                      (see `moesi-sim bench --help`)
    synth             search the compatibility class for workload-tuned
                      policy tables (see `moesi-sim synth --help`)
    table             print protocol policy tables, the paper's Tables 3-7
                      (see `moesi-sim table --help`)

OPTIONS:
    --protocol LIST   comma-separated per-node protocols (repeating the last
                      to fill --cpus). Known: moesi, moesi-invalidating,
                      puzak, berkeley, dragon, write-once, illinois, firefly, synapse,
                      write-through, non-caching, random, hybrid. [default: moesi]
    --cpus N          number of nodes [default: 4]
    --clusters CxN    run a two-level hierarchy instead: C clusters of N
                      nodes each on private buses behind bridges (ignores
                      --cpus; the oracle and workloads apply per node)
    --workload NAME   general | ping-pong | read-mostly | migratory |
                      producer-consumer | false-sharing [default: general]
    --trace-file PATH replay a textual trace (R/W addr [size]) on every node
                      instead of a synthetic workload
    --steps N         steps per node [default: 1000]
    --line-size N     system line size in bytes [default: 32]
    --cache-bytes N   per-node cache capacity [default: 4096]
    --seed N          RNG seed [default: 42]
    --check           enable the consistency oracle (panics on violation)
    --trace N         print the last N bus transactions
    --census          print per-node MOESI state censuses
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Config {
    pub(crate) protocols: Vec<String>,
    pub(crate) cpus: usize,
    pub(crate) clusters: Option<(usize, usize)>,
    pub(crate) workload: String,
    pub(crate) trace_file: Option<String>,
    pub(crate) steps: u64,
    pub(crate) line_size: usize,
    pub(crate) cache_bytes: usize,
    pub(crate) seed: u64,
    pub(crate) check: bool,
    pub(crate) trace: usize,
    pub(crate) census: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            protocols: vec!["moesi".to_string()],
            cpus: 4,
            clusters: None,
            workload: "general".to_string(),
            trace_file: None,
            steps: 1000,
            line_size: 32,
            cache_bytes: 4096,
            seed: 42,
            check: false,
            trace: 0,
            census: false,
        }
    }
}

pub(crate) fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--cpus" => {
                cfg.cpus = value("--cpus")?
                    .parse()
                    .map_err(|_| "--cpus expects a number".to_string())?;
                if cfg.cpus == 0 {
                    return Err("--cpus must be at least 1".to_string());
                }
            }
            "--clusters" => {
                let spec = value("--clusters")?;
                let (c, n) = spec
                    .split_once(['x', 'X'])
                    .ok_or_else(|| "--clusters expects CxN, e.g. 4x2".to_string())?;
                let c: usize = c
                    .parse()
                    .map_err(|_| "--clusters expects CxN".to_string())?;
                let n: usize = n
                    .parse()
                    .map_err(|_| "--clusters expects CxN".to_string())?;
                if c == 0 || n == 0 {
                    return Err("--clusters dimensions must be at least 1".to_string());
                }
                cfg.clusters = Some((c, n));
            }
            "--workload" => cfg.workload = value("--workload")?.clone(),
            "--trace-file" => cfg.trace_file = Some(value("--trace-file")?.clone()),
            "--steps" => {
                cfg.steps = value("--steps")?
                    .parse()
                    .map_err(|_| "--steps expects a number".to_string())?;
            }
            "--line-size" => {
                cfg.line_size = value("--line-size")?
                    .parse()
                    .map_err(|_| "--line-size expects a number".to_string())?;
            }
            "--cache-bytes" => {
                cfg.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|_| "--cache-bytes expects a number".to_string())?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--check" => cfg.check = true,
            "--census" => cfg.census = true,
            "--trace" => {
                cfg.trace = value("--trace")?
                    .parse()
                    .map_err(|_| "--trace expects a number".to_string())?;
            }
            "--help" | "-h" => return Err(String::new()), // signals: print usage
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(cfg)
}

fn build_system(cfg: &Config) -> Result<System, String> {
    let cache_cfg = CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru);
    let mut builder = SystemBuilder::new(cfg.line_size)
        .checking(cfg.check)
        .seed(cfg.seed);
    for i in 0..cfg.cpus {
        let name = cfg
            .protocols
            .get(i)
            .or_else(|| cfg.protocols.last())
            .expect("non-empty protocol list");
        let protocol = by_name(name, cfg.seed.wrapping_add(i as u64))
            .ok_or_else(|| format!("unknown protocol `{name}`"))?;
        builder = if protocol.kind() == moesi::CacheKind::NonCaching {
            builder.uncached(protocol)
        } else {
            builder.cache(protocol, cache_cfg)
        };
    }
    Ok(builder.build())
}

fn build_streams(cfg: &Config) -> Result<Vec<Box<dyn RefStream + Send>>, String> {
    if let Some(path) = &cfg.trace_file {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace file `{path}`: {e}"))?;
        let replay = TraceReplay::from_text(&text).map_err(|e| e.to_string())?;
        return Ok((0..cfg.cpus)
            .map(|_| Box::new(replay.clone()) as Box<dyn RefStream + Send>)
            .collect());
    }
    let line = cfg.line_size as u64;
    (0..cfg.cpus)
        .map(|cpu| -> Result<Box<dyn RefStream + Send>, String> {
            Ok(match cfg.workload.as_str() {
                "general" => Box::new(DuboisBriggs::new(
                    cpu,
                    SharingModel {
                        line_size: line,
                        ..SharingModel::default()
                    },
                    cfg.seed,
                )),
                "ping-pong" => Box::new(PingPong::new(cpu, 0, line)),
                "read-mostly" => Box::new(ReadMostly::new(cpu, 0, 16, line, 8)),
                "migratory" => Box::new(Migratory::new(cpu, cfg.cpus, 8, line)),
                "producer-consumer" => {
                    if cpu == 0 {
                        Box::new(ProducerConsumer::producer(8, line))
                    } else {
                        Box::new(ProducerConsumer::consumer(8, line))
                    }
                }
                "false-sharing" => Box::new(FalseSharing::new(cpu, 0, line, 3)),
                other => return Err(format!("unknown workload `{other}`")),
            })
        })
        .collect()
}

fn run_hierarchy(cfg: &Config, clusters: usize, per_cluster: usize) -> Result<(), String> {
    use mpsim::hierarchy::HierarchyBuilder;
    let cache_cfg = CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru);
    let mut b = HierarchyBuilder::new(cfg.line_size)
        .checking(cfg.check)
        .seed(cfg.seed);
    for c in 0..clusters {
        b = b.cluster();
        for n in 0..per_cluster {
            let i = c * per_cluster + n;
            let name = cfg
                .protocols
                .get(i)
                .or_else(|| cfg.protocols.last())
                .expect("non-empty protocol list");
            let protocol = by_name(name, cfg.seed.wrapping_add(i as u64))
                .ok_or_else(|| format!("unknown protocol `{name}`"))?;
            b = if protocol.kind() == moesi::CacheKind::NonCaching {
                b.uncached(protocol)
            } else {
                b.cache(protocol, cache_cfg)
            };
        }
    }
    let mut sys = b.build();
    let mut flat_cfg = cfg.clone();
    flat_cfg.cpus = per_cluster; // streams built per cluster
    let mut streams = Vec::new();
    for _ in 0..clusters {
        streams.push(build_streams(&flat_cfg)?);
    }
    sys.run(&mut streams, cfg.steps);
    if cfg.check {
        sys.verify()
            .map_err(|v| format!("consistency violation: {v}"))?;
    }
    println!(
        "{clusters} clusters x {per_cluster} nodes x {} steps, workload `{}`{}\n",
        cfg.steps,
        cfg.workload,
        if cfg.check { " [oracle: OK]" } else { "" },
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "cluster", "parent-txns", "fetches", "bcasts", "supplied", "inv-in"
    );
    for c in 0..clusters {
        let b = sys.bridge(c).stats();
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
            format!("cluster{c}"),
            b.parent_transactions,
            b.fetches,
            b.broadcasts,
            b.supplied,
            b.invalidations_in,
        );
    }
    println!(
        "\nparent bus: {} txns; cluster buses: {} txns total",
        sys.parent_stats().transactions,
        (0..clusters)
            .map(|c| sys.bridge(c).fabric().bus().stats().transactions)
            .sum::<u64>(),
    );
    Ok(())
}

pub(crate) fn run(cfg: &Config) -> Result<(), String> {
    if let Some((clusters, per_cluster)) = cfg.clusters {
        return run_hierarchy(cfg, clusters, per_cluster);
    }
    let mut sys = build_system(cfg)?;
    if cfg.trace > 0 {
        sys.enable_trace(cfg.trace);
    }
    let mut streams = build_streams(cfg)?;
    sys.run(&mut streams, cfg.steps);
    if cfg.check {
        sys.verify()
            .map_err(|v| format!("consistency violation: {v}"))?;
    }

    println!(
        "{} nodes x {} steps, workload `{}`, line {}B{}\n",
        sys.nodes(),
        cfg.steps,
        cfg.trace_file.as_deref().unwrap_or(&cfg.workload),
        cfg.line_size,
        if cfg.check { " [oracle: OK]" } else { "" },
    );
    println!(
        "{:<24} {:>8} {:>7} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "node", "refs", "hit%", "bus txns", "inv-recv", "upd-recv", "interv", "pushes"
    );
    for cpu in 0..sys.nodes() {
        let s = sys.stats(cpu);
        println!(
            "{:<24} {:>8} {:>6.1}% {:>9} {:>9} {:>9} {:>8} {:>7}",
            sys.controller(cpu).name(),
            s.references(),
            s.hit_ratio() * 100.0,
            s.bus_transactions,
            s.invalidations_received,
            s.updates_received,
            s.interventions_supplied,
            s.pushes,
        );
    }
    println!("\n{}", sys.bus_stats());

    if cfg.census {
        println!("\nMOESI state census:");
        for cpu in 0..sys.nodes() {
            println!(
                "  {:<24} {}",
                sys.controller(cpu).name(),
                sys.state_census(cpu)
            );
        }
    }
    if cfg.trace > 0 {
        println!("\nlast {} bus transactions:", sys.trace().len());
        for line in sys.trace().render().lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::args;

    #[test]
    fn defaults_apply_with_no_args() {
        let cfg = parse_args(&[]).expect("empty args");
        assert_eq!(cfg, Config::default());
    }

    #[test]
    fn full_option_set_parses() {
        let cfg = parse_args(&args(
            "--protocol moesi,dragon --cpus 6 --workload ping-pong --steps 50 \
             --line-size 64 --cache-bytes 8192 --seed 7 --check --census --trace 12",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, vec!["moesi", "dragon"]);
        assert_eq!(cfg.cpus, 6);
        assert_eq!(cfg.workload, "ping-pong");
        assert_eq!(cfg.steps, 50);
        assert_eq!(cfg.line_size, 64);
        assert_eq!(cfg.cache_bytes, 8192);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.check && cfg.census);
        assert_eq!(cfg.trace, 12);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_args(&args("--cpus"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_args(&args("--cpus zero"))
            .unwrap_err()
            .contains("expects a number"));
        assert!(parse_args(&args("--cpus 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(
            parse_args(&args("--help")).unwrap_err().is_empty(),
            "help sentinel"
        );
    }

    #[test]
    fn unknown_protocol_is_reported_at_build_time() {
        let cfg = Config {
            protocols: vec!["tcc-1999".to_string()],
            ..Config::default()
        };
        assert!(build_system(&cfg).unwrap_err().contains("unknown protocol"));
    }

    #[test]
    fn protocol_list_extends_to_cpu_count() {
        let cfg = Config {
            protocols: vec!["moesi".to_string(), "dragon".to_string()],
            cpus: 4,
            ..Config::default()
        };
        let sys = build_system(&cfg).expect("builds");
        assert_eq!(sys.nodes(), 4);
        assert!(sys.controller(0).name().contains("MOESI"));
        assert!(sys.controller(1).name().contains("Dragon"));
        assert!(sys.controller(3).name().contains("Dragon"), "last repeats");
    }

    #[test]
    fn end_to_end_smoke_run() {
        let cfg = Config {
            steps: 30,
            check: true,
            census: true,
            trace: 4,
            workload: "ping-pong".to_string(),
            ..Config::default()
        };
        run(&cfg).expect("smoke run succeeds");
    }

    #[test]
    fn clusters_spec_parses_and_validates() {
        let cfg = parse_args(&args("--clusters 4x2")).expect("valid");
        assert_eq!(cfg.clusters, Some((4, 2)));
        assert!(parse_args(&args("--clusters 4"))
            .unwrap_err()
            .contains("CxN"));
        assert!(parse_args(&args("--clusters 0x2"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn hierarchy_smoke_run() {
        let cfg = Config {
            clusters: Some((2, 2)),
            steps: 20,
            check: true,
            ..Config::default()
        };
        run(&cfg).expect("hierarchy run succeeds");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let cfg = Config {
            workload: "mystery".to_string(),
            ..Config::default()
        };
        assert!(run(&cfg).unwrap_err().contains("unknown workload"));
    }
}
