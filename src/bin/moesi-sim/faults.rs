//! The `faults` subcommand: seeded fault-injection campaigns, flat and
//! hierarchical, audited against the consistency oracle.

use crate::chrome::write_chrome_trace;
use futurebus::fault::{FaultConfig, FaultKind};
use moesi_futurebus::cli::CommonOpts;
use mpsim::{run_campaign, CampaignConfig, HierarchyCampaignConfig};

pub(crate) const FAULTS_USAGE: &str = "\
moesi-sim faults: run a seeded fault-injection campaign over the class

Runs one machine per protocol on a bus that injects wired-OR consistency
line glitches, module stalls and kills, BS abort storms and memory soft
errors, then audits every fault against the consistency oracle and
classifies it masked / detected / SILENT. Exits nonzero if any fault is
silent — the graceful-degradation claim made executable.

With --hierarchy the campaign targets a two-level machine instead: the
parent bus injects bridge stalls and kills (the watchdog retires the
bridge, salvages or reports every dirty line, and the cluster degrades to
memory-direct), inclusion-tag soft errors (scrubbed from cluster
evidence), plus glitches, storms and memory corruption, while each cluster
bus glitches and storms independently. The run ends with the seeded
liveness probe: a phantom-BS storm that livelocks naive flat retry and is
recovered by capped backoff with arbitration priority aging.

USAGE:
    moesi-sim faults [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocols, one homogeneous machine per
                      entry [default: moesi,dragon,write-through,berkeley,
                      hybrid]
    --hierarchy       run the bridge campaign described above
    --clusters N      clusters on the root bus (with --hierarchy) [default: 2]
    --depth N         bus levels in the fabric tree (with --hierarchy): 2 is
                      the classic two-level machine; deeper values interpose
                      interior segments whose modules are child bridges
                      [default: 2]
    --fanout N        children per interior segment when --depth > 2 (with
                      --hierarchy) [default: 2]
    --cpus N          processors per machine, or per cluster with
                      --hierarchy [default: 4]
    --steps N         processor accesses per machine [default: 2500]
    --lines N         distinct lines in the working set [default: 96]
    --line-size N     bytes per line [default: 16]
    --cache-bytes N   per-node cache capacity [default: 1024]
    --seed N          campaign seed, covering workload and faults
                      [default: 51966]
    --rate R          base per-transaction injection rate in [0, 1]. Enabled
                      kinds scale from it: glitch, corrupt and stale-tag
                      land at R, storms at R/2, stalls and kills — bridge
                      stalls and kills under --hierarchy — at R/100
                      (retirements are permanent, so they stay rare)
                      [default: 0.1]
    --kind LIST       fault kinds to enable: glitch, stall, kill, storm,
                      corrupt, bridge-stall, bridge-kill, stale-tag, or all
                      (the bridge kinds only fire with --hierarchy)
                      [default: all]
    --jobs N          worker threads, one protocol machine per job; the
                      report is identical for any N [default: available
                      cores]
    --shards N        run each protocol's campaign sharded: the planned
                      access schedule splits over fixed address regions,
                      one region machine each, merged on N workers. The
                      report is byte-identical for any N (flat campaigns
                      only) [default: off]
    --json            also write the report (with the lost/salvaged-line and
                      retry/backoff ledgers) as JSON to --out
    --out PATH        JSON output path [default: FAULTS_report.json]
    --trace-out FILE  also write a Chrome trace (chrome://tracing JSON) of
                      one exemplar faulted run of the first protocol; flat
                      campaigns only; the file is identical for any --jobs
                      value
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FaultsConfig {
    pub(crate) protocols: Vec<String>,
    pub(crate) hierarchy: bool,
    pub(crate) clusters: usize,
    pub(crate) depth: usize,
    pub(crate) fanout: usize,
    pub(crate) cpus: usize,
    pub(crate) steps: u64,
    pub(crate) lines: u64,
    pub(crate) line_size: usize,
    pub(crate) cache_bytes: usize,
    pub(crate) seed: u64,
    pub(crate) rate: f64,
    pub(crate) kinds: Vec<FaultKind>,
    pub(crate) jobs: usize,
    pub(crate) shards: usize,
    pub(crate) json: bool,
    pub(crate) out: String,
    pub(crate) trace_out: Option<String>,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        let base = CampaignConfig::default();
        FaultsConfig {
            protocols: base.protocols,
            hierarchy: false,
            clusters: HierarchyCampaignConfig::default().clusters,
            depth: HierarchyCampaignConfig::default().depth,
            fanout: HierarchyCampaignConfig::default().fanout,
            cpus: base.cpus,
            steps: base.steps,
            lines: base.lines,
            line_size: base.line_size,
            cache_bytes: base.cache_bytes,
            seed: base.seed,
            rate: 0.1,
            kinds: FaultKind::ALL.to_vec(),
            jobs: base.jobs,
            shards: base.shards,
            json: false,
            out: "FAULTS_report.json".to_string(),
            trace_out: None,
        }
    }
}

fn parse_fault_kinds(list: &str) -> Result<Vec<FaultKind>, String> {
    let mut kinds = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match name {
            "glitch" => kinds.push(FaultKind::Glitch),
            "stall" => kinds.push(FaultKind::Stall),
            "kill" => kinds.push(FaultKind::Kill),
            "storm" | "abort-storm" => kinds.push(FaultKind::AbortStorm),
            "corrupt" | "corrupt-memory" => kinds.push(FaultKind::CorruptMemory),
            "bridge-stall" => kinds.push(FaultKind::BridgeStall),
            "bridge-kill" => kinds.push(FaultKind::BridgeKill),
            "stale-tag" => kinds.push(FaultKind::StaleTag),
            "all" => kinds.extend(FaultKind::ALL),
            other => return Err(format!("unknown fault kind `{other}`")),
        }
    }
    if kinds.is_empty() {
        return Err("--kind list is empty".to_string());
    }
    kinds.dedup();
    Ok(kinds)
}

pub(crate) fn parse_faults_args(args: &[String]) -> Result<FaultsConfig, String> {
    let mut cfg = FaultsConfig::default();
    let mut common = CommonOpts::default();
    let mut depth: Option<usize> = None;
    let mut fanout: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let number = |name: &str, v: &str| -> Result<u64, String> {
            let n: u64 = v.parse().map_err(|_| format!("{name} expects a number"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--cpus" => cfg.cpus = number("--cpus", value("--cpus")?)? as usize,
            "--steps" => cfg.steps = number("--steps", value("--steps")?)?,
            "--lines" => cfg.lines = number("--lines", value("--lines")?)?,
            "--line-size" => {
                cfg.line_size = number("--line-size", value("--line-size")?)? as usize;
                if cfg.line_size < 4 {
                    return Err("--line-size must be at least 4".to_string());
                }
            }
            "--cache-bytes" => {
                cfg.cache_bytes = number("--cache-bytes", value("--cache-bytes")?)? as usize;
            }
            "--rate" => {
                cfg.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "--rate expects a number".to_string())?;
                if !(0.0..=1.0).contains(&cfg.rate) {
                    return Err("--rate must be between 0 and 1".to_string());
                }
            }
            "--kind" => cfg.kinds = parse_fault_kinds(value("--kind")?)?,
            "--shards" => cfg.shards = number("--shards", value("--shards")?)? as usize,
            "--hierarchy" => cfg.hierarchy = true,
            "--clusters" => cfg.clusters = number("--clusters", value("--clusters")?)? as usize,
            "--depth" => {
                let d = number("--depth", value("--depth")?)? as usize;
                if d < 2 {
                    return Err("--depth must be at least 2 (the two-level machine)".to_string());
                }
                depth = Some(d);
            }
            "--fanout" => fanout = Some(number("--fanout", value("--fanout")?)? as usize),
            "--json" => cfg.json = true,
            "--out" => cfg.out = value("--out")?.clone(),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    cfg.trace_out = common.trace_out;
    if cfg.hierarchy && cfg.trace_out.is_some() {
        return Err("--trace-out traces a flat run; drop it or drop --hierarchy".to_string());
    }
    if cfg.hierarchy && cfg.shards > 0 {
        return Err("--shards shards a flat campaign; drop it or drop --hierarchy".to_string());
    }
    if !cfg.hierarchy && (depth.is_some() || fanout.is_some()) {
        return Err("--depth/--fanout shape the fabric tree; add --hierarchy".to_string());
    }
    if let Some(d) = depth {
        cfg.depth = d;
    }
    if let Some(f) = fanout {
        cfg.fanout = f;
    }
    Ok(cfg)
}

fn fault_rates(cfg: &FaultsConfig) -> FaultConfig {
    let mut faults = FaultConfig {
        // Decorrelate the fault stream from the workload stream while keeping
        // both under the single --seed knob.
        seed: cfg.seed ^ 0xFA_017,
        max_storm_rounds: 4,
        ..FaultConfig::default()
    };
    for kind in &cfg.kinds {
        match kind {
            FaultKind::Glitch => faults.glitch_rate = cfg.rate,
            // Stall/kill double as bridge-stall/bridge-kill: the plan's
            // `bridges` flag (set only on a hierarchy's parent bus) decides
            // which the victim is, so either spelling enables the rate.
            FaultKind::Stall | FaultKind::BridgeStall => faults.stall_rate = cfg.rate / 100.0,
            FaultKind::Kill | FaultKind::BridgeKill => faults.kill_rate = cfg.rate / 100.0,
            FaultKind::AbortStorm => faults.storm_rate = cfg.rate / 2.0,
            FaultKind::CorruptMemory => faults.corrupt_rate = cfg.rate,
            FaultKind::StaleTag => faults.stale_tag_rate = cfg.rate,
        }
    }
    faults
}

fn campaign_config(cfg: &FaultsConfig) -> CampaignConfig {
    CampaignConfig {
        protocols: cfg.protocols.clone(),
        cpus: cfg.cpus,
        line_size: cfg.line_size,
        cache_bytes: cfg.cache_bytes,
        steps: cfg.steps,
        lines: cfg.lines,
        seed: cfg.seed,
        tables: Vec::new(),
        faults: fault_rates(cfg),
        jobs: cfg.jobs,
        shards: cfg.shards,
    }
}

fn hierarchy_campaign_config(cfg: &FaultsConfig) -> HierarchyCampaignConfig {
    HierarchyCampaignConfig {
        protocols: cfg.protocols.clone(),
        clusters: cfg.clusters,
        depth: cfg.depth,
        fanout: cfg.fanout,
        cpus: cfg.cpus,
        line_size: cfg.line_size,
        cache_bytes: cfg.cache_bytes,
        steps: cfg.steps,
        lines: cfg.lines,
        seed: cfg.seed,
        faults: fault_rates(cfg),
        jobs: cfg.jobs,
        ..HierarchyCampaignConfig::default()
    }
}

pub(crate) fn run_faults(cfg: &FaultsConfig) -> Result<(), String> {
    if cfg.hierarchy {
        return run_hierarchy_faults(cfg);
    }
    let campaign = campaign_config(cfg);
    let report = run_campaign(&campaign)?;
    println!("{report}");
    if cfg.json {
        std::fs::write(&cfg.out, mpsim::campaign_report_json(&report))
            .map_err(|e| format!("cannot write `{}`: {e}", cfg.out))?;
        println!("JSON report written to {}", cfg.out);
    }
    if let Some(path) = &cfg.trace_out {
        write_chrome_trace(
            path,
            &mpsim::TraceRunConfig {
                protocol: campaign.protocols[0].clone(),
                cpus: campaign.cpus,
                line_size: campaign.line_size,
                cache_bytes: campaign.cache_bytes,
                steps: campaign.steps,
                lines: campaign.lines,
                seed: campaign.seed,
                faults: Some(campaign.faults),
            },
        )?;
    }
    if report.silent() > 0 {
        return Err(format!(
            "{} fault(s) caused silent corruption",
            report.silent()
        ));
    }
    Ok(())
}

fn run_hierarchy_faults(cfg: &FaultsConfig) -> Result<(), String> {
    let campaign = hierarchy_campaign_config(cfg);
    let report = mpsim::run_hierarchy_campaign(&campaign)?;
    println!("{report}");
    println!();
    let probe = mpsim::run_liveness_probe(cfg.seed, 24)?;
    println!("{probe}");
    if cfg.json {
        let json = format!(
            "{{\"report\": {}, \"liveness\": {}}}",
            mpsim::hierarchy_report_json(&report),
            mpsim::liveness_probe_json(&probe)
        );
        std::fs::write(&cfg.out, json).map_err(|e| format!("cannot write `{}`: {e}", cfg.out))?;
        println!("JSON report written to {}", cfg.out);
    }
    if report.silent() > 0 {
        return Err(format!(
            "{} fault(s) caused silent corruption",
            report.silent()
        ));
    }
    if !probe.demonstrates_recovery() {
        return Err("liveness probe failed to demonstrate livelock recovery".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::args;

    #[test]
    fn faults_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_faults_args(&[]).expect("empty"),
            FaultsConfig::default()
        );
        let cfg = parse_faults_args(&args(
            "--protocol moesi,berkeley --cpus 3 --steps 500 --lines 40 \
             --line-size 32 --cache-bytes 2048 --seed 9 --rate 0.25 \
             --kind glitch,corrupt --trace-out /tmp/f.json",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, vec!["moesi", "berkeley"]);
        assert_eq!((cfg.cpus, cfg.steps, cfg.lines), (3, 500, 40));
        assert_eq!((cfg.line_size, cfg.cache_bytes), (32, 2048));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/f.json"));
        assert!((cfg.rate - 0.25).abs() < 1e-12);
        assert_eq!(cfg.kinds, vec![FaultKind::Glitch, FaultKind::CorruptMemory]);
        assert!(parse_faults_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_faults_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_faults_args(&args("--rate 1.5"))
            .unwrap_err()
            .contains("between 0 and 1"));
        assert!(parse_faults_args(&args("--kind gremlin"))
            .unwrap_err()
            .contains("unknown fault kind"));
        assert!(parse_faults_args(&args("--steps 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn faults_shard_flag_parses_and_rejects_hierarchy() {
        let cfg = parse_faults_args(&args("--shards 4")).expect("valid");
        assert_eq!(cfg.shards, 4);
        assert_eq!(campaign_config(&cfg).shards, 4);
        assert_eq!(
            parse_faults_args(&[]).expect("empty").shards,
            0,
            "sharding stays off unless asked for"
        );
        assert!(parse_faults_args(&args("--shards 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_faults_args(&args("--hierarchy --shards 2"))
            .unwrap_err()
            .contains("flat campaign"));
    }

    #[test]
    fn faults_rate_maps_onto_the_enabled_kinds_only() {
        let cfg = parse_faults_args(&args("--rate 0.2 --kind glitch,storm")).expect("valid");
        let campaign = campaign_config(&cfg);
        assert!((campaign.faults.glitch_rate - 0.2).abs() < 1e-12);
        assert!((campaign.faults.storm_rate - 0.1).abs() < 1e-12);
        assert_eq!(campaign.faults.stall_rate, 0.0, "stall not enabled");
        assert_eq!(campaign.faults.kill_rate, 0.0, "kill not enabled");
        assert_eq!(campaign.faults.corrupt_rate, 0.0, "corrupt not enabled");
        // `all` expands to every kind.
        let all = campaign_config(&parse_faults_args(&args("--kind all")).expect("valid"));
        assert!(all.faults.stall_rate > 0.0 && all.faults.corrupt_rate > 0.0);
    }

    #[test]
    fn faults_smoke_campaign_runs_clean() {
        run_faults(&FaultsConfig {
            protocols: vec!["moesi".to_string()],
            steps: 200,
            rate: 0.2,
            ..FaultsConfig::default()
        })
        .expect("short campaign degrades gracefully");
        let err = run_faults(&FaultsConfig {
            protocols: vec!["mesif".to_string()],
            ..FaultsConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    #[test]
    fn faults_hierarchy_options_parse() {
        let cfg = parse_faults_args(&args(
            "--hierarchy --clusters 3 --cpus 2 --steps 300 --json --out /tmp/h.json \
             --kind glitch,bridge-kill,stale-tag",
        ))
        .expect("valid");
        assert!(cfg.hierarchy && cfg.json);
        assert_eq!((cfg.clusters, cfg.cpus, cfg.steps), (3, 2, 300));
        assert_eq!(cfg.out, "/tmp/h.json");
        assert_eq!(
            cfg.kinds,
            vec![
                FaultKind::Glitch,
                FaultKind::BridgeKill,
                FaultKind::StaleTag
            ]
        );
        // The bridge spellings enable the same underlying rates.
        let faults = fault_rates(&cfg);
        assert!(faults.kill_rate > 0.0 && faults.stale_tag_rate > 0.0);
        assert_eq!(faults.stall_rate, 0.0);
        assert!(
            parse_faults_args(&args("--hierarchy --trace-out /tmp/t.json"))
                .unwrap_err()
                .contains("flat run")
        );
    }

    #[test]
    fn faults_depth_and_fanout_parse_and_require_hierarchy() {
        let cfg = parse_faults_args(&args("--hierarchy --depth 3 --fanout 4")).expect("valid");
        assert_eq!((cfg.depth, cfg.fanout), (3, 4));
        let campaign = hierarchy_campaign_config(&cfg);
        assert_eq!((campaign.depth, campaign.fanout), (3, 4));
        let defaults = parse_faults_args(&args("--hierarchy")).expect("valid");
        assert_eq!((defaults.depth, defaults.fanout), (2, 2));
        assert!(parse_faults_args(&args("--depth 3"))
            .unwrap_err()
            .contains("add --hierarchy"));
        assert!(parse_faults_args(&args("--fanout 2"))
            .unwrap_err()
            .contains("add --hierarchy"));
        assert!(parse_faults_args(&args("--hierarchy --depth 1"))
            .unwrap_err()
            .contains("at least 2"));
        assert!(parse_faults_args(&args("--hierarchy --fanout 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn faults_deep_hierarchy_smoke_runs_clean() {
        run_faults(&FaultsConfig {
            protocols: vec!["moesi".to_string()],
            hierarchy: true,
            depth: 3,
            fanout: 2,
            cpus: 2,
            steps: 250,
            lines: 48,
            rate: 0.3,
            ..FaultsConfig::default()
        })
        .expect("deep-tree campaign degrades gracefully");
    }

    #[test]
    fn faults_hierarchy_smoke_writes_json_and_passes_the_probe() {
        let out = std::env::temp_dir().join("moesi_sim_faults_hier_smoke.json");
        run_faults(&FaultsConfig {
            protocols: vec!["moesi".to_string()],
            hierarchy: true,
            cpus: 2,
            steps: 250,
            lines: 48,
            rate: 0.3,
            json: true,
            out: out.to_string_lossy().into_owned(),
            ..FaultsConfig::default()
        })
        .expect("hierarchy campaign degrades gracefully");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"campaign\": \"hierarchy\""), "{json}");
        assert!(json.contains("\"recovery_demonstrated\": true"), "{json}");
        assert!(json.contains("\"salvaged_lines\": "), "{json}");
        let _ = std::fs::remove_file(&out);
    }
}
