//! `moesi-sim` — a command-line driver for the MOESI/Futurebus simulator.
//!
//! ```text
//! moesi-sim --protocol moesi,dragon,write-through --workload ping-pong --steps 2000 --check
//! moesi-sim --cpus 8 --workload general --census --trace 10
//! moesi-sim --trace-file trace.txt --protocol berkeley --check
//! moesi-sim verify --protocol moesi --caches 3
//! moesi-sim verify --matrix --jobs 4
//! moesi-sim faults --rate 0.2 --seed 7
//! moesi-sim bench --seed 7 --json
//! ```
//!
//! Run `moesi-sim --help` (or `moesi-sim verify --help`,
//! `moesi-sim faults --help`, `moesi-sim bench --help`) for the full
//! option list.

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::fault::{FaultConfig, FaultKind};
use moesi::protocols::by_name;
use moesi_futurebus::cli::CommonOpts;
use mpsim::workload::{
    DuboisBriggs, FalseSharing, Migratory, PingPong, ProducerConsumer, ReadMostly, SharingModel,
};
use mpsim::{
    run_campaign, CampaignConfig, HierarchyCampaignConfig, RefStream, System, SystemBuilder,
    TraceReplay,
};
use std::process::ExitCode;

const USAGE: &str = "\
moesi-sim: simulate MOESI-class cache consistency protocols on a Futurebus

USAGE:
    moesi-sim [OPTIONS]

SUBCOMMANDS:
    verify            exhaustively model-check small configurations
                      (see `moesi-sim verify --help`)
    faults            run a seeded fault-injection campaign and audit the
                      recovery (see `moesi-sim faults --help`)
    bench             run the protocol x workload benchmark sweep
                      (see `moesi-sim bench --help`)
    synth             search the compatibility class for workload-tuned
                      policy tables (see `moesi-sim synth --help`)
    table             print protocol policy tables, the paper's Tables 3-7
                      (see `moesi-sim table --help`)

OPTIONS:
    --protocol LIST   comma-separated per-node protocols (repeating the last
                      to fill --cpus). Known: moesi, moesi-invalidating,
                      puzak, berkeley, dragon, write-once, illinois, firefly, synapse,
                      write-through, non-caching, random, hybrid. [default: moesi]
    --cpus N          number of nodes [default: 4]
    --clusters CxN    run a two-level hierarchy instead: C clusters of N
                      nodes each on private buses behind bridges (ignores
                      --cpus; the oracle and workloads apply per node)
    --workload NAME   general | ping-pong | read-mostly | migratory |
                      producer-consumer | false-sharing [default: general]
    --trace-file PATH replay a textual trace (R/W addr [size]) on every node
                      instead of a synthetic workload
    --steps N         steps per node [default: 1000]
    --line-size N     system line size in bytes [default: 32]
    --cache-bytes N   per-node cache capacity [default: 4096]
    --seed N          RNG seed [default: 42]
    --check           enable the consistency oracle (panics on violation)
    --trace N         print the last N bus transactions
    --census          print per-node MOESI state censuses
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
struct Config {
    protocols: Vec<String>,
    cpus: usize,
    clusters: Option<(usize, usize)>,
    workload: String,
    trace_file: Option<String>,
    steps: u64,
    line_size: usize,
    cache_bytes: usize,
    seed: u64,
    check: bool,
    trace: usize,
    census: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            protocols: vec!["moesi".to_string()],
            cpus: 4,
            clusters: None,
            workload: "general".to_string(),
            trace_file: None,
            steps: 1000,
            line_size: 32,
            cache_bytes: 4096,
            seed: 42,
            check: false,
            trace: 0,
            census: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--cpus" => {
                cfg.cpus = value("--cpus")?
                    .parse()
                    .map_err(|_| "--cpus expects a number".to_string())?;
                if cfg.cpus == 0 {
                    return Err("--cpus must be at least 1".to_string());
                }
            }
            "--clusters" => {
                let spec = value("--clusters")?;
                let (c, n) = spec
                    .split_once(['x', 'X'])
                    .ok_or_else(|| "--clusters expects CxN, e.g. 4x2".to_string())?;
                let c: usize = c
                    .parse()
                    .map_err(|_| "--clusters expects CxN".to_string())?;
                let n: usize = n
                    .parse()
                    .map_err(|_| "--clusters expects CxN".to_string())?;
                if c == 0 || n == 0 {
                    return Err("--clusters dimensions must be at least 1".to_string());
                }
                cfg.clusters = Some((c, n));
            }
            "--workload" => cfg.workload = value("--workload")?.clone(),
            "--trace-file" => cfg.trace_file = Some(value("--trace-file")?.clone()),
            "--steps" => {
                cfg.steps = value("--steps")?
                    .parse()
                    .map_err(|_| "--steps expects a number".to_string())?;
            }
            "--line-size" => {
                cfg.line_size = value("--line-size")?
                    .parse()
                    .map_err(|_| "--line-size expects a number".to_string())?;
            }
            "--cache-bytes" => {
                cfg.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|_| "--cache-bytes expects a number".to_string())?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--check" => cfg.check = true,
            "--census" => cfg.census = true,
            "--trace" => {
                cfg.trace = value("--trace")?
                    .parse()
                    .map_err(|_| "--trace expects a number".to_string())?;
            }
            "--help" | "-h" => return Err(String::new()), // signals: print usage
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(cfg)
}

fn build_system(cfg: &Config) -> Result<System, String> {
    let cache_cfg = CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru);
    let mut builder = SystemBuilder::new(cfg.line_size)
        .checking(cfg.check)
        .seed(cfg.seed);
    for i in 0..cfg.cpus {
        let name = cfg
            .protocols
            .get(i)
            .or_else(|| cfg.protocols.last())
            .expect("non-empty protocol list");
        let protocol = by_name(name, cfg.seed.wrapping_add(i as u64))
            .ok_or_else(|| format!("unknown protocol `{name}`"))?;
        builder = if protocol.kind() == moesi::CacheKind::NonCaching {
            builder.uncached(protocol)
        } else {
            builder.cache(protocol, cache_cfg)
        };
    }
    Ok(builder.build())
}

fn build_streams(cfg: &Config) -> Result<Vec<Box<dyn RefStream + Send>>, String> {
    if let Some(path) = &cfg.trace_file {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace file `{path}`: {e}"))?;
        let replay = TraceReplay::from_text(&text).map_err(|e| e.to_string())?;
        return Ok((0..cfg.cpus)
            .map(|_| Box::new(replay.clone()) as Box<dyn RefStream + Send>)
            .collect());
    }
    let line = cfg.line_size as u64;
    (0..cfg.cpus)
        .map(|cpu| -> Result<Box<dyn RefStream + Send>, String> {
            Ok(match cfg.workload.as_str() {
                "general" => Box::new(DuboisBriggs::new(
                    cpu,
                    SharingModel {
                        line_size: line,
                        ..SharingModel::default()
                    },
                    cfg.seed,
                )),
                "ping-pong" => Box::new(PingPong::new(cpu, 0, line)),
                "read-mostly" => Box::new(ReadMostly::new(cpu, 0, 16, line, 8)),
                "migratory" => Box::new(Migratory::new(cpu, cfg.cpus, 8, line)),
                "producer-consumer" => {
                    if cpu == 0 {
                        Box::new(ProducerConsumer::producer(8, line))
                    } else {
                        Box::new(ProducerConsumer::consumer(8, line))
                    }
                }
                "false-sharing" => Box::new(FalseSharing::new(cpu, 0, line, 3)),
                other => return Err(format!("unknown workload `{other}`")),
            })
        })
        .collect()
}

fn run_hierarchy(cfg: &Config, clusters: usize, per_cluster: usize) -> Result<(), String> {
    use mpsim::hierarchy::HierarchyBuilder;
    let cache_cfg = CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru);
    let mut b = HierarchyBuilder::new(cfg.line_size)
        .checking(cfg.check)
        .seed(cfg.seed);
    for c in 0..clusters {
        b = b.cluster();
        for n in 0..per_cluster {
            let i = c * per_cluster + n;
            let name = cfg
                .protocols
                .get(i)
                .or_else(|| cfg.protocols.last())
                .expect("non-empty protocol list");
            let protocol = by_name(name, cfg.seed.wrapping_add(i as u64))
                .ok_or_else(|| format!("unknown protocol `{name}`"))?;
            b = if protocol.kind() == moesi::CacheKind::NonCaching {
                b.uncached(protocol)
            } else {
                b.cache(protocol, cache_cfg)
            };
        }
    }
    let mut sys = b.build();
    let mut flat_cfg = cfg.clone();
    flat_cfg.cpus = per_cluster; // streams built per cluster
    let mut streams = Vec::new();
    for _ in 0..clusters {
        streams.push(build_streams(&flat_cfg)?);
    }
    sys.run(&mut streams, cfg.steps);
    if cfg.check {
        sys.verify()
            .map_err(|v| format!("consistency violation: {v}"))?;
    }
    println!(
        "{clusters} clusters x {per_cluster} nodes x {} steps, workload `{}`{}\n",
        cfg.steps,
        cfg.workload,
        if cfg.check { " [oracle: OK]" } else { "" },
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "cluster", "parent-txns", "fetches", "bcasts", "supplied", "inv-in"
    );
    for c in 0..clusters {
        let b = sys.bridge(c).stats();
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
            format!("cluster{c}"),
            b.parent_transactions,
            b.fetches,
            b.broadcasts,
            b.supplied,
            b.invalidations_in,
        );
    }
    println!(
        "\nparent bus: {} txns; cluster buses: {} txns total",
        sys.parent_stats().transactions,
        (0..clusters)
            .map(|c| sys.bridge(c).fabric().bus().stats().transactions)
            .sum::<u64>(),
    );
    Ok(())
}

fn run(cfg: &Config) -> Result<(), String> {
    if let Some((clusters, per_cluster)) = cfg.clusters {
        return run_hierarchy(cfg, clusters, per_cluster);
    }
    let mut sys = build_system(cfg)?;
    if cfg.trace > 0 {
        sys.enable_trace(cfg.trace);
    }
    let mut streams = build_streams(cfg)?;
    sys.run(&mut streams, cfg.steps);
    if cfg.check {
        sys.verify()
            .map_err(|v| format!("consistency violation: {v}"))?;
    }

    println!(
        "{} nodes x {} steps, workload `{}`, line {}B{}\n",
        sys.nodes(),
        cfg.steps,
        cfg.trace_file.as_deref().unwrap_or(&cfg.workload),
        cfg.line_size,
        if cfg.check { " [oracle: OK]" } else { "" },
    );
    println!(
        "{:<24} {:>8} {:>7} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "node", "refs", "hit%", "bus txns", "inv-recv", "upd-recv", "interv", "pushes"
    );
    for cpu in 0..sys.nodes() {
        let s = sys.stats(cpu);
        println!(
            "{:<24} {:>8} {:>6.1}% {:>9} {:>9} {:>9} {:>8} {:>7}",
            sys.controller(cpu).name(),
            s.references(),
            s.hit_ratio() * 100.0,
            s.bus_transactions,
            s.invalidations_received,
            s.updates_received,
            s.interventions_supplied,
            s.pushes,
        );
    }
    println!("\n{}", sys.bus_stats());

    if cfg.census {
        println!("\nMOESI state census:");
        for cpu in 0..sys.nodes() {
            println!(
                "  {:<24} {}",
                sys.controller(cpu).name(),
                sys.state_census(cpu)
            );
        }
    }
    if cfg.trace > 0 {
        println!("\nlast {} bus transactions:", sys.trace().len());
        for line in sys.trace().render().lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

const VERIFY_USAGE: &str = "\
moesi-sim verify: exhaustively model-check small configurations

Explores EVERY reachable global state of an abstract machine where each
module branches over every permitted Table 1/2 entry (or over one concrete
protocol's choices), checking the five shared-image invariants at every
state. A clean run is a proof over the modelled configuration; a violation
prints a minimal counterexample schedule that the concrete simulator
replays deterministically.

USAGE:
    moesi-sim verify [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocol mix, one module per entry
                      (a single name is replicated to --caches). Accepts the
                      simulator names plus full-table / full-table-wt /
                      full-table-nc (branch over the whole permitted set of
                      that client kind). [default: full-table]
    --caches N        modules for a single-name mix [default: 2]
    --lines N         lines modelled [default: 1]
    --values N        write-value domain size [default: 2]
    --max-states N    truncate after N distinct states (0 = unbounded)
    --matrix          verify every protocol pair instead, printing one row
                      per pair; exits nonzero if any result contradicts the
                      documented compatibility claims
    --mutate          corrupt the preferred copy-back table one cell at a
                      time instead, printing the structural verdict and any
                      concrete counterexample per mutation; exits nonzero if
                      a mutation passes the structural check but breaks an
                      invariant
    --table FILE      with --mutate: read the mutation base from FILE (any
                      parseable policy table, e.g. a synthesized winner)
                      instead of the preferred copy-back table
    --jobs N          worker threads sharding the --matrix pairs; the output
                      is identical for any N [default: available cores]
    --seed N          seed for the --trace-out exemplar run [default: its
                      built-in seed]
    --trace-out FILE  also write a Chrome trace (chrome://tracing JSON) of an
                      exemplar concrete run of the first named protocol
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
struct VerifyConfig {
    protocols: Vec<String>,
    caches: usize,
    lines: usize,
    values: u8,
    max_states: Option<usize>,
    matrix: bool,
    mutate: bool,
    table: Option<String>,
    jobs: usize,
    seed: Option<u64>,
    trace_out: Option<String>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            protocols: vec!["full-table".to_string()],
            caches: 2,
            lines: 1,
            values: 2,
            max_states: None,
            matrix: false,
            mutate: false,
            table: None,
            jobs: mpsim::default_jobs(),
            seed: None,
            trace_out: None,
        }
    }
}

fn parse_verify_args(args: &[String]) -> Result<VerifyConfig, String> {
    let mut cfg = VerifyConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--caches" => {
                cfg.caches = value("--caches")?
                    .parse()
                    .map_err(|_| "--caches expects a number".to_string())?;
                if cfg.caches == 0 {
                    return Err("--caches must be at least 1".to_string());
                }
            }
            "--lines" => {
                cfg.lines = value("--lines")?
                    .parse()
                    .map_err(|_| "--lines expects a number".to_string())?;
                if cfg.lines == 0 {
                    return Err("--lines must be at least 1".to_string());
                }
            }
            "--values" => {
                cfg.values = value("--values")?
                    .parse()
                    .map_err(|_| "--values expects a number".to_string())?;
                if cfg.values == 0 {
                    return Err("--values must be at least 1".to_string());
                }
            }
            "--max-states" => {
                cfg.max_states = Some(
                    value("--max-states")?
                        .parse()
                        .map_err(|_| "--max-states expects a number".to_string())?,
                );
            }
            "--matrix" => cfg.matrix = true,
            "--mutate" => cfg.mutate = true,
            "--table" => cfg.table = Some(value("--table")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if cfg.table.is_some() && !cfg.mutate {
        return Err("--table requires --mutate".to_string());
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    cfg.seed = common.seed;
    cfg.trace_out = common.trace_out;
    Ok(cfg)
}

fn verify_shape(cfg: &VerifyConfig) -> verify::Shape {
    let mut shape = verify::Shape {
        lines: cfg.lines,
        values: cfg.values,
        ..verify::Shape::default()
    };
    if let Some(max) = cfg.max_states {
        shape.limits.max_states = max;
    }
    shape
}

fn run_verify_matrix(shape: &verify::Shape, jobs: usize) -> Result<(), String> {
    println!(
        "pair-wise compatibility matrix: 2 modules x {} line(s) x {} values\n",
        shape.lines, shape.values
    );
    let mut surprises = 0usize;
    for (a, b, report) in verify::verify_matrix_jobs(&verify::MATRIX_PROTOCOLS, shape, jobs) {
        let expected_clean = verify::class_compatible(&a, &b);
        let (tag, detail) = match (&report.counterexample, expected_clean) {
            (None, true) => ("ok", format!("{} states", report.explored)),
            (Some(cx), false) => ("incompatible (expected)", cx.defect.to_string()),
            (None, false) => {
                surprises += 1;
                ("UNEXPECTEDLY CLEAN", format!("{} states", report.explored))
            }
            (Some(cx), true) => {
                surprises += 1;
                ("VIOLATION", format!("{}\n{}", cx.defect, cx.trace))
            }
        };
        println!("{a:>20} + {b:<20} {tag:<24} {detail}");
    }
    if surprises > 0 {
        return Err(format!(
            "{surprises} pair(s) contradict the documented compatibility claims"
        ));
    }
    println!("\nall pairs match the documented compatibility claims");
    Ok(())
}

fn run_verify_mutations(shape: &verify::Shape, table: Option<&str>) -> Result<(), String> {
    let rows = match table {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let base = moesi::parse_table(&text).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "single-cell mutations of `{}` (from {path}), next to a clean MOESI module\n",
                base.name()
            );
            verify::mutation_sweep_of(base, shape)
        }
        None => {
            println!(
                "single-cell mutations of the preferred copy-back table, next to a clean MOESI module\n"
            );
            verify::mutation_sweep(shape)
        }
    };
    let mut missed = 0usize;
    for row in &rows {
        let structural = if row.structural {
            "rejected"
        } else {
            "in-class"
        };
        let dynamic = match &row.defect {
            Some(defect) => format!("counterexample: {defect}"),
            None => format!("clean ({} states)", row.explored),
        };
        if !row.structural && row.defect.is_some() {
            missed += 1;
        }
        println!("{:<20} {structural:<10} {dynamic}", row.cell);
    }
    let caught = rows.iter().filter(|r| r.defect.is_some()).count();
    println!(
        "\n{} mutations: {caught} produce concrete counterexamples; every in-class one verifies clean",
        rows.len(),
    );
    if missed > 0 {
        return Err(format!(
            "{missed} mutation(s) passed the structural check but broke an invariant"
        ));
    }
    Ok(())
}

fn run_verify(cfg: &VerifyConfig) -> Result<(), String> {
    if let Some(path) = &cfg.trace_out {
        // The model checker is abstract; the trace shows an exemplar
        // *concrete* run of the first named protocol (full-table mixes have
        // no concrete counterpart, so MOESI stands in).
        let protocol = match cfg.protocols.first().map(String::as_str) {
            None | Some("full-table") | Some("full-table-wt") | Some("full-table-nc") => "moesi",
            Some(name) => name,
        };
        let mut trace_cfg = mpsim::TraceRunConfig {
            protocol: protocol.to_string(),
            ..mpsim::TraceRunConfig::default()
        };
        if let Some(seed) = cfg.seed {
            trace_cfg.seed = seed;
        }
        write_chrome_trace(path, &trace_cfg)?;
    }
    let shape = verify_shape(cfg);
    if cfg.mutate {
        return run_verify_mutations(&shape, cfg.table.as_deref());
    }
    if cfg.matrix {
        return run_verify_matrix(&shape, cfg.jobs);
    }
    let names: Vec<&str> = if cfg.protocols.len() == 1 {
        vec![cfg.protocols[0].as_str(); cfg.caches]
    } else {
        cfg.protocols.iter().map(String::as_str).collect()
    };
    println!(
        "exhaustive exploration: [{}] x {} line(s) x {} values",
        names.join(", "),
        shape.lines,
        shape.values
    );
    let report = verify::verify_mix(&names, &shape)
        .ok_or_else(|| format!("unknown protocol in `{}`", cfg.protocols.join(",")))?;
    println!("{report}");
    match &report.counterexample {
        None if report.truncated => Err(format!(
            "state cap hit after {} states; raise --max-states for a full proof",
            report.explored
        )),
        None => Ok(()),
        Some(cx) => {
            let outcome = mpsim::replay::replay(&cx.trace, false);
            match &outcome.violation {
                Some((step, violation)) => {
                    println!("concrete replay reproduces it at step {step}: {violation}")
                }
                None => println!("concrete replay did NOT reproduce it (abstraction gap?)"),
            }
            Err(format!("invariant violated: {}", cx.defect))
        }
    }
}

const FAULTS_USAGE: &str = "\
moesi-sim faults: run a seeded fault-injection campaign over the class

Runs one machine per protocol on a bus that injects wired-OR consistency
line glitches, module stalls and kills, BS abort storms and memory soft
errors, then audits every fault against the consistency oracle and
classifies it masked / detected / SILENT. Exits nonzero if any fault is
silent — the graceful-degradation claim made executable.

With --hierarchy the campaign targets a two-level machine instead: the
parent bus injects bridge stalls and kills (the watchdog retires the
bridge, salvages or reports every dirty line, and the cluster degrades to
memory-direct), inclusion-tag soft errors (scrubbed from cluster
evidence), plus glitches, storms and memory corruption, while each cluster
bus glitches and storms independently. The run ends with the seeded
liveness probe: a phantom-BS storm that livelocks naive flat retry and is
recovered by capped backoff with arbitration priority aging.

USAGE:
    moesi-sim faults [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocols, one homogeneous machine per
                      entry [default: moesi,dragon,write-through,berkeley,
                      hybrid]
    --hierarchy       run the two-level bridge campaign described above
    --clusters N      clusters per hierarchy (with --hierarchy) [default: 2]
    --cpus N          processors per machine, or per cluster with
                      --hierarchy [default: 4]
    --steps N         processor accesses per machine [default: 2500]
    --lines N         distinct lines in the working set [default: 96]
    --line-size N     bytes per line [default: 16]
    --cache-bytes N   per-node cache capacity [default: 1024]
    --seed N          campaign seed, covering workload and faults
                      [default: 51966]
    --rate R          base per-transaction injection rate in [0, 1]. Enabled
                      kinds scale from it: glitch, corrupt and stale-tag
                      land at R, storms at R/2, stalls and kills — bridge
                      stalls and kills under --hierarchy — at R/100
                      (retirements are permanent, so they stay rare)
                      [default: 0.1]
    --kind LIST       fault kinds to enable: glitch, stall, kill, storm,
                      corrupt, bridge-stall, bridge-kill, stale-tag, or all
                      (the bridge kinds only fire with --hierarchy)
                      [default: all]
    --jobs N          worker threads, one protocol machine per job; the
                      report is identical for any N [default: available
                      cores]
    --json            also write the report (with the lost/salvaged-line and
                      retry/backoff ledgers) as JSON to --out
    --out PATH        JSON output path [default: FAULTS_report.json]
    --trace-out FILE  also write a Chrome trace (chrome://tracing JSON) of
                      one exemplar faulted run of the first protocol; flat
                      campaigns only; the file is identical for any --jobs
                      value
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
struct FaultsConfig {
    protocols: Vec<String>,
    hierarchy: bool,
    clusters: usize,
    cpus: usize,
    steps: u64,
    lines: u64,
    line_size: usize,
    cache_bytes: usize,
    seed: u64,
    rate: f64,
    kinds: Vec<FaultKind>,
    jobs: usize,
    json: bool,
    out: String,
    trace_out: Option<String>,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        let base = CampaignConfig::default();
        FaultsConfig {
            protocols: base.protocols,
            hierarchy: false,
            clusters: HierarchyCampaignConfig::default().clusters,
            cpus: base.cpus,
            steps: base.steps,
            lines: base.lines,
            line_size: base.line_size,
            cache_bytes: base.cache_bytes,
            seed: base.seed,
            rate: 0.1,
            kinds: FaultKind::ALL.to_vec(),
            jobs: base.jobs,
            json: false,
            out: "FAULTS_report.json".to_string(),
            trace_out: None,
        }
    }
}

fn parse_fault_kinds(list: &str) -> Result<Vec<FaultKind>, String> {
    let mut kinds = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match name {
            "glitch" => kinds.push(FaultKind::Glitch),
            "stall" => kinds.push(FaultKind::Stall),
            "kill" => kinds.push(FaultKind::Kill),
            "storm" | "abort-storm" => kinds.push(FaultKind::AbortStorm),
            "corrupt" | "corrupt-memory" => kinds.push(FaultKind::CorruptMemory),
            "bridge-stall" => kinds.push(FaultKind::BridgeStall),
            "bridge-kill" => kinds.push(FaultKind::BridgeKill),
            "stale-tag" => kinds.push(FaultKind::StaleTag),
            "all" => kinds.extend(FaultKind::ALL),
            other => return Err(format!("unknown fault kind `{other}`")),
        }
    }
    if kinds.is_empty() {
        return Err("--kind list is empty".to_string());
    }
    kinds.dedup();
    Ok(kinds)
}

fn parse_faults_args(args: &[String]) -> Result<FaultsConfig, String> {
    let mut cfg = FaultsConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let number = |name: &str, v: &str| -> Result<u64, String> {
            let n: u64 = v.parse().map_err(|_| format!("{name} expects a number"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--cpus" => cfg.cpus = number("--cpus", value("--cpus")?)? as usize,
            "--steps" => cfg.steps = number("--steps", value("--steps")?)?,
            "--lines" => cfg.lines = number("--lines", value("--lines")?)?,
            "--line-size" => {
                cfg.line_size = number("--line-size", value("--line-size")?)? as usize;
                if cfg.line_size < 4 {
                    return Err("--line-size must be at least 4".to_string());
                }
            }
            "--cache-bytes" => {
                cfg.cache_bytes = number("--cache-bytes", value("--cache-bytes")?)? as usize;
            }
            "--rate" => {
                cfg.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "--rate expects a number".to_string())?;
                if !(0.0..=1.0).contains(&cfg.rate) {
                    return Err("--rate must be between 0 and 1".to_string());
                }
            }
            "--kind" => cfg.kinds = parse_fault_kinds(value("--kind")?)?,
            "--hierarchy" => cfg.hierarchy = true,
            "--clusters" => cfg.clusters = number("--clusters", value("--clusters")?)? as usize,
            "--json" => cfg.json = true,
            "--out" => cfg.out = value("--out")?.clone(),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    cfg.trace_out = common.trace_out;
    if cfg.hierarchy && cfg.trace_out.is_some() {
        return Err("--trace-out traces a flat run; drop it or drop --hierarchy".to_string());
    }
    Ok(cfg)
}

fn fault_rates(cfg: &FaultsConfig) -> FaultConfig {
    let mut faults = FaultConfig {
        // Decorrelate the fault stream from the workload stream while keeping
        // both under the single --seed knob.
        seed: cfg.seed ^ 0xFA_017,
        max_storm_rounds: 4,
        ..FaultConfig::default()
    };
    for kind in &cfg.kinds {
        match kind {
            FaultKind::Glitch => faults.glitch_rate = cfg.rate,
            // Stall/kill double as bridge-stall/bridge-kill: the plan's
            // `bridges` flag (set only on a hierarchy's parent bus) decides
            // which the victim is, so either spelling enables the rate.
            FaultKind::Stall | FaultKind::BridgeStall => faults.stall_rate = cfg.rate / 100.0,
            FaultKind::Kill | FaultKind::BridgeKill => faults.kill_rate = cfg.rate / 100.0,
            FaultKind::AbortStorm => faults.storm_rate = cfg.rate / 2.0,
            FaultKind::CorruptMemory => faults.corrupt_rate = cfg.rate,
            FaultKind::StaleTag => faults.stale_tag_rate = cfg.rate,
        }
    }
    faults
}

fn campaign_config(cfg: &FaultsConfig) -> CampaignConfig {
    CampaignConfig {
        protocols: cfg.protocols.clone(),
        cpus: cfg.cpus,
        line_size: cfg.line_size,
        cache_bytes: cfg.cache_bytes,
        steps: cfg.steps,
        lines: cfg.lines,
        seed: cfg.seed,
        tables: Vec::new(),
        faults: fault_rates(cfg),
        jobs: cfg.jobs,
    }
}

fn hierarchy_campaign_config(cfg: &FaultsConfig) -> HierarchyCampaignConfig {
    HierarchyCampaignConfig {
        protocols: cfg.protocols.clone(),
        clusters: cfg.clusters,
        cpus: cfg.cpus,
        line_size: cfg.line_size,
        cache_bytes: cfg.cache_bytes,
        steps: cfg.steps,
        lines: cfg.lines,
        seed: cfg.seed,
        faults: fault_rates(cfg),
        jobs: cfg.jobs,
        ..HierarchyCampaignConfig::default()
    }
}

const BENCH_USAGE: &str = "\
moesi-sim bench: run the protocol x workload benchmark sweep

Runs one homogeneous machine per (protocol, workload) cell under the
contention-aware timed model and reports simulated throughput (accesses per
simulated second), bus occupancy and miss ratios. Cells shard across a
worker pool; the output is byte-identical for any --jobs value.

USAGE:
    moesi-sim bench [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocols, one machine per entry
                      [default: the full compared set]
    --workload LIST   comma-separated workloads [default: all six]
    --cpus N          processors per machine [default: 4]
    --steps N         references per processor [default: 2000]
    --cache-bytes N   per-node cache capacity [default: 4096]
    --seed N          workload seed [default: 7]
    --jobs N          worker threads sharding the cells [default: available
                      cores]
    --json            also write the rows as JSON to --out
    --out PATH        JSON output path [default: BENCH_protocols.json]
    --trace-out FILE  also write a Chrome trace (chrome://tracing JSON) of
                      one exemplar run of the first benched protocol; the
                      file is identical for any --jobs value
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
struct BenchCliConfig {
    protocols: Option<Vec<String>>,
    workloads: Option<Vec<String>>,
    cpus: usize,
    steps: u64,
    cache_bytes: usize,
    seed: u64,
    jobs: usize,
    json: bool,
    out: String,
    trace_out: Option<String>,
}

impl Default for BenchCliConfig {
    fn default() -> Self {
        let base = bench::sweep::SweepConfig::default();
        BenchCliConfig {
            protocols: None,
            workloads: None,
            cpus: base.cpus,
            steps: base.steps,
            cache_bytes: base.cache_bytes,
            seed: base.seed,
            jobs: base.jobs,
            json: false,
            out: "BENCH_protocols.json".to_string(),
            trace_out: None,
        }
    }
}

fn parse_bench_args(args: &[String]) -> Result<BenchCliConfig, String> {
    let mut cfg = BenchCliConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let number = |name: &str, v: &str| -> Result<u64, String> {
            let n: u64 = v.parse().map_err(|_| format!("{name} expects a number"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        let list = |name: &str, v: &str| -> Result<Vec<String>, String> {
            let items: Vec<String> = v
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if items.is_empty() {
                return Err(format!("{name} list is empty"));
            }
            Ok(items)
        };
        match arg.as_str() {
            "--protocol" => cfg.protocols = Some(list("--protocol", value("--protocol")?)?),
            "--workload" => cfg.workloads = Some(list("--workload", value("--workload")?)?),
            "--cpus" => cfg.cpus = number("--cpus", value("--cpus")?)? as usize,
            "--steps" => cfg.steps = number("--steps", value("--steps")?)?,
            "--cache-bytes" => {
                cfg.cache_bytes = number("--cache-bytes", value("--cache-bytes")?)? as usize;
            }
            "--json" => cfg.json = true,
            "--out" => cfg.out = value("--out")?.clone(),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    cfg.trace_out = common.trace_out;
    Ok(cfg)
}

fn sweep_config(cfg: &BenchCliConfig) -> bench::sweep::SweepConfig {
    let base = bench::sweep::SweepConfig::default();
    bench::sweep::SweepConfig {
        protocols: cfg.protocols.clone().unwrap_or(base.protocols),
        workloads: cfg.workloads.clone().unwrap_or(base.workloads),
        cpus: cfg.cpus,
        steps: cfg.steps,
        cache_bytes: cfg.cache_bytes,
        seed: cfg.seed,
        jobs: cfg.jobs,
        timing: base.timing,
    }
}

fn write_chrome_trace(path: &str, cfg: &mpsim::TraceRunConfig) -> Result<(), String> {
    let json = mpsim::trace_run(cfg)?;
    std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path} (load it in chrome://tracing or Perfetto)");
    Ok(())
}

fn run_bench(cfg: &BenchCliConfig) -> Result<(), String> {
    let sweep_cfg = sweep_config(cfg);
    let rows = bench::sweep::sweep(&sweep_cfg)?;
    print!("{}", bench::sweep::render_sweep(&rows));
    let total: u64 = rows.iter().map(|r| r.accesses).sum();
    println!(
        "\ntotal {total} accesses across {} cells ({} protocols x {} workloads, jobs={})",
        rows.len(),
        sweep_cfg.protocols.len(),
        sweep_cfg.workloads.len(),
        sweep_cfg.jobs,
    );
    if cfg.json {
        let json = bench::sweep::sweep_json(&sweep_cfg, &rows);
        std::fs::write(&cfg.out, json).map_err(|e| format!("cannot write `{}`: {e}", cfg.out))?;
        println!("wrote {}", cfg.out);
    }
    if let Some(path) = &cfg.trace_out {
        write_chrome_trace(
            path,
            &mpsim::TraceRunConfig {
                protocol: sweep_cfg.protocols[0].clone(),
                cpus: sweep_cfg.cpus,
                line_size: bench::LINE,
                cache_bytes: sweep_cfg.cache_bytes,
                steps: sweep_cfg.steps,
                seed: sweep_cfg.seed,
                ..mpsim::TraceRunConfig::default()
            },
        )?;
    }
    Ok(())
}

const SYNTH_USAGE: &str = "\
moesi-sim synth: search the compatibility class for workload-tuned tables

Hill-climbs over the permitted sets per (state, event) cell of the class,
one search per workload: the starting pool is every shipped exact-table
copy-back class member, candidate fitness is timed-model throughput on the
target workload, and each winner is audited structurally, by bounded
exhaustive exploration against a MOESI peer, and by a fault-injection
campaign that must report zero silent corruption. Candidate evaluations
shard across a worker pool; all output is byte-identical for any --jobs
value.

USAGE:
    moesi-sim synth [OPTIONS]

OPTIONS:
    --workload LIST   comma-separated workloads to synthesize for
                      [default: all six]
    --cpus N          processors per fitness machine [default: 4]
    --steps N         references per processor per evaluation [default: 2000]
    --cache-bytes N   per-node cache capacity [default: 2048]
    --rounds N        maximum improving hill-climb steps per workload
                      (0 = just pick the best starting table) [default: 4]
    --campaign-steps N
                      accesses per machine in the audit fault campaign
                      [default: 2500]
    --sensitivity     also run the section 5.2 cost-ratio study: re-score
                      each winner and the pool across a 27-point grid of
                      bus/memory/cache cost scales and report where the
                      winner flips
    --seed N          workload seed for every evaluation [default: 7]
    --jobs N          worker threads sharding evaluations [default:
                      available cores]
    --out PATH        write the winners as a parseable policy-table document
    --json-out PATH   write the full report as JSON
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
struct SynthCliConfig {
    workloads: Option<Vec<String>>,
    cpus: usize,
    steps: u64,
    cache_bytes: usize,
    rounds: usize,
    campaign_steps: u64,
    sensitivity: bool,
    seed: u64,
    jobs: usize,
    out: Option<String>,
    json_out: Option<String>,
}

impl Default for SynthCliConfig {
    fn default() -> Self {
        let base = synth::SynthConfig::default();
        SynthCliConfig {
            workloads: None,
            cpus: base.cpus,
            steps: base.steps,
            cache_bytes: base.cache_bytes,
            rounds: base.rounds,
            campaign_steps: base.campaign_steps,
            sensitivity: false,
            seed: base.seed,
            jobs: base.jobs,
            out: None,
            json_out: None,
        }
    }
}

fn parse_synth_args(args: &[String]) -> Result<SynthCliConfig, String> {
    let mut cfg = SynthCliConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let number = |name: &str, v: &str| -> Result<u64, String> {
            let n: u64 = v.parse().map_err(|_| format!("{name} expects a number"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--workload" => {
                let items: Vec<String> = value("--workload")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if items.is_empty() {
                    return Err("--workload list is empty".to_string());
                }
                cfg.workloads = Some(items);
            }
            "--cpus" => cfg.cpus = number("--cpus", value("--cpus")?)? as usize,
            "--steps" => cfg.steps = number("--steps", value("--steps")?)?,
            "--cache-bytes" => {
                cfg.cache_bytes = number("--cache-bytes", value("--cache-bytes")?)? as usize;
            }
            "--rounds" => {
                // 0 is meaningful: no climbing, just pick the best start.
                cfg.rounds = value("--rounds")?
                    .parse()
                    .map_err(|_| "--rounds expects a number".to_string())?;
            }
            "--campaign-steps" => {
                cfg.campaign_steps = number("--campaign-steps", value("--campaign-steps")?)?;
            }
            "--sensitivity" => cfg.sensitivity = true,
            "--out" => cfg.out = Some(value("--out")?.clone()),
            "--json-out" => cfg.json_out = Some(value("--json-out")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if common.trace_out.is_some() {
        return Err("--trace-out is not supported by synth".to_string());
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    if let Some(jobs) = common.jobs {
        cfg.jobs = jobs;
    }
    Ok(cfg)
}

fn synth_config(cfg: &SynthCliConfig) -> synth::SynthConfig {
    let base = synth::SynthConfig::default();
    synth::SynthConfig {
        workloads: cfg.workloads.clone().unwrap_or(base.workloads),
        cpus: cfg.cpus,
        steps: cfg.steps,
        cache_bytes: cfg.cache_bytes,
        rounds: cfg.rounds,
        seed: cfg.seed,
        jobs: cfg.jobs,
        timing: base.timing,
        campaign_steps: cfg.campaign_steps,
    }
}

fn run_synth(cfg: &SynthCliConfig) -> Result<(), String> {
    let synth_cfg = synth_config(cfg);
    let report = synth::synthesize(&synth_cfg)?;
    print!("{}", synth::render_report(&report));
    let sens = if cfg.sensitivity {
        let rows = synth::sensitivity(&synth_cfg, &report)?;
        print!("{}", synth::render_sensitivity(&rows));
        Some(rows)
    } else {
        None
    };
    if let Some(path) = &cfg.out {
        std::fs::write(path, synth::tables_document(&report))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &cfg.json_out {
        let json = synth::report_json(&synth_cfg, &report, sens.as_deref());
        std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(bad) = report
        .outcomes
        .iter()
        .find(|o| o.structural_violations > 0 || !o.exhaustive_clean)
    {
        return Err(format!("winner `{}` failed its audit", bad.winner.name()));
    }
    if report.faults_silent > 0 {
        return Err(format!(
            "fault campaign observed {} silent corruption(s)",
            report.faults_silent
        ));
    }
    Ok(())
}

fn run_faults(cfg: &FaultsConfig) -> Result<(), String> {
    if cfg.hierarchy {
        return run_hierarchy_faults(cfg);
    }
    let campaign = campaign_config(cfg);
    let report = run_campaign(&campaign)?;
    println!("{report}");
    if cfg.json {
        std::fs::write(&cfg.out, mpsim::campaign_report_json(&report))
            .map_err(|e| format!("cannot write `{}`: {e}", cfg.out))?;
        println!("JSON report written to {}", cfg.out);
    }
    if let Some(path) = &cfg.trace_out {
        write_chrome_trace(
            path,
            &mpsim::TraceRunConfig {
                protocol: campaign.protocols[0].clone(),
                cpus: campaign.cpus,
                line_size: campaign.line_size,
                cache_bytes: campaign.cache_bytes,
                steps: campaign.steps,
                lines: campaign.lines,
                seed: campaign.seed,
                faults: Some(campaign.faults),
            },
        )?;
    }
    if report.silent() > 0 {
        return Err(format!(
            "{} fault(s) caused silent corruption",
            report.silent()
        ));
    }
    Ok(())
}

fn run_hierarchy_faults(cfg: &FaultsConfig) -> Result<(), String> {
    let campaign = hierarchy_campaign_config(cfg);
    let report = mpsim::run_hierarchy_campaign(&campaign)?;
    println!("{report}");
    println!();
    let probe = mpsim::run_liveness_probe(cfg.seed, 24)?;
    println!("{probe}");
    if cfg.json {
        let json = format!(
            "{{\"report\": {}, \"liveness\": {}}}",
            mpsim::hierarchy_report_json(&report),
            mpsim::liveness_probe_json(&probe)
        );
        std::fs::write(&cfg.out, json).map_err(|e| format!("cannot write `{}`: {e}", cfg.out))?;
        println!("JSON report written to {}", cfg.out);
    }
    if report.silent() > 0 {
        return Err(format!(
            "{} fault(s) caused silent corruption",
            report.silent()
        ));
    }
    if !probe.demonstrates_recovery() {
        return Err("liveness probe failed to demonstrate livelock recovery".to_string());
    }
    Ok(())
}

const TABLE_USAGE: &str = "\
moesi-sim table: print protocol policy tables (the paper's Tables 3-7)

Renders the chosen action per (state, event) cell straight from each
protocol's PolicyTable — the same data the engine interprets — with `-` for
error-condition cells, plus the structural class-membership verdict.

USAGE:
    moesi-sim table [OPTIONS]

OPTIONS:
    --protocol LIST   comma-separated protocols to render
                      [default: berkeley,dragon,write-once,illinois,firefly]
    --seed N          seed for seeded protocols such as random [default: 42]
    --help            print this help
";

#[derive(Clone, Debug, PartialEq)]
struct TableConfig {
    protocols: Vec<String>,
    seed: u64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            // The paper's protocol examples, in table order (Tables 3-7).
            protocols: ["berkeley", "dragon", "write-once", "illinois", "firefly"]
                .map(str::to_string)
                .to_vec(),
            seed: 42,
        }
    }
}

fn parse_table_args(args: &[String]) -> Result<TableConfig, String> {
    let mut cfg = TableConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if common.try_consume(arg, &mut it)? {
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocols = value("--protocol")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.protocols.is_empty() {
                    return Err("--protocol list is empty".to_string());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if common.jobs.is_some() || common.trace_out.is_some() {
        return Err("`table` accepts only --protocol and --seed".to_string());
    }
    if let Some(seed) = common.seed {
        cfg.seed = seed;
    }
    Ok(cfg)
}

fn run_table(cfg: &TableConfig) -> Result<(), String> {
    for name in &cfg.protocols {
        let p = by_name(name, cfg.seed).ok_or_else(|| format!("unknown protocol `{name}`"))?;
        let table = p
            .policy_table()
            .ok_or_else(|| format!("`{name}` exposes no policy table"))?;
        print!("{}", table.render());
        if !p.table_is_exact() {
            println!("note: base table only — a stateful hook refines the choice per line");
        }
        let violations = table.class_violations();
        if violations.is_empty() {
            println!("class membership: IN the MOESI compatible class");
        } else {
            println!(
                "class membership: ADAPTED ({} out-of-class entries)",
                violations.len()
            );
        }
        println!();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("table") {
        return match parse_table_args(&args[1..]) {
            Ok(cfg) => match run_table(&cfg) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) if msg.is_empty() => {
                print!("{TABLE_USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{TABLE_USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("faults") {
        return match parse_faults_args(&args[1..]) {
            Ok(cfg) => match run_faults(&cfg) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) if msg.is_empty() => {
                print!("{FAULTS_USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{FAULTS_USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("bench") {
        return match parse_bench_args(&args[1..]) {
            Ok(cfg) => match run_bench(&cfg) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) if msg.is_empty() => {
                print!("{BENCH_USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{BENCH_USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("synth") {
        return match parse_synth_args(&args[1..]) {
            Ok(cfg) => match run_synth(&cfg) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) if msg.is_empty() => {
                print!("{SYNTH_USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{SYNTH_USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("verify") {
        return match parse_verify_args(&args[1..]) {
            Ok(cfg) => match run_verify(&cfg) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) if msg.is_empty() => {
                print!("{VERIFY_USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{VERIFY_USAGE}");
                ExitCode::from(2)
            }
        };
    }
    match parse_args(&args) {
        Ok(cfg) => match run(&cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn defaults_apply_with_no_args() {
        let cfg = parse_args(&[]).expect("empty args");
        assert_eq!(cfg, Config::default());
    }

    #[test]
    fn full_option_set_parses() {
        let cfg = parse_args(&args(
            "--protocol moesi,dragon --cpus 6 --workload ping-pong --steps 50 \
             --line-size 64 --cache-bytes 8192 --seed 7 --check --census --trace 12",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, vec!["moesi", "dragon"]);
        assert_eq!(cfg.cpus, 6);
        assert_eq!(cfg.workload, "ping-pong");
        assert_eq!(cfg.steps, 50);
        assert_eq!(cfg.line_size, 64);
        assert_eq!(cfg.cache_bytes, 8192);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.check && cfg.census);
        assert_eq!(cfg.trace, 12);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_args(&args("--cpus"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_args(&args("--cpus zero"))
            .unwrap_err()
            .contains("expects a number"));
        assert!(parse_args(&args("--cpus 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(
            parse_args(&args("--help")).unwrap_err().is_empty(),
            "help sentinel"
        );
    }

    #[test]
    fn unknown_protocol_is_reported_at_build_time() {
        let cfg = Config {
            protocols: vec!["tcc-1999".to_string()],
            ..Config::default()
        };
        assert!(build_system(&cfg).unwrap_err().contains("unknown protocol"));
    }

    #[test]
    fn protocol_list_extends_to_cpu_count() {
        let cfg = Config {
            protocols: vec!["moesi".to_string(), "dragon".to_string()],
            cpus: 4,
            ..Config::default()
        };
        let sys = build_system(&cfg).expect("builds");
        assert_eq!(sys.nodes(), 4);
        assert!(sys.controller(0).name().contains("MOESI"));
        assert!(sys.controller(1).name().contains("Dragon"));
        assert!(sys.controller(3).name().contains("Dragon"), "last repeats");
    }

    #[test]
    fn end_to_end_smoke_run() {
        let cfg = Config {
            steps: 30,
            check: true,
            census: true,
            trace: 4,
            workload: "ping-pong".to_string(),
            ..Config::default()
        };
        run(&cfg).expect("smoke run succeeds");
    }

    #[test]
    fn clusters_spec_parses_and_validates() {
        let cfg = parse_args(&args("--clusters 4x2")).expect("valid");
        assert_eq!(cfg.clusters, Some((4, 2)));
        assert!(parse_args(&args("--clusters 4"))
            .unwrap_err()
            .contains("CxN"));
        assert!(parse_args(&args("--clusters 0x2"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn hierarchy_smoke_run() {
        let cfg = Config {
            clusters: Some((2, 2)),
            steps: 20,
            check: true,
            ..Config::default()
        };
        run(&cfg).expect("hierarchy run succeeds");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let cfg = Config {
            workload: "mystery".to_string(),
            ..Config::default()
        };
        assert!(run(&cfg).unwrap_err().contains("unknown workload"));
    }

    #[test]
    fn verify_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_verify_args(&[]).expect("empty"),
            VerifyConfig::default()
        );
        let cfg = parse_verify_args(&args(
            "--protocol moesi,dragon --lines 2 --values 3 --max-states 500 \
             --trace-out /tmp/v.json",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, vec!["moesi", "dragon"]);
        assert_eq!((cfg.lines, cfg.values), (2, 3));
        assert_eq!(cfg.max_states, Some(500));
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/v.json"));
        assert!(parse_verify_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_verify_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_verify_args(&args("--values 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn verify_smoke_runs() {
        // Homogeneous per-protocol mode.
        run_verify(&VerifyConfig {
            protocols: vec!["moesi".to_string()],
            ..VerifyConfig::default()
        })
        .expect("moesi pair verifies");
        // Mixed mode with an explicit list.
        run_verify(&VerifyConfig {
            protocols: vec!["dragon".to_string(), "write-through".to_string()],
            ..VerifyConfig::default()
        })
        .expect("mixed pair verifies");
        // Unknown names are reported.
        let err = run_verify(&VerifyConfig {
            protocols: vec!["mesif".to_string()],
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"));
        // A state cap that bites is an error, not a silent pass.
        let err = run_verify(&VerifyConfig {
            max_states: Some(3),
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("state cap"), "{err}");
    }

    #[test]
    fn verify_detects_the_write_once_clash() {
        let err = run_verify(&VerifyConfig {
            protocols: vec!["moesi".to_string(), "write-once".to_string()],
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("invariant violated"), "{err}");
    }

    #[test]
    fn verify_matrix_matches_the_claims() {
        run_verify(&VerifyConfig {
            matrix: true,
            ..VerifyConfig::default()
        })
        .expect("matrix matches documented compatibility");
    }

    #[test]
    fn faults_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_faults_args(&[]).expect("empty"),
            FaultsConfig::default()
        );
        let cfg = parse_faults_args(&args(
            "--protocol moesi,berkeley --cpus 3 --steps 500 --lines 40 \
             --line-size 32 --cache-bytes 2048 --seed 9 --rate 0.25 \
             --kind glitch,corrupt --trace-out /tmp/f.json",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, vec!["moesi", "berkeley"]);
        assert_eq!((cfg.cpus, cfg.steps, cfg.lines), (3, 500, 40));
        assert_eq!((cfg.line_size, cfg.cache_bytes), (32, 2048));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/f.json"));
        assert!((cfg.rate - 0.25).abs() < 1e-12);
        assert_eq!(cfg.kinds, vec![FaultKind::Glitch, FaultKind::CorruptMemory]);
        assert!(parse_faults_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_faults_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_faults_args(&args("--rate 1.5"))
            .unwrap_err()
            .contains("between 0 and 1"));
        assert!(parse_faults_args(&args("--kind gremlin"))
            .unwrap_err()
            .contains("unknown fault kind"));
        assert!(parse_faults_args(&args("--steps 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn faults_rate_maps_onto_the_enabled_kinds_only() {
        let cfg = parse_faults_args(&args("--rate 0.2 --kind glitch,storm")).expect("valid");
        let campaign = campaign_config(&cfg);
        assert!((campaign.faults.glitch_rate - 0.2).abs() < 1e-12);
        assert!((campaign.faults.storm_rate - 0.1).abs() < 1e-12);
        assert_eq!(campaign.faults.stall_rate, 0.0, "stall not enabled");
        assert_eq!(campaign.faults.kill_rate, 0.0, "kill not enabled");
        assert_eq!(campaign.faults.corrupt_rate, 0.0, "corrupt not enabled");
        // `all` expands to every kind.
        let all = campaign_config(&parse_faults_args(&args("--kind all")).expect("valid"));
        assert!(all.faults.stall_rate > 0.0 && all.faults.corrupt_rate > 0.0);
    }

    #[test]
    fn bench_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_bench_args(&[]).expect("empty"),
            BenchCliConfig::default()
        );
        let cfg = parse_bench_args(&args(
            "--protocol moesi,dragon --workload general,ping-pong --cpus 2 \
             --steps 100 --cache-bytes 2048 --seed 3 --jobs 2 --json --out /tmp/b.json \
             --trace-out /tmp/b-trace.json",
        ))
        .expect("valid");
        assert_eq!(cfg.protocols, Some(vec!["moesi".into(), "dragon".into()]));
        assert_eq!(
            cfg.workloads,
            Some(vec!["general".into(), "ping-pong".into()])
        );
        assert_eq!((cfg.cpus, cfg.steps, cfg.cache_bytes), (2, 100, 2048));
        assert_eq!((cfg.seed, cfg.jobs), (3, 2));
        assert!(cfg.json);
        assert_eq!(cfg.out, "/tmp/b.json");
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/b-trace.json"));
        assert!(parse_bench_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_bench_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_bench_args(&args("--jobs 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn bench_smoke_run_writes_json() {
        let out = std::env::temp_dir().join("moesi_sim_bench_smoke.json");
        let trace_out = std::env::temp_dir().join("moesi_sim_bench_smoke_trace.json");
        let cfg = BenchCliConfig {
            protocols: Some(vec!["moesi".into()]),
            workloads: Some(vec!["ping-pong".into()]),
            cpus: 2,
            steps: 50,
            json: true,
            out: out.to_string_lossy().into_owned(),
            trace_out: Some(trace_out.to_string_lossy().into_owned()),
            ..BenchCliConfig::default()
        };
        run_bench(&cfg).expect("bench smoke succeeds");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"protocol\": \"moesi\""), "{json}");
        assert!(json.contains("\"phase_p50_ns\": ["), "{json}");
        let trace = std::fs::read_to_string(&trace_out).expect("trace written");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("\"ph\": \"X\""), "{trace}");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&trace_out);
        // Unknown names are reported.
        let err = run_bench(&BenchCliConfig {
            protocols: Some(vec!["mesif".into()]),
            json: false,
            ..cfg
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    #[test]
    fn shared_flags_parse_identically_across_subcommands() {
        let shared = "--seed 11 --jobs 3 --trace-out /tmp/t.json";
        let v = parse_verify_args(&args(shared)).expect("verify");
        let f = parse_faults_args(&args(shared)).expect("faults");
        let b = parse_bench_args(&args(shared)).expect("bench");
        assert_eq!((v.jobs, f.jobs, b.jobs), (3, 3, 3));
        assert_eq!((v.seed, f.seed, b.seed), (Some(11), 11, 11));
        assert_eq!(v.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(f.trace_out, b.trace_out);
        assert_eq!(v.trace_out, f.trace_out);
        for err in [
            parse_verify_args(&args("--jobs 0")).unwrap_err(),
            parse_faults_args(&args("--jobs 0")).unwrap_err(),
            parse_bench_args(&args("--jobs 0")).unwrap_err(),
        ] {
            assert!(err.contains("at least 1"), "{err}");
        }
    }

    #[test]
    fn table_args_parse_and_render() {
        assert_eq!(
            parse_table_args(&[]).expect("empty"),
            TableConfig::default()
        );
        let cfg = parse_table_args(&args("--protocol hybrid,moesi --seed 9")).expect("valid");
        assert_eq!(cfg.protocols, vec!["hybrid", "moesi"]);
        assert_eq!(cfg.seed, 9);
        assert!(parse_table_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_table_args(&args("--jobs 2"))
            .unwrap_err()
            .contains("only --protocol and --seed"));
        run_table(&TableConfig::default()).expect("default tables render");
        run_table(&cfg).expect("hybrid and moesi tables render");
        let err = run_table(&TableConfig {
            protocols: vec!["mesif".to_string()],
            seed: 0,
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    #[test]
    fn verify_mutate_mode_runs_clean() {
        run_verify(&VerifyConfig {
            mutate: true,
            ..VerifyConfig::default()
        })
        .expect("every in-class mutation verifies clean");
    }

    #[test]
    fn verify_mutate_accepts_a_loaded_table() {
        let path = std::env::temp_dir().join("moesi_sim_verify_table_smoke.txt");
        let berkeley = by_name("berkeley", 0).unwrap();
        std::fs::write(&path, berkeley.policy_table().unwrap().render()).unwrap();
        let cfg = parse_verify_args(&args(&format!(
            "--mutate --table {}",
            path.to_string_lossy()
        )))
        .expect("valid");
        assert!(cfg.mutate);
        run_verify(&cfg).expect("Berkeley-based mutation sweep runs clean");
        let _ = std::fs::remove_file(&path);
        // --table without --mutate is a usage error, caught at parse time.
        assert!(parse_verify_args(&args("--table foo.txt"))
            .unwrap_err()
            .contains("requires --mutate"));
        // An unreadable file is a run-time error.
        let err = run_verify(&VerifyConfig {
            mutate: true,
            table: Some("/nonexistent/table.txt".to_string()),
            ..VerifyConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn synth_defaults_and_full_option_set_parse() {
        assert_eq!(
            parse_synth_args(&[]).expect("empty"),
            SynthCliConfig::default()
        );
        let cfg = parse_synth_args(&args(
            "--workload ping-pong,general --cpus 2 --steps 80 --cache-bytes 1024 \
             --rounds 0 --campaign-steps 300 --sensitivity --seed 5 --jobs 2 \
             --out /tmp/s.txt --json-out /tmp/s.json",
        ))
        .expect("valid");
        assert_eq!(
            cfg.workloads,
            Some(vec!["ping-pong".into(), "general".into()])
        );
        assert_eq!((cfg.cpus, cfg.steps, cfg.cache_bytes), (2, 80, 1024));
        assert_eq!((cfg.rounds, cfg.campaign_steps), (0, 300));
        assert!(cfg.sensitivity);
        assert_eq!((cfg.seed, cfg.jobs), (5, 2));
        assert_eq!(cfg.out.as_deref(), Some("/tmp/s.txt"));
        assert_eq!(cfg.json_out.as_deref(), Some("/tmp/s.json"));
        assert!(parse_synth_args(&args("--help")).unwrap_err().is_empty());
        assert!(parse_synth_args(&args("--bogus"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_synth_args(&args("--steps 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_synth_args(&args("--trace-out /tmp/t.json"))
            .unwrap_err()
            .contains("not supported"));
    }

    #[test]
    fn synth_smoke_run_writes_outputs() {
        let out = std::env::temp_dir().join("moesi_sim_synth_smoke.txt");
        let json_out = std::env::temp_dir().join("moesi_sim_synth_smoke.json");
        let cfg = SynthCliConfig {
            workloads: Some(vec!["ping-pong".into()]),
            cpus: 2,
            steps: 40,
            rounds: 0,
            campaign_steps: 150,
            out: Some(out.to_string_lossy().into_owned()),
            json_out: Some(json_out.to_string_lossy().into_owned()),
            ..SynthCliConfig::default()
        };
        run_synth(&cfg).expect("synth smoke succeeds");
        let doc = std::fs::read_to_string(&out).expect("tables written");
        let tables = moesi::parse_member_tables(&doc).expect("document parses in-class");
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name(), "synth-ping-pong");
        let json = std::fs::read_to_string(&json_out).expect("json written");
        assert!(json.contains("\"winner\": \"synth-ping-pong\""), "{json}");
        assert!(json.contains("\"faults_silent\": 0"), "{json}");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&json_out);
        // Unknown workloads are reported.
        let err = run_synth(&SynthCliConfig {
            workloads: Some(vec!["zipfian".into()]),
            out: None,
            json_out: None,
            ..cfg
        })
        .unwrap_err();
        assert!(err.contains("zipfian"), "{err}");
    }

    #[test]
    fn faults_smoke_campaign_runs_clean() {
        run_faults(&FaultsConfig {
            protocols: vec!["moesi".to_string()],
            steps: 200,
            rate: 0.2,
            ..FaultsConfig::default()
        })
        .expect("short campaign degrades gracefully");
        let err = run_faults(&FaultsConfig {
            protocols: vec!["mesif".to_string()],
            ..FaultsConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    #[test]
    fn faults_hierarchy_options_parse() {
        let cfg = parse_faults_args(&args(
            "--hierarchy --clusters 3 --cpus 2 --steps 300 --json --out /tmp/h.json \
             --kind glitch,bridge-kill,stale-tag",
        ))
        .expect("valid");
        assert!(cfg.hierarchy && cfg.json);
        assert_eq!((cfg.clusters, cfg.cpus, cfg.steps), (3, 2, 300));
        assert_eq!(cfg.out, "/tmp/h.json");
        assert_eq!(
            cfg.kinds,
            vec![
                FaultKind::Glitch,
                FaultKind::BridgeKill,
                FaultKind::StaleTag
            ]
        );
        // The bridge spellings enable the same underlying rates.
        let faults = fault_rates(&cfg);
        assert!(faults.kill_rate > 0.0 && faults.stale_tag_rate > 0.0);
        assert_eq!(faults.stall_rate, 0.0);
        assert!(
            parse_faults_args(&args("--hierarchy --trace-out /tmp/t.json"))
                .unwrap_err()
                .contains("flat run")
        );
    }

    #[test]
    fn faults_hierarchy_smoke_writes_json_and_passes_the_probe() {
        let out = std::env::temp_dir().join("moesi_sim_faults_hier_smoke.json");
        run_faults(&FaultsConfig {
            protocols: vec!["moesi".to_string()],
            hierarchy: true,
            cpus: 2,
            steps: 250,
            lines: 48,
            rate: 0.3,
            json: true,
            out: out.to_string_lossy().into_owned(),
            ..FaultsConfig::default()
        })
        .expect("hierarchy campaign degrades gracefully");
        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"campaign\": \"hierarchy\""), "{json}");
        assert!(json.contains("\"recovery_demonstrated\": true"), "{json}");
        assert!(json.contains("\"salvaged_lines\": "), "{json}");
        let _ = std::fs::remove_file(&out);
    }
}
