//! The §5.2 comparison: update versus invalidate, across all protocols.
//!
//! For each protocol, an identical homogeneous 4-processor system runs the
//! same sharing workloads; we report bus transactions, bus time, misses and
//! coherence events — the Archibald & Baer-style comparison the paper's
//! protocol preference rests on.
//!
//! Run with `cargo run --example protocol_comparison`.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::by_name;
use mpsim::workload::{DuboisBriggs, PingPong, ReadMostly, SharingModel};
use mpsim::{RefStream, System, SystemBuilder};

const LINE: usize = 32;
const CPUS: usize = 4;
const STEPS: u64 = 1_500;

const PROTOCOLS: &[&str] = &[
    "moesi",
    "moesi-invalidating",
    "puzak",
    "berkeley",
    "dragon",
    "write-once",
    "illinois",
    "firefly",
    "synapse",
    "write-through",
];

fn build(protocol: &str) -> System {
    let cfg = CacheConfig::new(4096, LINE, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(LINE).checking(true);
    for i in 0..CPUS {
        b = b.cache(by_name(protocol, 100 + i as u64).expect("known"), cfg);
    }
    b.build()
}

fn streams(kind: &str) -> Vec<Box<dyn RefStream + Send>> {
    (0..CPUS)
        .map(|cpu| -> Box<dyn RefStream + Send> {
            match kind {
                "ping-pong" => Box::new(PingPong::new(cpu, 0, LINE as u64)),
                "read-mostly" => Box::new(ReadMostly::new(cpu, 0, 16, LINE as u64, 8)),
                _ => Box::new(DuboisBriggs::new(
                    cpu,
                    SharingModel {
                        line_size: LINE as u64,
                        ..SharingModel::default()
                    },
                    7,
                )),
            }
        })
        .collect()
}

fn main() {
    for workload in ["general (Dubois-Briggs)", "ping-pong", "read-mostly"] {
        let key = workload.split(' ').next().unwrap_or(workload);
        println!("== workload: {workload} ({CPUS} CPUs x {STEPS} steps) ==");
        println!(
            "{:<20} {:>7} {:>9} {:>11} {:>8} {:>8} {:>8} {:>7}",
            "protocol", "hit%", "bus txns", "bus us", "inval", "update", "interv", "aborts"
        );
        for name in PROTOCOLS {
            let mut sys = build(name);
            let mut ws = streams(key);
            sys.run(&mut ws, STEPS);
            sys.verify().expect("consistent");
            let t = sys.total_stats();
            let b = sys.bus_stats();
            println!(
                "{:<20} {:>6.1}% {:>9} {:>11.1} {:>8} {:>8} {:>8} {:>7}",
                name,
                t.hit_ratio() * 100.0,
                b.transactions,
                b.busy_ns as f64 / 1000.0,
                t.invalidations_received,
                t.updates_received,
                b.interventions,
                b.aborts,
            );
        }
        println!();
    }
    println!("Reading the table:");
    println!(" * On ping-pong sharing, update protocols (moesi, dragon, firefly) keep");
    println!("   every copy alive: zero re-miss traffic, at the price of a broadcast per write.");
    println!(" * Invalidation protocols (moesi-invalidating, berkeley, illinois, write-once)");
    println!("   pay a re-fetch per migration of the written line.");
    println!(" * write-once/illinois/firefly pay BS abort+push whenever dirty data is snooped,");
    println!("   because the Futurebus cannot update memory during intervention (§4.3-4.5).");
}
