//! Synchronisation on top of coherence: a shared counter and a spinlock,
//! exercised by every kind of board at once. This is why the consistency
//! problem matters — §1: "If such a system is to correctly and
//! deterministically execute computations, all references to a given
//! location ... should reference the same value."
//!
//! Run with `cargo run --example shared_counter`.

use cache_array::CacheConfig;
use moesi::protocols::{Berkeley, Dragon, MoesiInvalidating, MoesiPreferred};
use mpsim::SystemBuilder;

const COUNTER: u64 = 0x1000;
const LOCK: u64 = 0x2000;
const ROUNDS: u32 = 250;

fn main() {
    let mut sys = SystemBuilder::new(32)
        .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
        .cache(Box::new(MoesiInvalidating::new()), CacheConfig::small())
        .cache(Box::new(Berkeley::new()), CacheConfig::small())
        .cache(Box::new(Dragon::new()), CacheConfig::small())
        .checking(true)
        .build();
    let cpus = sys.nodes();

    println!("— fetch-and-add: {cpus} heterogeneous boards x {ROUNDS} increments —\n");
    for round in 0..ROUNDS {
        for cpu in 0..cpus {
            let old = sys.fetch_add_u32(cpu, COUNTER, 1);
            assert_eq!(old, round * cpus as u32 + cpu as u32, "lost update!");
        }
    }
    let total = u32::from_le_bytes(sys.read(0, COUNTER, 4).try_into().unwrap());
    println!(
        "  final counter: {total} (expected {})",
        ROUNDS * cpus as u32
    );
    assert_eq!(total, ROUNDS * cpus as u32);

    println!("\n— test-and-set spinlock guarding a critical section —\n");
    let mut acquisitions = vec![0u32; cpus];
    for i in 0..200 {
        let cpu = i % cpus;
        // Spin (bounded, since the simulator is cooperative).
        let mut tries = 0;
        while sys.test_and_set(cpu, LOCK) != 0 {
            tries += 1;
            assert!(tries < 3, "the lock must always be free here");
        }
        // Critical section: read-modify-write without atomics is now safe.
        let v = sys.read(cpu, COUNTER, 4);
        let n = u32::from_le_bytes(v.try_into().unwrap()) + 1;
        sys.write(cpu, COUNTER, &n.to_le_bytes());
        acquisitions[cpu] += 1;
        sys.clear_lock(cpu, LOCK);
    }
    let total2 = u32::from_le_bytes(sys.read(1, COUNTER, 4).try_into().unwrap());
    println!("  lock acquisitions per board: {acquisitions:?}");
    println!(
        "  final counter: {total2} (expected {})",
        ROUNDS * cpus as u32 + 200
    );
    assert_eq!(total2, ROUNDS * cpus as u32 + 200);

    println!("\n— what the coherence traffic looked like —\n");
    for cpu in 0..cpus {
        println!("  {:<22} {}", sys.controller(cpu).name(), sys.stats(cpu));
    }
    println!("\n{}", sys.bus_stats());
    sys.verify().expect("consistent");
    println!("\nconsistency oracle: OK — no lost updates across 4 different protocols");
}
