//! Figures 1 and 2: the Futurebus broadcast handshake, wired-OR glitches, and
//! the 25 ns broadcast penalty.
//!
//! Run with `cargo run --example futurebus_timing`.

use futurebus::handshake::HandshakeSim;
use futurebus::wire::{WireEvent, WiredOr};
use futurebus::TimingConfig;

fn main() {
    println!("— Figure 1: the garden-hose wired-OR idiom —\n");
    let mut ai = WiredOr::new("AI*");
    println!("Three modules step on AI* (drive low, float high):");
    for m in 0..3 {
        ai.assert(m);
        println!("  module {m} asserts -> {ai}");
    }
    println!("Each releases when finished with the address:");
    for m in 0..3 {
        let ev = ai.release(m).expect("was asserting");
        match ev {
            WireEvent::Glitch(_) => println!("  module {m} releases -> {ai}   ({ev})"),
            _ => println!("  module {m} releases -> {ai}   (line rises cleanly)"),
        }
    }
    println!(
        "  glitches absorbed by the inertial filter: {}\n",
        ai.glitch_count()
    );

    println!("— Figure 2: one broadcast address cycle, timestamped —\n");
    let sim = HandshakeSim::new(TimingConfig::default());
    // A fast cache (20 ns directory probe), a slow I/O card (90 ns), memory (45 ns).
    let trace = sim.run(&[20, 90, 45]);
    print!("{}", trace.render());

    println!("\n— The §2.2 penalty: broadcast vs single-slave —\n");
    for modules in [1usize, 2, 4, 8, 16] {
        let t = sim.run(&vec![40; modules]);
        println!(
            "  {modules:>2} module(s): cycle = {:>3} ns, glitches = {}",
            t.duration, t.glitches
        );
    }
    println!(
        "\n  broadcast overhead at any population: {} ns — \"broadcast handshaking is",
        sim.broadcast_overhead(40, 8)
    );
    println!("  25 nanoseconds slower than single slave transactions\" (paper, §2.2).");
    println!("\n  The reward: \"broadcast operations are guaranteed to work, no matter how");
    println!("  new or old, fast or slow, a particular board may be\" — the slowest board");
    println!("  simply holds AI* a little longer:");
    for slow in [50u64, 100, 200, 400] {
        let t = sim.run(&[20, 20, slow]);
        println!(
            "    slowest board {slow:>3} ns -> cycle {:>3} ns",
            t.duration
        );
    }
}
