//! The paper's opening argument, measured (§1): "Two factors require that
//! high performance multiprocessor systems have cache memories ... no
//! feasible bus design can provide adequate bandwidth to memory for any
//! reasonable number of high performance processors."
//!
//! The contention-aware timed mode runs identical workloads on machines of
//! 1–16 processors built three ways — no caches, write-through caches,
//! MOESI copy-back caches — and reports aggregate throughput and bus
//! utilisation.
//!
//! Run with `cargo run --release --example bus_saturation`.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::by_name;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, SystemBuilder, TimedReport};

const LINE: usize = 32;
const REFS: u64 = 2_000;
const CPU_WORK_NS: u64 = 50; // a 20-MIPS-class processor's per-reference work

fn run(kind: &str, cpus: usize) -> TimedReport {
    let cfg = CacheConfig::new(4096, LINE, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(LINE);
    for i in 0..cpus {
        b = match kind {
            "none" => b.uncached(by_name("non-caching", i as u64).unwrap()),
            name => b.cache(by_name(name, i as u64).unwrap(), cfg),
        };
    }
    let mut sys = b.build();
    let model = SharingModel {
        p_shared: 0.1,
        line_size: LINE as u64,
        ..SharingModel::default()
    };
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..cpus)
        .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 9)) as _)
        .collect();
    sys.run_timed(&mut streams, REFS, CPU_WORK_NS)
}

fn main() {
    println!("Aggregate throughput (refs/us) and bus utilisation vs processor count");
    println!("({REFS} refs/cpu, {CPU_WORK_NS} ns local work per ref):\n");
    println!(
        "{:>5} | {:>12} {:>6} | {:>12} {:>6} | {:>12} {:>6}",
        "CPUs", "no cache", "bus%", "write-thru", "bus%", "MOESI", "bus%"
    );
    let mut last: Vec<f64> = Vec::new();
    for cpus in [1usize, 2, 4, 8, 16] {
        let none = run("none", cpus);
        let wt = run("write-through", cpus);
        let cb = run("moesi", cpus);
        println!(
            "{:>5} | {:>12.2} {:>5.0}% | {:>12.2} {:>5.0}% | {:>12.2} {:>5.0}%",
            cpus,
            none.refs_per_us(),
            none.bus_utilization() * 100.0,
            wt.refs_per_us(),
            wt.bus_utilization() * 100.0,
            cb.refs_per_us(),
            cb.bus_utilization() * 100.0,
        );
        last = vec![none.refs_per_us(), wt.refs_per_us(), cb.refs_per_us()];
    }
    println!(
        "\nAt 16 processors the cacheless machine moves {:.1}x fewer references than",
        last[2] / last[0]
    );
    println!("the MOESI machine: its bus saturated almost immediately, while copy-back");
    println!("caches satisfy most references locally (\"the cache also cuts the memory");
    println!("bandwidth requirement, since most references are satisfied locally with");
    println!("no bus activity\", §1). Write-through lands in between — every write still");
    println!("crosses the bus.");
}
