//! §6's multiple-bus question, answered: a two-level hierarchy where each
//! cluster is "one big cache" running MOESI on the parent bus.
//!
//! The demo measures the point of a hierarchy: intra-cluster sharing never
//! touches the parent bus, so the machine scales past what one bus could
//! carry.
//!
//! Run with `cargo run --example two_level_bus`.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::MoesiPreferred;
use mpsim::hierarchy::{HierarchicalSystem, HierarchyBuilder};
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, SystemBuilder};

const LINE: usize = 32;
const CLUSTERS: usize = 4;
const CPUS_PER_CLUSTER: usize = 2;
const STEPS: u64 = 800;

fn cfg() -> CacheConfig {
    CacheConfig::new(2048, LINE, 2, ReplacementKind::Lru)
}

fn build_hierarchy() -> HierarchicalSystem {
    let mut b = HierarchyBuilder::new(LINE).checking(true);
    for _ in 0..CLUSTERS {
        b = b.cluster();
        for _ in 0..CPUS_PER_CLUSTER {
            b = b.cache(Box::new(MoesiPreferred::new()), cfg());
        }
    }
    b.build()
}

fn main() {
    println!("— A walking tour of cluster-level MOESI —\n");
    let mut sys = build_hierarchy();
    let addr = 0x4000;
    sys.write(0, 0, addr, &[42; 4]);
    println!(
        "cluster0/cpu0 writes: cluster states = {}",
        (0..CLUSTERS)
            .map(|c| sys.cluster_state_of(c, addr).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let v = sys.read(2, 1, addr, 4);
    println!(
        "cluster2/cpu1 reads {v:?}: cluster states = {}",
        (0..CLUSTERS)
            .map(|c| sys.cluster_state_of(c, addr).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    sys.write(2, 0, addr, &[43; 4]);
    println!(
        "cluster2/cpu0 writes: cluster states = {}",
        (0..CLUSTERS)
            .map(|c| sys.cluster_state_of(c, addr).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("  (the whole cluster behaves as one MOESI cache on the parent bus)\n");

    println!("— Bandwidth: flat single bus vs two-level hierarchy —\n");

    // Workload: each processor mostly shares with its cluster neighbours
    // (private pools double as \"cluster-local\" data) plus some global sharing.
    let model = SharingModel {
        shared_lines: 8,
        private_lines: 32,
        p_shared: 0.15, // only 15% of traffic is globally shared
        p_write: 0.3,
        p_rereference: 0.4,
        line_size: LINE as u64,
    };

    // Flat machine: all 8 CPUs on one bus.
    let mut flat = {
        let mut b = SystemBuilder::new(LINE).checking(true);
        for _ in 0..CLUSTERS * CPUS_PER_CLUSTER {
            b = b.cache(Box::new(MoesiPreferred::new()), cfg());
        }
        b.build()
    };
    let mut flat_streams: Vec<Box<dyn RefStream + Send>> = (0..CLUSTERS * CPUS_PER_CLUSTER)
        // Pair up CPUs onto shared \"private\" pools to emulate cluster locality.
        .map(|cpu| Box::new(DuboisBriggs::new(cpu / CPUS_PER_CLUSTER, model, 5)) as _)
        .collect();
    flat.run(&mut flat_streams, STEPS);

    // Hierarchical machine: 4 clusters x 2 CPUs.
    let mut hier = build_hierarchy();
    let mut hier_streams: Vec<Vec<Box<dyn RefStream + Send>>> = (0..CLUSTERS)
        .map(|cluster| {
            (0..CPUS_PER_CLUSTER)
                .map(|_| {
                    Box::new(DuboisBriggs::new(cluster, model, 5)) as Box<dyn RefStream + Send>
                })
                .collect()
        })
        .collect();
    hier.run(&mut hier_streams, STEPS);
    hier.verify().expect("consistent");

    let flat_txns = flat.bus_stats().transactions;
    let parent_txns = hier.parent_stats().transactions;
    let cluster_txns: u64 = (0..CLUSTERS)
        .map(|c| hier.bridge(c).fabric().bus().stats().transactions)
        .sum();

    println!("flat single bus:      {flat_txns:>7} transactions on THE one bus");
    println!("hierarchy parent bus: {parent_txns:>7} transactions");
    println!("hierarchy cluster buses (sum of {CLUSTERS} independent buses): {cluster_txns:>7}");
    println!(
        "\nThe parent bus carries {:.1}x less traffic than the flat bus —",
        flat_txns as f64 / parent_txns.max(1) as f64
    );
    println!("cluster-local sharing is absorbed by the cluster buses, which operate");
    println!("in parallel. That is the scaling §6 asks after, built from nothing but");
    println!("the MOESI class applied recursively: each bridge is a Table 1/2 cache");
    println!("master whose 'cache' is its whole cluster.");
}
