//! A bus-analyser view of the Write-Once protocol (Table 5) and its §4.3
//! adaptation: "We replace intervention with an abort (BS), followed by an
//! immediate write back ('push') to main memory; when the transaction is
//! restarted, memory is up to date and intervention is no longer required."
//!
//! Run with `cargo run --example write_once_walkthrough`.

use cache_array::CacheConfig;
use moesi::protocols::WriteOnce;
use moesi::LineState;
use mpsim::SystemBuilder;

fn main() {
    let mut sys = SystemBuilder::new(32)
        .cache(Box::new(WriteOnce::new()), CacheConfig::small())
        .cache(Box::new(WriteOnce::new()), CacheConfig::small())
        .checking(true)
        .build();
    sys.enable_trace(64);
    let addr = 0x2000;

    println!("The eponymous 'write once':\n");
    sys.read(0, addr, 4);
    sys.read(1, addr, 4);
    println!(
        "  both read:              cpu0={} cpu1={}",
        sys.state_of(0, addr),
        sys.state_of(1, addr)
    );
    sys.write(0, addr, &[1; 4]);
    println!(
        "  cpu0 first write:       cpu0={} cpu1={}   <- written through, reserved (E)",
        sys.state_of(0, addr),
        sys.state_of(1, addr)
    );
    sys.write(0, addr, &[2; 4]);
    println!(
        "  cpu0 second write:      cpu0={} cpu1={}   <- silent, dirty (M)",
        sys.state_of(0, addr),
        sys.state_of(1, addr)
    );

    println!("\nNow cpu1 reads the dirty line. On the real Futurebus a cache-to-cache");
    println!("transfer cannot update memory, so Write-Once must abort and push:\n");
    let v = sys.read(1, addr, 4);
    println!(
        "  cpu1 reads {v:?}: cpu0={} cpu1={}",
        sys.state_of(0, addr),
        sys.state_of(1, addr)
    );
    assert_eq!(sys.state_of(0, addr), LineState::Shareable);
    assert_eq!(sys.stats(0).pushes, 1);

    println!("\nThe bus trace (the logic-analyser view):\n");
    for line in sys.trace().render().lines() {
        println!("  {line}");
    }
    println!("\nReading the trace bottom-up: the final READ shows `(1 aborts)` — its");
    println!("first attempt was killed by BS; the PUSH wrote cpu0's dirty line to");
    println!("memory; the retried READ was then served by memory, exactly as §4.3");
    println!("prescribes. Memory is now current:");
    sys.make_all_consistent();
    println!("  memory@{addr:#x} = {:?}", sys.memory_peek(addr, 4));
    sys.verify().expect("consistent");
}
