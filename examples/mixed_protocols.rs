//! The §3.4 compatibility claim, live: seven nodes running seven different
//! members of the compatible class — including one that picks a *random*
//! permitted action on every event — share one bus under a randomized
//! workload while the consistency oracle audits every access.
//!
//! Run with `cargo run --example mixed_protocols`.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::{
    Berkeley, Dragon, MoesiInvalidating, MoesiPreferred, NonCaching, PuzakRefinement, RandomPolicy,
    WriteThrough,
};
use moesi::CacheKind;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, SystemBuilder};

fn main() {
    let line_size = 32;
    let cfg = CacheConfig::new(2048, line_size, 2, ReplacementKind::Lru);

    let mut sys = SystemBuilder::new(line_size)
        .cache(Box::new(MoesiPreferred::new()), cfg)
        .cache(Box::new(MoesiInvalidating::new()), cfg)
        .cache(Box::new(Berkeley::new()), cfg)
        .cache(Box::new(Dragon::new()), cfg)
        .cache(Box::new(PuzakRefinement::new()), cfg)
        .cache(Box::new(WriteThrough::new()), cfg)
        .cache(
            Box::new(RandomPolicy::new(CacheKind::CopyBack, 0xC0FFEE)),
            cfg,
        )
        .uncached(Box::new(NonCaching::new()))
        .checking(true)
        .build();

    let model = SharingModel {
        shared_lines: 8,
        private_lines: 32,
        p_shared: 0.4,
        p_write: 0.3,
        p_rereference: 0.3,
        line_size: line_size as u64,
    };
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..sys.nodes())
        .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 42)) as Box<dyn RefStream + Send>)
        .collect();

    let steps = 2_000;
    println!(
        "Running {} accesses across {} heterogeneous nodes (oracle on)...\n",
        steps * sys.nodes(),
        sys.nodes()
    );
    sys.run(&mut streams, steps as u64);
    sys.verify().expect("the class is compatible");

    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "node", "refs", "hit%", "bus txns", "inv-recv", "upd-recv", "interv"
    );
    for cpu in 0..sys.nodes() {
        let s = sys.stats(cpu);
        println!(
            "{:<22} {:>8} {:>7.1}% {:>9} {:>9} {:>9} {:>8}",
            sys.controller(cpu).name(),
            s.references(),
            s.hit_ratio() * 100.0,
            s.bus_transactions,
            s.invalidations_received,
            s.updates_received,
            s.interventions_supplied,
        );
    }
    println!("\n{}", sys.bus_stats());
    println!("\nconsistency oracle: OK — every access returned the globally last-written value");
}
