//! §5.1's sector-cache conclusion, demonstrated: "Consistency status also
//! appears to be necessarily associated with the transfer subsector, rather
//! than the address sector."
//!
//! Run with `cargo run --example sector_cache`.

use cache_array::{SectorCache, SectorProbe};
use moesi::LineState;

fn main() {
    // One address sector = 64 bytes tagged once; transfer subsector = 16
    // bytes, each carrying its own MOESI state.
    let mut cache: SectorCache<LineState> = SectorCache::new(4, 64, 16);
    println!("Sector cache: 4 frames x 64B address sectors, 16B transfer subsectors\n");

    println!("A read miss loads just one subsector of a sector:");
    assert_eq!(cache.probe(0x100), SectorProbe::SectorMiss);
    cache.install(0x100, LineState::Exclusive);
    println!(
        "  0x100 -> {:?}, state {:?}",
        cache.probe(0x100),
        cache.state_of(0x100)
    );
    println!(
        "  0x110 (same sector, next subsector) -> {:?}  <- only the subsector misses",
        cache.probe(0x110)
    );
    cache.install(0x110, LineState::Exclusive);
    cache.install(0x120, LineState::Exclusive);
    println!("  loaded 3 of 4 subsectors; tag storage paid once\n");

    println!("Now another cache write-misses the middle subsector. If consistency");
    println!("status lived on the address sector, the WHOLE 64 bytes would die.");
    println!("Attached to the transfer subsector, only 16 bytes do:");
    let invalidated = cache.invalidate_subsector(0x110);
    println!("  snooped invalidate @0x110: dropped state {invalidated:?}");
    println!("  0x100 -> {:?} (still valid)", cache.probe(0x100));
    println!("  0x110 -> {:?}", cache.probe(0x110));
    println!("  0x120 -> {:?} (still valid)", cache.probe(0x120));
    println!(
        "  valid subsectors remaining: {}\n",
        cache.valid_subsectors()
    );

    println!("The line-crosser rule (§5.1) applies at subsector granularity too:");
    let pieces = cache_array::split_line_crossers(0x10C, 8, cache.subsector_size());
    println!("  an 8B access at 0x10C splits into {pieces:?}");
    println!("  -> one bus transaction per transfer subsector touched.\n");

    println!("What §5.1 leaves open — and this model makes concrete — is WHICH sizes");
    println!("must be standardised: the transfer subsector must match the system line");
    println!("size (it is the coherence unit); the address sector size is a private");
    println!("tag-cost/coverage trade-off each board may choose for itself.");
}
