//! Renders every protocol's state machine as Graphviz DOT, plus a live
//! state census — Figure 3's taxonomy applied to a running machine.
//!
//! Run with `cargo run --example state_diagrams`. Pipe a diagram through
//! `dot -Tpng` to draw it.

use cache_array::CacheConfig;
use moesi::dot;
use moesi::protocols::by_name;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, SystemBuilder};

fn main() {
    for name in [
        "moesi",
        "berkeley",
        "dragon",
        "write-once",
        "illinois",
        "firefly",
        "synapse",
    ] {
        let mut p = by_name(name, 0).expect("known protocol");
        println!("// ---- {} ----", p.name());
        print!("{}", dot::render(p.as_mut()));
        println!();
    }

    println!("// ---- live state census ----");
    println!("// After 500 steps of a sharing workload, the Figure-3 taxonomy");
    println!("// describes the machine's whole content:");
    let mut sys = SystemBuilder::new(32)
        .cache(by_name("moesi", 0).unwrap(), CacheConfig::small())
        .cache(by_name("moesi", 1).unwrap(), CacheConfig::small())
        .cache(by_name("moesi", 2).unwrap(), CacheConfig::small())
        .cache(by_name("moesi", 3).unwrap(), CacheConfig::small())
        .checking(true)
        .build();
    let model = SharingModel::default();
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..4)
        .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 31)) as _)
        .collect();
    sys.run(&mut streams, 500);
    for cpu in 0..sys.nodes() {
        println!("// cpu{cpu}: {}", sys.state_census(cpu));
    }
    let total = sys.total_state_census();
    println!(
        "// total: {total}  ({} lines owned system-wide)",
        total.owned()
    );
    sys.verify().expect("consistent");
}
