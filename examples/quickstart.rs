//! Quickstart: watch the MOESI states evolve on a two-cache Futurebus system.
//!
//! Run with `cargo run --example quickstart`.

use cache_array::CacheConfig;
use moesi::protocols::MoesiPreferred;
use moesi::LineState;
use mpsim::SystemBuilder;

fn states(sys: &mpsim::System, addr: u64) -> String {
    (0..sys.nodes())
        .map(|cpu| format!("cpu{cpu}={}", sys.state_of(cpu, addr)))
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() {
    let mut sys = SystemBuilder::new(32)
        .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
        .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
        .checking(true)
        .build();

    let addr = 0x1000;
    println!("A tour of the five MOESI states (line {addr:#x}):\n");

    println!("initially:                         {}", states(&sys, addr));

    sys.read(0, addr, 4);
    println!(
        "cpu0 reads  (miss, no sharers):    {}   <- Exclusive",
        states(&sys, addr)
    );
    assert_eq!(sys.state_of(0, addr), LineState::Exclusive);

    sys.write(0, addr, &[1, 2, 3, 4]);
    println!(
        "cpu0 writes (silent upgrade):      {}   <- Modified, no bus traffic",
        states(&sys, addr)
    );
    assert_eq!(sys.state_of(0, addr), LineState::Modified);

    let v = sys.read(1, addr, 4);
    println!(
        "cpu1 reads  (cpu0 intervenes):     {}   <- Owned supplies the data {v:?}",
        states(&sys, addr)
    );
    assert_eq!(sys.state_of(0, addr), LineState::Owned);
    assert_eq!(sys.state_of(1, addr), LineState::Shareable);

    sys.write(1, addr, &[5, 6, 7, 8]);
    println!(
        "cpu1 writes (broadcast update):    {}   <- ownership moves",
        states(&sys, addr)
    );

    let v = sys.read(0, addr, 4);
    println!(
        "cpu0 reads  (updated copy, hit):   {}   value {v:?}",
        states(&sys, addr)
    );
    assert_eq!(v, vec![5, 6, 7, 8]);

    sys.flush(1, addr);
    println!("cpu1 flushes (push + discard):     {}", states(&sys, addr));

    println!("\nPer-node statistics:");
    for cpu in 0..sys.nodes() {
        println!("  cpu{cpu}: {}", sys.stats(cpu));
    }
    println!("\n{}", sys.bus_stats());
    sys.verify().expect("consistent");
    println!("\nconsistency oracle: OK");
}
