#!/usr/bin/env bash
# Tier-1 gate: everything here must pass, fully offline (the workspace has
# no external dependencies; see the [workspace.dependencies] note in
# Cargo.toml). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> fault-injection smoke campaign (fixed seed, fails on silent corruption)"
./target/release/moesi-sim faults --seed 7 --steps 800

echo "==> hierarchy fault smoke (fixed seed, >=1000 faults; exits nonzero on silent corruption)"
hier_j2="$(mktemp)" hier_j1="$(mktemp)"
./target/release/moesi-sim faults --hierarchy --seed 7 --jobs 2 --json --out "$hier_j2" \
  | grep -E "faults injected" \
  || { echo "hierarchy fault smoke produced no report" >&2; exit 1; }
./target/release/moesi-sim faults --hierarchy --seed 7 --jobs 1 --json --out "$hier_j1" >/dev/null
cmp "$hier_j2" "$hier_j1" \
  || { echo "hierarchy faults --jobs 2 diverged from --jobs 1" >&2; exit 1; }
hier_injected="$(grep -o '"injected": [0-9]*' "$hier_j1" | head -1 | grep -o '[0-9]*$')"
[ "${hier_injected:-0}" -ge 1000 ] \
  || { echo "hierarchy smoke injected only ${hier_injected:-0} faults (need >= 1000)" >&2; exit 1; }
grep -q '"silent": 0' "$hier_j1" \
  || { echo "hierarchy smoke saw silent corruption" >&2; exit 1; }
grep -q '"recovery_demonstrated": true' "$hier_j1" \
  || { echo "liveness probe failed to demonstrate livelock recovery" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$hier_j1" \
    || { echo "hierarchy faults output is not valid JSON" >&2; exit 1; }
fi
rm -f "$hier_j2" "$hier_j1"

echo "==> deep-hierarchy fault smoke (depth 3, 32 caches; --jobs 2 must match --jobs 1)"
deep_j2="$(mktemp)" deep_j1="$(mktemp)"
./target/release/moesi-sim faults --hierarchy --depth 3 --fanout 4 --clusters 4 \
    --cpus 2 --steps 500 --seed 7 --jobs 2 --json --out "$deep_j2" >/dev/null
./target/release/moesi-sim faults --hierarchy --depth 3 --fanout 4 --clusters 4 \
    --cpus 2 --steps 500 --seed 7 --jobs 1 --json --out "$deep_j1" >/dev/null
cmp "$deep_j2" "$deep_j1" \
  || { echo "deep hierarchy faults --jobs 2 diverged from --jobs 1" >&2; exit 1; }
grep -q '"depth": 3' "$deep_j1" && grep -q '"leaves": 16' "$deep_j1" \
  || { echo "deep hierarchy smoke did not run the depth-3, 16-leaf tree" >&2; exit 1; }
grep -q '"silent": 0' "$deep_j1" \
  || { echo "deep hierarchy smoke saw silent corruption" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$deep_j1" \
    || { echo "deep hierarchy faults output is not valid JSON" >&2; exit 1; }
fi
rm -f "$deep_j2" "$deep_j1"

echo "==> policy tables match the committed fixture (paper Tables 3-7)"
tables_out="$(mktemp)"
./target/release/moesi-sim table > "$tables_out"
cmp "$tables_out" tests/fixtures/tables/paper_tables.txt \
  || { echo "rendered policy tables diverged from tests/fixtures/tables/paper_tables.txt" >&2; exit 1; }
rm -f "$tables_out"

# The bench JSON rows carry host-side measurements (host wall/cpu/critical
# time, host throughput, speedup) that legitimately differ run to run; every
# determinism comparison strips them first. Simulated results must survive
# unchanged. Mirrors bench::sweep::strip_host_fields.
strip_host_fields() {
  sed -E 's/"(host_wall_ns|host_cpu_ns|host_critical_ns|host_elapsed_ns)": [0-9]+, //g;
          s/"(engine_accesses_per_sec|speedup)": [0-9]+\.[0-9]+, //g' "$1"
}

echo "==> hybrid bench smoke (fixed seed; sharded run must match the sequential one)"
hyb_j2="$(mktemp)" hyb_j1="$(mktemp)"
./target/release/moesi-sim bench --protocol hybrid --seed 7 --steps 500 --jobs 2 \
    --json --out "$hyb_j2" >/dev/null
./target/release/moesi-sim bench --protocol hybrid --seed 7 --steps 500 --jobs 1 \
    --json --out "$hyb_j1" >/dev/null
cmp <(strip_host_fields "$hyb_j2") <(strip_host_fields "$hyb_j1") \
  || { echo "hybrid bench --jobs 2 diverged from --jobs 1" >&2; exit 1; }
rm -f "$hyb_j2" "$hyb_j1"

echo "==> bench smoke (fixed seed; sharded run must match the sequential one)"
bench_j2="$(mktemp)" bench_j1="$(mktemp)" trace_j2="$(mktemp)" trace_j1="$(mktemp)"
./target/release/moesi-sim bench --seed 7 --steps 500 --jobs 2 --json --out "$bench_j2" \
    --trace-out "$trace_j2" \
  | grep -E "total [1-9][0-9]* accesses" \
  || { echo "bench smoke reported zero throughput" >&2; exit 1; }
./target/release/moesi-sim bench --seed 7 --steps 500 --jobs 1 --json --out "$bench_j1" \
    --trace-out "$trace_j1" >/dev/null
cmp <(strip_host_fields "$bench_j2") <(strip_host_fields "$bench_j1") \
  || { echo "bench --jobs 2 diverged from --jobs 1" >&2; exit 1; }
grep -q '"phase_p50_ns"' "$bench_j1" \
  || { echo "bench JSON is missing the per-phase percentiles" >&2; exit 1; }
grep -q '"host_wall_ns"' "$bench_j1" \
  || { echo "bench JSON is missing the host-side measurements" >&2; exit 1; }

echo "==> shard smoke (--shards 2 must match --shards 1 byte for byte)"
shard_2="$(mktemp)" shard_1="$(mktemp)"
./target/release/moesi-sim bench --shards 2 --seed 7 --steps 500 --json \
    --out "$shard_2" >/dev/null
./target/release/moesi-sim bench --shards 1 --seed 7 --steps 500 --json \
    --out "$shard_1" >/dev/null
cmp <(strip_host_fields "$shard_2") <(strip_host_fields "$shard_1") \
  || { echo "bench --shards 2 diverged from --shards 1" >&2; exit 1; }
rm -f "$shard_2" "$shard_1"

echo "==> committed bench artifact matches a fresh default sweep (host fields ignored)"
bench_fresh="$(mktemp)"
./target/release/moesi-sim bench --json --out "$bench_fresh" >/dev/null
cmp <(strip_host_fields "$bench_fresh") <(strip_host_fields BENCH_protocols.json) \
  || { echo "BENCH_protocols.json diverged from a fresh default sweep; regenerate it" >&2; exit 1; }
rm -f "$bench_fresh"

echo "==> sharded baseline smoke (scaling sweep vs committed BENCH_shards.json; host fields ignored)"
shards_committed="$(grep -o '"shards": [0-9]*' BENCH_shards.json | grep -o '[0-9]*$' | paste -sd, -)"
[ -n "$shards_committed" ] \
  || { echo "BENCH_shards.json has no shard rows" >&2; exit 1; }
scale_fresh="$(mktemp)"
./target/release/moesi-sim bench --shards "$shards_committed" --json --out "$scale_fresh" >/dev/null
cmp <(strip_host_fields "$scale_fresh") <(strip_host_fields BENCH_shards.json) \
  || { echo "BENCH_shards.json diverged from a fresh scaling sweep; regenerate it" >&2; exit 1; }
speedups="$(grep -oc '"speedup": [0-9]*\.[0-9]*' "$scale_fresh")"
zero_speedups="$(grep -c '"speedup": 0\.000' "$scale_fresh" || true)"
[ "${speedups:-0}" -ge 2 ] && [ "${zero_speedups:-0}" -eq 0 ] \
  || { echo "scaling sweep speedup column is empty or zero" >&2; exit 1; }
rm -f "$scale_fresh"

echo "==> hierarchy saturation smoke (--jobs 2 must match --jobs 1; filters must suppress)"
hsat_j2="$(mktemp)" hsat_j1="$(mktemp)"
./target/release/moesi-sim bench --hierarchy --protocol moesi --clusters 2 --depth 3 \
    --fanout 2 --cpus 2 --steps 80 --seed 7 --jobs 2 --json --out "$hsat_j2" >/dev/null
./target/release/moesi-sim bench --hierarchy --protocol moesi --clusters 2 --depth 3 \
    --fanout 2 --cpus 2 --steps 80 --seed 7 --jobs 1 --json --out "$hsat_j1" >/dev/null
cmp <(strip_host_fields "$hsat_j2") <(strip_host_fields "$hsat_j1") \
  || { echo "bench --hierarchy --jobs 2 diverged from --jobs 1" >&2; exit 1; }
grep -q '"suppressed": [1-9]' "$hsat_j1" \
  || { echo "saturation smoke saw no snoop-filter suppression" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$hsat_j1" \
    || { echo "hierarchy bench output is not valid JSON" >&2; exit 1; }
fi
rm -f "$hsat_j2" "$hsat_j1"

echo "==> committed hierarchy artifact matches a fresh default study (host fields ignored)"
hier_fresh="$(mktemp)"
./target/release/moesi-sim bench --hierarchy --json --out "$hier_fresh" >/dev/null
cmp <(strip_host_fields "$hier_fresh") <(strip_host_fields BENCH_hierarchy.json) \
  || { echo "BENCH_hierarchy.json diverged from a fresh default study; regenerate it" >&2; exit 1; }
grep -q '"caches": 64' BENCH_hierarchy.json \
  || { echo "BENCH_hierarchy.json is missing the 64-cache depth-3 rows" >&2; exit 1; }
rm -f "$hier_fresh"

echo "==> chrome-trace smoke (fixed seed; --jobs must not perturb the trace)"
cmp "$trace_j2" "$trace_j1" \
  || { echo "trace --jobs 2 diverged from --jobs 1" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_j1" \
  || { echo "trace output is not a Chrome trace document" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$trace_j1" \
    || { echo "trace output is not valid JSON" >&2; exit 1; }
  python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$bench_j1" \
    || { echo "bench output is not valid JSON" >&2; exit 1; }
fi
rm -f "$bench_j2" "$bench_j1" "$trace_j2" "$trace_j1"

echo "==> synth smoke (fixed seed, tiny cell budget; sharded run must match the sequential one)"
synth_t2="$(mktemp)" synth_t1="$(mktemp)" synth_j2="$(mktemp)" synth_j1="$(mktemp)"
./target/release/moesi-sim synth --workload ping-pong --cpus 2 --steps 80 --rounds 1 \
    --campaign-steps 300 --sensitivity --seed 7 --jobs 2 \
    --out "$synth_t2" --json-out "$synth_j2" >/dev/null
./target/release/moesi-sim synth --workload ping-pong --cpus 2 --steps 80 --rounds 1 \
    --campaign-steps 300 --sensitivity --seed 7 --jobs 1 \
    --out "$synth_t1" --json-out "$synth_j1" >/dev/null
cmp "$synth_t2" "$synth_t1" \
  || { echo "synth tables --jobs 2 diverged from --jobs 1" >&2; exit 1; }
cmp "$synth_j2" "$synth_j1" \
  || { echo "synth JSON --jobs 2 diverged from --jobs 1" >&2; exit 1; }
grep -q '"faults_silent": 0' "$synth_j1" \
  || { echo "synth smoke saw silent corruption" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$synth_j1" \
    || { echo "synth output is not valid JSON" >&2; exit 1; }
fi
rm -f "$synth_t2" "$synth_t1" "$synth_j2" "$synth_j1"

echo "==> synthesized winners match the committed fixture (best-known tables per workload)"
synth_tables="$(mktemp)" synth_json="$(mktemp)"
./target/release/moesi-sim synth --seed 7 --out "$synth_tables" --json-out "$synth_json" >/dev/null
cmp "$synth_tables" tests/fixtures/synth/best_tables.txt \
  || { echo "synthesized tables diverged from tests/fixtures/synth/best_tables.txt" >&2; exit 1; }
cmp "$synth_json" tests/fixtures/synth/best_tables.json \
  || { echo "synth report diverged from tests/fixtures/synth/best_tables.json" >&2; exit 1; }
rm -f "$synth_tables" "$synth_json"

echo "==> mutation sweep accepts a loaded table (synth fixture as the base)"
./target/release/moesi-sim verify --mutate --table tests/fixtures/synth/best_tables.txt >/dev/null 2>&1 \
  && { echo "mutation sweep accepted a multi-table document as one table" >&2; exit 1; }
first_table="$(mktemp)" mutate_out="$(mktemp)"
head -20 tests/fixtures/synth/best_tables.txt > "$first_table"
./target/release/moesi-sim verify --mutate --table "$first_table" > "$mutate_out"
grep -q "single-cell mutations of \`synth-general\`" "$mutate_out" \
  || { echo "verify --mutate --table failed on the synthesized winner" >&2; exit 1; }
rm -f "$first_table" "$mutate_out"

echo "ci: all green"
