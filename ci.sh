#!/usr/bin/env bash
# Tier-1 gate: everything here must pass, fully offline (the workspace has
# no external dependencies; see the [workspace.dependencies] note in
# Cargo.toml). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> fault-injection smoke campaign (fixed seed, fails on silent corruption)"
./target/release/moesi-sim faults --seed 7 --steps 800

echo "ci: all green"
